"""Slow-query flight recorder: a bounded ring of the worst requests.

Aggregate percentiles say the p99 moved; the flight recorder keeps the
evidence — the full span trees of the slowest (or threshold-exceeding)
requests, bounded in memory, served at ``GET /debug/slow`` and printed
by ``repro slowlog``.  Two retention policies, picked by configuration:

* **Slowest-N** (default, ``threshold_ms=None``): a min-heap of the
  ``capacity`` slowest requests ever seen — the all-time outliers, the
  ones a latency SLO postmortem wants.
* **Threshold ring** (``threshold_ms`` set): a FIFO ring of the most
  *recent* requests that exceeded the threshold — the live tail during
  an incident, where recency matters more than rank.

Entries are stored as plain dicts (the trace is rendered eagerly via
``Trace.to_dict``), so recording never retains live ``Span`` objects
beyond the request, and a snapshot is JSON-ready.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from collections import deque


class FlightRecorder:
    """Bounded retention of slow-request traces (thread-safe).

    Parameters
    ----------
    capacity:
        Most entries retained; 0 disables recording entirely.
    threshold_ms:
        ``None`` keeps the ``capacity`` slowest requests ever seen;
        a number keeps the most recent requests at least that slow.
    """

    def __init__(self, capacity: int = 32, threshold_ms: float | None = None):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        if threshold_ms is not None and threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be non-negative, got {threshold_ms}"
            )
        self.capacity = capacity
        self.threshold_ms = threshold_ms
        self._lock = threading.Lock()
        #: Slowest-N policy: a min-heap of (latency_ms, seq, entry) so the
        #: fastest retained entry is evicted first.  ``seq`` breaks ties —
        #: entries (dicts) are not comparable.
        self._heap: list[tuple[float, int, dict]] = []
        #: Threshold policy: FIFO of the most recent exceeders.
        self._ring: deque[dict] = deque(maxlen=capacity or None)
        self._seq = itertools.count()
        self.recorded = 0
        self.seen = 0

    def record(self, endpoint: str, latency_seconds: float, trace) -> bool:
        """Offer one finished request; returns True when it was retained.

        ``trace`` is a :class:`repro.obs.trace.Trace` (rendered
        immediately) — or an already-rendered trace dict, which lets
        tests and replay tooling feed the recorder directly.
        """
        if self.capacity == 0:
            return False
        latency_ms = 1e3 * latency_seconds
        with self._lock:
            self.seen += 1
            if self.threshold_ms is not None and latency_ms < self.threshold_ms:
                return False
            if (
                self.threshold_ms is None
                and len(self._heap) >= self.capacity
                and latency_ms <= self._heap[0][0]
            ):
                return False  # faster than everything retained; skip rendering
            entry = {
                "endpoint": endpoint,
                "latency_ms": latency_ms,
                "trace": trace if isinstance(trace, dict) else trace.to_dict(),
            }
            entry["trace_id"] = entry["trace"].get("trace_id")
            entry["recorded_at"] = entry["trace"].get("created_at")
            self.recorded += 1
            if self.threshold_ms is not None:
                self._ring.append(entry)
                return True
            heapq.heappush(self._heap, (latency_ms, next(self._seq), entry))
            while len(self._heap) > self.capacity:
                heapq.heappop(self._heap)
            return True

    def snapshot(self) -> list[dict]:
        """Retained entries, slowest first (JSON-serialisable)."""
        with self._lock:
            if self.threshold_ms is not None:
                entries = list(self._ring)
            else:
                entries = [entry for _, _, entry in self._heap]
        return sorted(entries, key=lambda entry: -entry["latency_ms"])

    def clear(self) -> None:
        """Drop every retained entry (counters keep running)."""
        with self._lock:
            self._heap.clear()
            self._ring.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring) if self.threshold_ms is not None else len(self._heap)

    def stats(self) -> dict:
        """Recorder configuration and counters for ``GET /debug/slow``."""
        with self._lock:
            retained = (
                len(self._ring) if self.threshold_ms is not None else len(self._heap)
            )
            return {
                "capacity": self.capacity,
                "threshold_ms": self.threshold_ms,
                "policy": "threshold" if self.threshold_ms is not None else "slowest",
                "retained": retained,
                "recorded": self.recorded,
                "seen": self.seen,
            }
