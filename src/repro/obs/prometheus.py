"""Prometheus text exposition for the serving stack.

``GET /metrics?format=prometheus`` renders the service's counters,
gauges and fixed-bucket histograms in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so any
standard scraper can consume the service without a sidecar exporter.
The JSON document served by plain ``GET /metrics`` is unchanged; this
module is a second *view* over the same
:class:`repro.service.metrics.ServiceMetrics` state, not a second sink.

Histograms are exact: :class:`~repro.service.metrics.LatencyHistogram`
maintains lifetime fixed-bucket counts next to its percentile window, so
the exposed ``_bucket`` series are cumulative and monotone as Prometheus
requires (the windowed percentiles would not be — a scrape-to-scrape
decrease is a protocol violation).
"""

from __future__ import annotations

_HELP = {
    "repro_uptime_seconds": ("gauge", "Seconds since the server started."),
    "repro_requests_total": ("counter", "Requests answered, all endpoints."),
    "repro_errors_total": ("counter", "Requests answered with an error status."),
    "repro_batches_total": ("counter", "Engine dispatches (coalesced batches)."),
    "repro_queries_batched_total": (
        "counter",
        "Queries answered through batched dispatches.",
    ),
    "repro_max_batch_size": ("gauge", "Largest batch dispatched so far."),
    "repro_queue_depth": ("gauge", "Requests currently queued in the scheduler."),
    "repro_query_workers": ("gauge", "Size of the engine worker pool."),
    "repro_workers_busy": (
        "gauge",
        "Engine workers currently inside a solve.",
    ),
    "repro_engine_wait_seconds_total": (
        "counter",
        "Seconds dispatched batches spent waiting for a free engine worker.",
    ),
    "repro_cache_hits_total": ("counter", "Result-cache hits."),
    "repro_cache_misses_total": ("counter", "Result-cache misses."),
    "repro_cache_invalidations_total": (
        "counter",
        "Whole-cache invalidations (index mutations).",
    ),
    "repro_cache_size": ("gauge", "Entries currently cached."),
    "repro_engine_clusters_pruned_total": (
        "counter",
        "Clusters pruned by the bound test across all served queries.",
    ),
    "repro_engine_clusters_scored_total": (
        "counter",
        "Clusters back-substituted across all served queries.",
    ),
    "repro_engine_nodes_scored_total": (
        "counter",
        "Nodes scored across all served queries.",
    ),
    "repro_engine_bound_evaluations_total": (
        "counter",
        "Cluster bound evaluations across all served queries.",
    ),
    "repro_slowlog_recorded_total": (
        "counter",
        "Requests retained by the slow-query flight recorder.",
    ),
    "repro_sheds_total": (
        "counter",
        "Requests refused by admission control (429 Too Many Requests).",
    ),
    "repro_degraded_total": (
        "counter",
        "Requests downgraded to the fast tier under overload.",
    ),
    "repro_deadline_timeouts_total": (
        "counter",
        "Requests whose deadline expired before an answer (504).",
    ),
    "repro_deadline_expired_in_queue_total": (
        "counter",
        "Deadline expiries caught at batch assembly (never dispatched).",
    ),
    "repro_faults_injected_total": (
        "counter",
        "Artificial faults injected by the armed chaos harness.",
    ),
    "repro_request_latency_seconds": (
        "histogram",
        "Request latency by endpoint.",
    ),
    "repro_error_latency_seconds": (
        "histogram",
        "Latency of requests that ended in an error status.",
    ),
    "repro_stage_duration_seconds": (
        "histogram",
        "Per-stage time attribution from request traces.",
    ),
    "repro_tier_queries_total": (
        "counter",
        "Queries served per accuracy level (tiered engines).",
    ),
    "repro_tier_seconds_total": (
        "counter",
        "Seconds spent per accuracy level and tier (tiered engines).",
    ),
    "repro_resident_bytes": (
        "gauge",
        "Evictable shard-state bytes currently resident in memory.",
    ),
    "repro_memory_budget_bytes": (
        "gauge",
        "Configured shard-residency budget in bytes (0 = accounting only).",
    ),
    "repro_pinned_bytes": (
        "gauge",
        "Resident bytes pinned by in-flight scans (ineligible for eviction).",
    ),
    "repro_shards_resident": (
        "gauge",
        "Shards whose heavy state is currently materialized.",
    ),
    "repro_bounds_bytes": (
        "gauge",
        "Always-resident per-shard bound-table bytes (never evicted).",
    ),
    "repro_shard_loads_total": (
        "counter",
        "Shard-state materializations, cold loads and re-faults alike.",
    ),
    "repro_shard_faults_total": (
        "counter",
        "Shard-state re-materializations after an eviction.",
    ),
    "repro_shard_evictions_total": (
        "counter",
        "Shard states evicted back to their mmap loaders.",
    ),
    "repro_shard_evicted_bytes_total": (
        "counter",
        "Cumulative bytes released by shard evictions.",
    ),
    "repro_bound_fallbacks_total": (
        "counter",
        "Shard scans that fell back from quantized to exact float64 bounds.",
    ),
}


def _fmt(value: float) -> str:
    """A float in the shortest exact-enough exposition form."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(**labels: str) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class _Writer:
    """Accumulates exposition lines, emitting HELP/TYPE once per family."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def _declare(self, family: str) -> None:
        if family in self._declared:
            return
        self._declared.add(family)
        kind, help_text = _HELP[family]
        self._lines.append(f"# HELP {family} {help_text}")
        self._lines.append(f"# TYPE {family} {kind}")

    def sample(self, family: str, value: float, **labels: str) -> None:
        self._declare(family)
        self._lines.append(f"{family}{_labels(**labels)} {_fmt(float(value))}")

    def histogram(self, family: str, histogram, **labels: str) -> None:
        """One exposed histogram from a LatencyHistogram's lifetime buckets."""
        self._declare(family)
        buckets, counts, total, total_sum = histogram.bucket_counts()
        cumulative = 0
        for upper, count in zip(buckets, counts):
            cumulative += int(count)
            bucket_labels = _labels(le=_fmt(upper), **labels)
            self._lines.append(f"{family}_bucket{bucket_labels} {cumulative}")
        inf_labels = _labels(le="+Inf", **labels)
        self._lines.append(f"{family}_bucket{inf_labels} {total}")
        self._lines.append(f"{family}_sum{_labels(**labels)} {_fmt(total_sum)}")
        self._lines.append(f"{family}_count{_labels(**labels)} {total}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_prometheus(
    metrics,
    queue_depth: int = 0,
    cache_stats: dict | None = None,
    tier_counters: dict | None = None,
    slowlog_stats: dict | None = None,
    worker_stats: dict | None = None,
    residency_stats: dict | None = None,
) -> str:
    """The full exposition document for one scrape.

    ``metrics`` is a :class:`repro.service.metrics.ServiceMetrics`
    (duck-typed: anything exposing ``snapshot()``, ``latency`` and
    ``stage_histograms()``); the optional dicts carry the surfaces owned
    by other components (scheduler queue + worker pool, cache, tiered
    engine, flight recorder), mirroring the JSON ``/metrics`` assembly
    in the server.  ``worker_stats`` carries ``query_workers``,
    ``workers_busy`` and ``engine_wait_seconds`` from the scheduler
    snapshot.  ``residency_stats`` is a
    :meth:`repro.core.sharded.ShardedMogulIndex.residency_snapshot`
    dict; the residency gauges and counters are emitted whenever it is
    present (even unbudgeted — accounting without eviction), so
    scrapers see ``repro_resident_bytes`` for every sharded deployment.
    """
    snapshot = metrics.snapshot()
    writer = _Writer()
    writer.sample("repro_uptime_seconds", snapshot["uptime_seconds"])
    writer.sample("repro_requests_total", snapshot["requests_total"])
    writer.sample("repro_errors_total", snapshot["errors_total"])
    writer.sample("repro_batches_total", snapshot["batches_total"])
    writer.sample("repro_queries_batched_total", snapshot["queries_batched"])
    writer.sample("repro_max_batch_size", snapshot["max_batch_size"])
    writer.sample("repro_queue_depth", queue_depth)
    if worker_stats:
        writer.sample("repro_query_workers", worker_stats.get("query_workers", 1))
        writer.sample("repro_workers_busy", worker_stats.get("workers_busy", 0))
        writer.sample(
            "repro_engine_wait_seconds_total",
            worker_stats.get("engine_wait_seconds", 0.0),
        )
    if cache_stats:
        writer.sample("repro_cache_hits_total", cache_stats["hits"])
        writer.sample("repro_cache_misses_total", cache_stats["misses"])
        writer.sample(
            "repro_cache_invalidations_total", cache_stats["invalidations"]
        )
        writer.sample("repro_cache_size", cache_stats["size"])
    engine = snapshot["engine"]
    writer.sample("repro_engine_clusters_pruned_total", engine["clusters_pruned"])
    writer.sample("repro_engine_clusters_scored_total", engine["clusters_scored"])
    writer.sample("repro_engine_nodes_scored_total", engine["nodes_scored"])
    writer.sample(
        "repro_engine_bound_evaluations_total", engine["bound_evaluations"]
    )
    if slowlog_stats:
        writer.sample("repro_slowlog_recorded_total", slowlog_stats["recorded"])
    admission = snapshot.get("admission", {})
    writer.sample("repro_sheds_total", admission.get("sheds_total", 0))
    writer.sample("repro_degraded_total", admission.get("degraded_total", 0))
    writer.sample(
        "repro_deadline_timeouts_total",
        admission.get("deadline_timeouts_total", 0),
    )
    writer.sample(
        "repro_deadline_expired_in_queue_total",
        admission.get("expired_in_queue_total", 0),
    )
    writer.sample(
        "repro_faults_injected_total", admission.get("faults_injected_total", 0)
    )
    for endpoint, histogram in sorted(metrics.latency.items()):
        writer.histogram(
            "repro_request_latency_seconds", histogram, endpoint=endpoint
        )
    error_latency = getattr(metrics, "error_latency", None)
    if error_latency is not None:
        writer.histogram("repro_error_latency_seconds", error_latency)
    for stage, histogram in sorted(metrics.stage_histograms().items()):
        writer.histogram("repro_stage_duration_seconds", histogram, stage=stage)
    if tier_counters:
        for label, entry in sorted(tier_counters.items()):
            writer.sample(
                "repro_tier_queries_total", entry["queries"], accuracy=label
            )
            writer.sample(
                "repro_tier_seconds_total",
                entry["spectral_seconds"],
                accuracy=label,
                tier="spectral",
            )
            writer.sample(
                "repro_tier_seconds_total",
                entry["rerank_seconds"],
                accuracy=label,
                tier="rerank",
            )
    if residency_stats:
        writer.sample(
            "repro_resident_bytes", residency_stats.get("resident_bytes", 0)
        )
        writer.sample(
            "repro_memory_budget_bytes",
            residency_stats.get("budget_bytes") or 0,
        )
        writer.sample(
            "repro_pinned_bytes", residency_stats.get("pinned_bytes", 0)
        )
        writer.sample(
            "repro_shards_resident", residency_stats.get("shards_resident", 0)
        )
        writer.sample(
            "repro_bounds_bytes", residency_stats.get("bounds_bytes", 0)
        )
        writer.sample(
            "repro_shard_loads_total", residency_stats.get("loads_total", 0)
        )
        writer.sample(
            "repro_shard_faults_total", residency_stats.get("faults_total", 0)
        )
        writer.sample(
            "repro_shard_evictions_total",
            residency_stats.get("evictions_total", 0),
        )
        writer.sample(
            "repro_shard_evicted_bytes_total",
            residency_stats.get("evicted_bytes_total", 0),
        )
        writer.sample(
            "repro_bound_fallbacks_total",
            residency_stats.get("bound_fallbacks_total", 0),
        )
    return writer.render()
