"""Classic sparse-matrix orderings, for comparison with Algorithm 1.

The paper's permutation problem (minimise Incomplete Cholesky error,
Theorem 1: NP-complete by reduction from minimum fill-in) sits in a long
line of sparse-matrix reordering heuristics.  This module implements the
standard baseline of that field from scratch:

* :func:`reverse_cuthill_mckee` — BFS levelling from a peripheral vertex,
  neighbours visited in ascending degree, order reversed; the classic
  bandwidth-minimising ordering (Cuthill & McKee 1969 / George 1971).
* :func:`bandwidth` / :func:`profile` — the quantities RCM optimises,
  used by tests and by the Figure 6 style comparisons.

RCM produces a *banded* matrix; Algorithm 1 produces a *bordered block
diagonal* one.  Both beat a random ordering for ICF, but only the block
structure supports Mogul's cluster-restricted substitution (Lemmas 4/5)
and bound pruning — which is precisely the paper's design point, and the
`bench_fig8_precompute`/`experiments.fig6` comparisons make it visible.
"""

from __future__ import annotations

from collections import deque

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_square, check_symmetric


def reverse_cuthill_mckee(adjacency: sp.spmatrix) -> np.ndarray:
    """Compute the RCM ordering of a symmetric sparse matrix.

    Returns ``order`` such that ``order[position] = original node``, the
    same convention as :class:`repro.core.Permutation.order`.  Each
    connected component is started from a pseudo-peripheral vertex found
    by repeated BFS; components are processed in ascending order of their
    smallest node id, so the result is deterministic.
    """
    adjacency = check_symmetric(adjacency.tocsr(), "adjacency", tol=1e-8)
    n = adjacency.shape[0]
    indptr, indices = adjacency.indptr, adjacency.indices
    degrees = np.diff(indptr)

    visited = np.zeros(n, dtype=bool)
    order: list[int] = []
    for start in range(n):
        if visited[start]:
            continue
        root = _pseudo_peripheral(start, indptr, indices, degrees, visited)
        order.extend(_cuthill_mckee_component(root, indptr, indices, degrees, visited))
    return np.asarray(order[::-1], dtype=np.int64)


def _cuthill_mckee_component(
    root: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    visited: np.ndarray,
) -> list[int]:
    """BFS from ``root``, neighbours in ascending (degree, id) order."""
    component: list[int] = []
    queue: deque[int] = deque([root])
    visited[root] = True
    while queue:
        node = queue.popleft()
        component.append(node)
        neighbors = [
            j
            for j in indices[indptr[node] : indptr[node + 1]]
            if not visited[j] and j != node
        ]
        neighbors.sort(key=lambda j: (degrees[j], j))
        for j in neighbors:
            visited[j] = True
            queue.append(j)
    return component


def _pseudo_peripheral(
    start: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    degrees: np.ndarray,
    visited: np.ndarray,
) -> int:
    """George-Liu style pseudo-peripheral vertex of ``start``'s component.

    Repeated BFS: move to a minimum-degree vertex of the last level until
    the eccentricity stops growing.  ``visited`` is only read here.
    """
    current = start
    last_depth = -1
    for _ in range(16):  # eccentricity growth stalls long before this
        levels = _bfs_levels(current, indptr, indices, visited)
        depth = int(levels.max())  # root has level 0, unreached stay -1
        if depth <= last_depth:
            break
        last_depth = depth
        last_level = np.flatnonzero(levels == depth)
        current = int(min(last_level, key=lambda j: (degrees[j], j)))
    return current


def _bfs_levels(
    root: int, indptr: np.ndarray, indices: np.ndarray, visited: np.ndarray
) -> np.ndarray:
    """BFS depths from ``root`` over unvisited nodes (-1 = unreached).

    Unreached nodes keep -1 so the caller never confuses them with the
    root's own level — the peripheral search must stay inside the
    component it started in.
    """
    n = visited.shape[0]
    levels = np.full(n, -1, dtype=np.int64)
    levels[root] = 0
    queue: deque[int] = deque([root])
    while queue:
        node = queue.popleft()
        for j in indices[indptr[node] : indptr[node + 1]]:
            if levels[j] < 0 and not visited[j] and j != node:
                levels[j] = levels[node] + 1
                queue.append(j)
    return levels


def bandwidth(matrix: sp.spmatrix) -> int:
    """The matrix bandwidth ``max |i - j|`` over non-zeros (0 if empty)."""
    matrix = check_square(matrix, "matrix").tocoo()
    if matrix.nnz == 0:
        return 0
    return int(np.max(np.abs(matrix.row - matrix.col)))


def profile(matrix: sp.spmatrix) -> int:
    """The (lower) envelope profile: ``sum_i (i - min_j{ j : A_ij != 0 })``.

    The quantity envelope methods minimise; smaller = tighter rows.
    """
    matrix = check_square(matrix, "matrix").tocsr()
    total = 0
    for i in range(matrix.shape[0]):
        row = matrix.indices[matrix.indptr[i] : matrix.indptr[i + 1]]
        lower = row[row <= i]
        if lower.size:
            total += i - int(lower.min())
    return total


def apply_order(matrix: sp.spmatrix, order: np.ndarray) -> sp.csr_matrix:
    """Symmetrically permute ``matrix`` by ``order`` (``P M P^T``)."""
    matrix = matrix.tocsr()
    permuted = matrix[order][:, order].tocsr()
    permuted.sort_indices()
    return permuted
