"""The Woodbury matrix identity for low-rank-corrected solves.

Both approximation baselines reduce an :math:`n \\times n` solve to a small
dense one through Woodbury:

* **EMR** (Xu et al. [21]) rewrites :math:`(I - \\alpha H^T H)^{-1} q` with
  an anchor matrix ``H`` of shape ``(d, n)`` — :func:`low_rank_regularized_apply`.
* **FMR** (He et al. [8]) corrects a block-diagonal solve with the SVD of
  the off-block residual — the general :func:`woodbury_solve`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def woodbury_solve(
    solve_a: Callable[[np.ndarray], np.ndarray],
    u: np.ndarray,
    c: np.ndarray,
    v: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    """Solve :math:`(A + U C V) x = b` given a fast solver for ``A``.

    Implements :math:`x = A^{-1}b - A^{-1}U (C^{-1} + V A^{-1} U)^{-1}
    V A^{-1} b`.

    Parameters
    ----------
    solve_a:
        Callable applying :math:`A^{-1}` to a vector or an ``(n, r)``
        matrix (columns solved independently).
    u:
        ``(n, r)`` left factor.
    c:
        ``(r, r)`` invertible core.
    v:
        ``(r, n)`` right factor.
    b:
        Right-hand side vector of length ``n``.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[0]:
        raise ValueError(f"incompatible low-rank factors: U {u.shape}, V {v.shape}")
    a_inv_b = solve_a(b)
    a_inv_u = solve_a(u)
    capacitance = np.linalg.inv(c) + v @ a_inv_u
    correction = a_inv_u @ np.linalg.solve(capacitance, v @ a_inv_b)
    return a_inv_b - correction


def low_rank_regularized_apply(
    h: np.ndarray, q: np.ndarray, alpha: float
) -> np.ndarray:
    """Apply :math:`(I_n - \\alpha H^T H)^{-1}` to ``q`` in O(nd + d^3).

    This is the specialisation of Woodbury EMR relies on:

    .. math::
        (I - \\alpha H^T H)^{-1} = I + \\alpha H^T (I_d - \\alpha H H^T)^{-1} H

    Parameters
    ----------
    h:
        Dense or sparse ``(d, n)`` anchor matrix with ``d << n``.
    q:
        Query vector of length ``n``.
    alpha:
        Damping parameter, ``0 < alpha < 1``.
    """
    q = np.asarray(q, dtype=np.float64)
    hq = h @ q
    d = h.shape[0]
    hh_t = h @ h.T
    if not isinstance(hh_t, np.ndarray):  # sparse @ sparse.T returns sparse
        hh_t = hh_t.toarray()
    core = np.eye(d) - alpha * hh_t
    inner = np.linalg.solve(core, hq)
    correction = h.T @ inner
    if not isinstance(correction, np.ndarray):
        correction = np.asarray(correction).ravel()
    return q + alpha * correction
