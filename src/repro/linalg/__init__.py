"""Sparse linear-algebra substrate used by Mogul and the baselines.

The paper's engine is an :math:`LDL^T` factorization of the symmetric
positive-definite matrix :math:`W = I - \\alpha C^{-1/2} A C^{-1/2}`:

* :func:`incomplete_ldl` — Incomplete Cholesky (paper Eq. 6-7): the factor is
  restricted to W's own sparsity pattern, giving O(n) non-zeros on k-NN
  graphs.  Used by Mogul.
* :func:`complete_ldl` — Modified (complete) Cholesky with fill-in, computed
  with an elimination tree and an up-looking sparse algorithm.  Used by
  MogulE (paper §4.6.1) for exact scores.
* :mod:`repro.linalg.triangular` — forward/back substitution, including the
  row-restricted variants that Lemmas 4 and 5 justify.
* :func:`woodbury_solve` — the low-rank update identity EMR and FMR build on.
"""

from repro.linalg.elimination_tree import elimination_tree, ereach
from repro.linalg.ldl import LDLFactors, complete_ldl, incomplete_ldl
from repro.linalg.ordering import (
    apply_order,
    bandwidth,
    profile,
    reverse_cuthill_mckee,
)
from repro.linalg.packed import PackedUnitLower
from repro.linalg.spectral import (
    SpectralBasis,
    project_seeds,
    spectral_decompose,
    spectral_filter,
    spectral_scores,
)
from repro.linalg.triangular import (
    back_substitute,
    back_substitute_rows,
    forward_substitute,
    forward_substitute_rows,
    ldl_solve,
)
from repro.linalg.woodbury import low_rank_regularized_apply, woodbury_solve

__all__ = [
    "LDLFactors",
    "PackedUnitLower",
    "SpectralBasis",
    "apply_order",
    "bandwidth",
    "back_substitute",
    "back_substitute_rows",
    "complete_ldl",
    "elimination_tree",
    "ereach",
    "forward_substitute",
    "forward_substitute_rows",
    "incomplete_ldl",
    "ldl_solve",
    "low_rank_regularized_apply",
    "profile",
    "project_seeds",
    "reverse_cuthill_mckee",
    "spectral_decompose",
    "spectral_filter",
    "spectral_scores",
    "woodbury_solve",
]
