"""Elimination tree and row-pattern reachability for sparse Cholesky.

The Modified (complete) Cholesky factorization of paper §4.6.1 introduces
fill-in, so the non-zero pattern of each factor row must be predicted before
numeric work.  The classic tools are:

* the *elimination tree* (``parent[j]`` = first row above ``j`` whose factor
  row touches column ``j``), and
* *ereach*, which walks the tree to enumerate — in topological order — the
  columns participating in one factor row.

Both follow the standard algorithms (Davis, "Direct Methods for Sparse
Linear Systems", §4): union-find-style path compression for the tree and
marked upward walks for the reach.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def elimination_tree(pattern: sp.csr_matrix) -> np.ndarray:
    """Compute the elimination tree of a symmetric sparsity pattern.

    Parameters
    ----------
    pattern:
        Square CSR matrix; only the structure of its lower triangle is used.
        The matrix is assumed structurally symmetric (true for every graph
        matrix in this library).

    Returns
    -------
    numpy.ndarray
        ``parent`` array of length n; ``parent[j] == -1`` marks a root.
    """
    n = pattern.shape[0]
    if pattern.shape[0] != pattern.shape[1]:
        raise ValueError(f"pattern must be square, got shape {pattern.shape}")
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = pattern.indptr, pattern.indices
    for k in range(n):
        for p in range(indptr[k], indptr[k + 1]):
            i = indices[p]
            if i >= k:
                continue
            # Walk from i to the root of its current subtree, compressing
            # the path through `ancestor` as we go.
            while i != -1 and i != k:
                next_i = ancestor[i]
                ancestor[i] = k
                if next_i == -1:
                    parent[i] = k
                i = next_i
    return parent


def ereach(
    pattern: sp.csr_matrix,
    k: int,
    parent: np.ndarray,
    marks: np.ndarray,
) -> list[int]:
    """Columns of row ``k`` of the complete Cholesky factor, in topological order.

    Implements the ``cs_ereach`` walk: for every structural non-zero
    ``(k, j)`` with ``j < k``, climb the elimination tree from ``j`` towards
    ``k``, collecting unvisited nodes.  The returned list is ordered so that
    each column appears after all tree descendants that also appear — the
    order the numeric up-looking solve requires.

    Parameters
    ----------
    pattern:
        CSR pattern of the original matrix (structurally symmetric).
    k:
        Row whose factor pattern is requested.
    parent:
        Elimination tree from :func:`elimination_tree`.
    marks:
        Integer scratch array of length n.  ``marks[j] == k`` flags ``j`` as
        visited for this row; callers reuse the array across rows to avoid
        re-allocation (initialise with ``-1``).
    """
    reach: list[int] = []
    stack: list[int] = []
    marks[k] = k
    indptr, indices = pattern.indptr, pattern.indices
    for p in range(indptr[k], indptr[k + 1]):
        j = indices[p]
        if j >= k:
            continue
        # Climb from j towards the root until an already-visited node.
        while marks[j] != k:
            stack.append(j)
            marks[j] = k
            j = parent[j]
        # Unwind: nodes discovered closest to the root must come last.
        while stack:
            reach.append(stack.pop())
    reach.sort()
    return reach
