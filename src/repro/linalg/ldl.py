"""Sparse :math:`LDL^T` factorizations: Incomplete and Modified Cholesky.

The paper factorizes :math:`W = I - \\alpha (C')^{-1/2} A' (C')^{-1/2}` as
:math:`W \\approx L D L^T` with **Incomplete Cholesky** (Eq. 6-7): ``L`` is
unit lower triangular and restricted to W's own sparsity pattern, so it keeps
O(n) non-zeros on a k-NN graph.  MogulE (§4.6.1) instead uses **Modified
Cholesky** — the same recurrence *without* the pattern restriction — which is
an exact factorization with fill-in.

Two interchangeable numeric backends implement both variants:

* ``backend="csr"`` (default) — an up-looking factorization working on
  preallocated CSR arrays: a symbolic phase emits the factor's
  ``indptr``/``indices`` up front (W's own strict lower triangle for the
  incomplete variant, :func:`repro.linalg.elimination_tree` reachability
  for the complete one), and a numeric phase fills ``data`` with a
  scatter/gather sweep over a dense scratch row.  Because the permuted
  system matrix is bordered block diagonal (Lemma 3), the interior
  cluster blocks factorize independently: pass ``blocks=`` (the
  permutation's cluster slices, border last) and ``jobs=`` to spread the
  interior blocks over a thread pool, the border rows running last.
  Results are bitwise identical for every ``jobs`` value — each row's
  arithmetic never depends on how rows are grouped.  (The numeric sweep
  is pure-Python bytecode and holds the GIL, so ``jobs > 1`` buys
  wall-clock only on GIL-free Python builds; the block scheduling is
  the enabler, not the speedup, on standard CPython — there the win is
  the kernel itself, ~3x over the reference backend.)
* ``backend="reference"`` — the original dict-of-rows implementation,
  kept verbatim for equivalence testing and as the benchmark baseline.
  The backends produce the same sparsity pattern and the same values up
  to floating-point summation order (the reference accumulates sparse
  dot products in size-dependent dict order, the CSR backend in
  ascending column order).

W is symmetric positive definite (its eigenvalues lie in ``[1-alpha,
1+alpha]``), so the complete factorization cannot break down.  The
*incomplete* variant may in principle produce tiny or negative pivots
because dropped entries perturb the Schur complements; the paper does not
address this, so we guard pivots with a relative floor and count the
perturbations (``LDLFactors.pivot_perturbations``) so tests can assert the
guard almost never fires on real inputs.
"""

from __future__ import annotations

import heapq
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.linalg.elimination_tree import elimination_tree, ereach
from repro.utils.validation import check_jobs, check_square

#: Relative pivot floor: pivots below ``PIVOT_FLOOR * max(diag(W))`` are
#: clamped.  W's diagonal is ~1 for manifold-ranking matrices, so this is
#: effectively an absolute floor of 1e-12.
PIVOT_FLOOR = 1e-12

#: Numeric backends accepted by :func:`incomplete_ldl` / :func:`complete_ldl`.
BACKENDS = ("csr", "reference")

#: Backend used when callers do not choose one.
DEFAULT_BACKEND = "csr"


@dataclass(frozen=True)
class LDLFactors:
    """The result of an :math:`LDL^T` factorization.

    Attributes
    ----------
    lower:
        CSR matrix holding the **strict** lower triangle of ``L``
        (the unit diagonal is implied, paper Eq. 6 sets ``L_ii = 1``).
    upper:
        CSR matrix holding the strict upper triangle of ``U = L^T``.
        Stored separately because back substitution (paper Eq. 5) walks
        rows of ``U``, which are columns of ``L``.
    diag:
        The diagonal of ``D`` as a dense vector.
    pivot_perturbations:
        Number of pivots clamped by the safety floor (0 in healthy runs).
    """

    lower: sp.csr_matrix
    upper: sp.csr_matrix
    diag: np.ndarray
    pivot_perturbations: int = 0

    @property
    def n(self) -> int:
        """Dimension of the factored matrix."""
        return self.lower.shape[0]

    @property
    def nnz(self) -> int:
        """Non-zeros in the strict lower triangle of ``L``.

        This is the quantity the paper reports when comparing Mogul with
        MogulE (28,293 vs 132,818 on COIL-100).
        """
        return self.lower.nnz

    def reconstruct(self) -> sp.csr_matrix:
        """Return :math:`L D L^T` as a sparse matrix (for tests)."""
        eye = sp.identity(self.n, format="csr")
        l_full = (self.lower + eye).tocsr()
        return (l_full @ sp.diags(self.diag) @ l_full.T).tocsr()


def _to_csr(w) -> sp.csr_matrix:
    w = check_square(w, "W")
    if not sp.issparse(w):
        w = sp.csr_matrix(np.asarray(w, dtype=np.float64))
    w = w.tocsr().astype(np.float64)
    w.sum_duplicates()
    w.sort_indices()
    return w


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def _check_blocks(blocks, n: int) -> list[tuple[int, int]] | None:
    """Validate the bordered-block layout: contiguous slices covering [0, n).

    ``blocks`` is typically ``Permutation.cluster_slices`` — interior
    clusters first, border block last (the border may be empty).
    """
    if blocks is None:
        return None
    spans: list[tuple[int, int]] = []
    cursor = 0
    for block in blocks:
        if isinstance(block, slice):
            start = 0 if block.start is None else int(block.start)
            stop = n if block.stop is None else int(block.stop)
        else:
            start, stop = (int(block[0]), int(block[1]))
        if start != cursor or stop < start or stop > n:
            raise ValueError(
                "blocks must be contiguous ascending spans covering the "
                f"matrix: got span ({start}, {stop}) after position {cursor}"
            )
        spans.append((start, stop))
        cursor = stop
    if cursor != n:
        raise ValueError(
            f"blocks cover positions [0, {cursor}) but the matrix has {n} rows"
        )
    return spans


def incomplete_ldl(
    w,
    pivot_floor: float = PIVOT_FLOOR,
    fill_level: int = 0,
    backend: str = DEFAULT_BACKEND,
    blocks=None,
    jobs: int = 1,
) -> LDLFactors:
    """Incomplete Cholesky :math:`LDL^T` with level-of-fill control.

    Parameters
    ----------
    w:
        Symmetric positive-definite matrix (sparse or dense).
    pivot_floor:
        Relative floor applied to pivots of ``D`` (see module docstring).
    fill_level:
        How much fill the factor may keep beyond W's own pattern, using
        the standard ILU(p) level rule (an original entry has level 0; a
        fill entry created through pivot ``k`` has level
        ``lev(i,k) + lev(j,k) + 1``; entries above ``fill_level`` are
        dropped).  ``0`` is the paper's Incomplete Cholesky (Eq. 6-7);
        raising it interpolates toward Modified Cholesky (MogulE) —
        higher accuracy, more non-zeros, the classic quality/size knob.
        Fill can only appear where an elimination path exists, so the
        bordered block-diagonal structure of Lemma 3 is preserved at
        every level.
    backend:
        ``"csr"`` (default) or ``"reference"`` — see the module
        docstring.  Both produce the same pattern; values agree to
        floating-point summation order.
    blocks:
        Optional bordered-block layout (``Permutation.cluster_slices``,
        border last).  The CSR backend factorizes the interior blocks
        independently; a matrix that is not bordered block diagonal
        w.r.t. the given blocks raises ``ValueError``.  Ignored by the
        reference backend.
    jobs:
        Worker threads for the interior blocks (CSR backend only; needs
        ``blocks``).  Any value produces bitwise-identical factors.

    Returns
    -------
    LDLFactors
    """
    if fill_level < 0:
        raise ValueError(f"fill_level must be >= 0, got {fill_level}")
    _check_backend(backend)
    jobs = check_jobs(jobs)
    w = _to_csr(w)
    spans = _check_blocks(blocks, w.shape[0])
    if backend == "reference":
        return _incomplete_reference(w, pivot_floor, fill_level)
    if fill_level > 0:
        pattern_rows = _symbolic_fill_pattern(w, fill_level)
        pat_indptr, pat_indices = _pattern_rows_to_csr(pattern_rows)
    else:
        lower_w = sp.tril(w, k=-1, format="csr")
        lower_w.sort_indices()
        pat_indptr = lower_w.indptr.astype(np.int64)
        pat_indices = lower_w.indices.astype(np.int64)
    return _factor_with_pattern(w, pat_indptr, pat_indices, pivot_floor, spans, jobs)


def complete_ldl(
    w,
    pivot_floor: float = PIVOT_FLOOR,
    backend: str = DEFAULT_BACKEND,
    blocks=None,
    jobs: int = 1,
) -> LDLFactors:
    """Modified (complete) Cholesky :math:`LDL^T` with fill-in (§4.6.1).

    The factor pattern is predicted from the elimination tree (Davis
    §4.8) and the numeric values follow from one sparse triangular solve
    per row.  Because no entry is dropped, :math:`LDL^T = W` exactly (up
    to round-off) and the resulting scores are exact — this is MogulE's
    engine.  ``backend``/``blocks``/``jobs`` as in :func:`incomplete_ldl`.
    """
    _check_backend(backend)
    jobs = check_jobs(jobs)
    w = _to_csr(w)
    spans = _check_blocks(blocks, w.shape[0])
    if backend == "reference":
        return _complete_reference(w, pivot_floor)
    pat_indptr, pat_indices = _symbolic_complete(w)
    return _factor_with_pattern(w, pat_indptr, pat_indices, pivot_floor, spans, jobs)


# -- CSR backend -----------------------------------------------------------


def _pattern_rows_to_csr(
    pattern_rows: list[list[int]],
) -> tuple[np.ndarray, np.ndarray]:
    """Pack per-row column lists into preallocated CSR index arrays."""
    n = len(pattern_rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    for i, row in enumerate(pattern_rows):
        indptr[i + 1] = indptr[i] + len(row)
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for i, row in enumerate(pattern_rows):
        indices[indptr[i] : indptr[i + 1]] = row
    return indptr, indices


def _symbolic_complete(w: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    """Predict the complete factor's row patterns via the elimination tree.

    This is :func:`repro.linalg.ereach` run over every row, restated on
    plain Python lists so the symbolic phase does not dominate the
    factorization it serves; the resulting patterns are identical.
    """
    n = w.shape[0]
    lower_w = sp.tril(w, k=-1, format="csr")
    lower_w.sort_indices()
    lp = lower_w.indptr.tolist()
    li = lower_w.indices.tolist()

    # Elimination tree with union-find path compression (Davis §4.1),
    # driven by the strict lower triangle only.
    parent = [-1] * n
    ancestor = [-1] * n
    for k in range(n):
        for p in range(lp[k], lp[k + 1]):
            i = li[p]
            while i != -1 and i != k:
                nxt = ancestor[i]
                ancestor[i] = k
                if nxt == -1:
                    parent[i] = k
                i = nxt

    # Row reachability (cs_ereach): climb from every structural non-zero
    # towards the row, collecting unvisited tree nodes.
    marks = [-1] * n
    indptr = np.zeros(n + 1, dtype=np.int64)
    all_cols: list[int] = []
    for k in range(n):
        marks[k] = k
        row: list[int] = []
        for p in range(lp[k], lp[k + 1]):
            j = li[p]
            stack: list[int] = []
            while marks[j] != k:
                stack.append(j)
                marks[j] = k
                j = parent[j]
            while stack:
                row.append(stack.pop())
        row.sort()
        all_cols.extend(row)
        indptr[k + 1] = len(all_cols)
    return indptr, np.asarray(all_cols, dtype=np.int64)


def _factor_rows(
    rs: int,
    re: int,
    lp: list[int],
    li: list[int],
    wlp: list[int],
    wli: list[int],
    wlv: list[float],
    dw: list[float],
    d: list[float],
    floor: float,
    col_rows: list[list[int]],
    col_scaled: list[list[float]],
    marker: list[int],
    y: list[float],
) -> tuple[int, list[float]]:
    """Numeric up-looking sweep over rows ``[rs, re)``.

    For each row the strict-lower pattern is scattered into the dense
    scratch ``y`` (marking membership in ``marker``), W's values laid on
    top, and the columns consumed in ascending order: finalizing
    ``L_ik`` propagates ``-L_ik * (L_jk D_kk)`` to every later pattern
    column ``j`` that column ``k`` already carries (``col_scaled`` keeps
    the products pre-scaled by ``D_kk``).  The ``marker`` guard is what
    makes the same kernel serve both variants — for the complete pattern
    every propagation target is in the row pattern (the elimination-tree
    closure), for the incomplete one the guard *is* the drop rule.

    Returns the pivot-perturbation count and the row range's factor
    values in pattern order.
    """
    out: list[float] = []
    append_out = out.append
    perturb = 0
    for i in range(rs, re):
        s = lp[i]
        e = lp[i + 1]
        for idx in range(s, e):
            j = li[idx]
            marker[j] = i
            y[j] = 0.0
        for idx in range(wlp[i], wlp[i + 1]):
            y[wli[idx]] = wlv[idx]
        pivot = dw[i]
        for idx in range(s, e):
            k = li[idx]
            yk = y[k]
            rk = col_rows[k]
            ck = col_scaled[k]
            if yk != 0.0:
                l_ik = yk / d[k]
                pivot -= l_ik * yk
                for t in range(len(rk)):
                    r = rk[t]
                    if marker[r] == i:
                        y[r] -= l_ik * ck[t]
            else:
                l_ik = 0.0
            rk.append(i)
            ck.append(yk)
            append_out(l_ik)
        if pivot < floor:
            pivot = floor
            perturb += 1
        d[i] = pivot
    return perturb, out


def _row_groups(
    spans: list[tuple[int, int]], jobs: int, pat_indptr: np.ndarray
) -> list[tuple[int, int]]:
    """Partition the interior blocks into ``jobs`` contiguous row ranges.

    Interior blocks are mutually independent, so any contiguous grouping
    is valid; ranges are balanced by pattern non-zeros (a proxy for
    numeric work).  The border block is excluded — it must run last.
    """
    interior = spans[:-1]
    if not interior:
        return []
    jobs = min(jobs, len(interior))
    total = int(pat_indptr[interior[-1][1]] - pat_indptr[interior[0][0]])
    target = max(1, total // jobs)
    groups: list[tuple[int, int]] = []
    group_start = interior[0][0]
    acc = 0
    for start, stop in interior:
        acc += int(pat_indptr[stop] - pat_indptr[start])
        if acc >= target and len(groups) < jobs - 1:
            groups.append((group_start, stop))
            group_start = stop
            acc = 0
    groups.append((group_start, interior[-1][1]))
    return groups


def _factor_with_pattern(
    w: sp.csr_matrix,
    pat_indptr: np.ndarray,
    pat_indices: np.ndarray,
    pivot_floor: float,
    spans: list[tuple[int, int]] | None,
    jobs: int,
) -> LDLFactors:
    """Numeric phase shared by both variants of the CSR backend."""
    n = w.shape[0]
    lower_w = sp.tril(w, k=-1, format="csr")
    lower_w.sort_indices()
    diag_w = w.diagonal()
    floor = pivot_floor * max(float(np.max(np.abs(diag_w))), 1.0)

    if spans is not None:
        # Interior rows must never reach columns left of their block —
        # the independence the parallel schedule (and Lemma 3) relies on.
        for start, stop in spans[:-1]:
            seg = pat_indices[pat_indptr[start] : pat_indptr[stop]]
            if seg.size and int(seg.min()) < start:
                raise ValueError(
                    "matrix is not bordered block diagonal w.r.t. blocks: "
                    f"rows [{start}, {stop}) reference columns before {start}"
                )

    nnz = int(pat_indptr[-1])
    data = np.empty(nnz, dtype=np.float64)
    lp = pat_indptr.tolist()
    li = pat_indices.tolist()
    wlp = lower_w.indptr.tolist()
    wli = lower_w.indices.tolist()
    wlv = lower_w.data.tolist()
    dw = diag_w.tolist()
    d: list[float] = [0.0] * n
    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_scaled: list[list[float]] = [[] for _ in range(n)]

    def run_range(rs: int, re: int) -> int:
        marker = [-1] * n
        y = [0.0] * n
        perturb, values = _factor_rows(
            rs, re, lp, li, wlp, wli, wlv, dw, d, floor,
            col_rows, col_scaled, marker, y,
        )
        data[lp[rs] : lp[re]] = values
        return perturb

    perturbations = 0
    if spans is None or len(spans) == 1:
        perturbations += run_range(0, n)
    else:
        groups = _row_groups(spans, jobs, pat_indptr)
        if jobs > 1 and len(groups) > 1:
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                futures = [pool.submit(run_range, rs, re) for rs, re in groups]
                perturbations += sum(f.result() for f in futures)
        else:
            perturbations += sum(run_range(rs, re) for rs, re in groups)
        border_start, border_stop = spans[-1]
        perturbations += run_range(border_start, border_stop)

    lower = sp.csr_matrix(
        (data, pat_indices.copy(), pat_indptr.copy()), shape=(n, n)
    )
    return LDLFactors(
        lower=lower,
        upper=lower.T.tocsr(),
        diag=np.asarray(d, dtype=np.float64),
        pivot_perturbations=perturbations,
    )


# -- span-wise factorization (the sharded build's primitives) --------------
#
# A bordered block-diagonal matrix factors in independent *leading spans*
# (any contiguous run of interior blocks) followed by the border rows,
# which consume every span's result.  The sharded index build farms the
# spans to worker processes; these two functions are the process-safe
# halves of `_factor_with_pattern`, produced so that the assembled factor
# is **bitwise identical** to the single-call path: each row's arithmetic
# depends only on its pattern, W's values, the diagonal of earlier
# columns and the earlier rows' pre-division column values — none of
# which change under span grouping.


@dataclass(frozen=True)
class RowSpanFactor:
    """The factorization of one independent leading row span.

    Attributes
    ----------
    values:
        Factor values in pattern (row-major, column-ascending) order.
    scaled:
        The matching *pre-division* values :math:`L_{ik} D_{kk}` in the
        same order — the quantity the border pass propagates.  Returned
        verbatim (not recomputed as ``values * diag``) because the
        division/multiplication round trip is not bitwise stable.
    diag:
        The span's pivots :math:`D_{ii}`.
    perturbations:
        Pivots clamped by the safety floor within the span.
    """

    values: np.ndarray
    scaled: np.ndarray
    diag: np.ndarray
    perturbations: int


def global_pivot_floor(w: sp.csr_matrix, pivot_floor: float = PIVOT_FLOOR) -> float:
    """The absolute pivot floor `_factor_with_pattern` applies for ``w``.

    Span workers must receive this value from the caller — computing it
    from a span's local diagonal would change clamping decisions.
    """
    return pivot_floor * max(float(np.max(np.abs(w.diagonal()))), 1.0)


def symbolic_pattern(
    w: sp.csr_matrix, factorization: str = "incomplete", fill_level: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """The factor's strict-lower CSR pattern for either variant.

    Exactly the pattern the CSR backend preallocates: W's own strict
    lower triangle for the paper's ICF, the ILU(p) closure for
    ``fill_level > 0``, the elimination-tree closure for
    ``factorization="complete"``.
    """
    w = _to_csr(w)
    if factorization == "complete":
        return _symbolic_complete(w)
    if factorization != "incomplete":
        raise ValueError(
            f"factorization must be 'incomplete' or 'complete', got {factorization!r}"
        )
    if fill_level > 0:
        return _pattern_rows_to_csr(_symbolic_fill_pattern(w, fill_level))
    lower_w = sp.tril(w, k=-1, format="csr")
    lower_w.sort_indices()
    return lower_w.indptr.astype(np.int64), lower_w.indices.astype(np.int64)


def factor_row_span(
    pat_indptr: np.ndarray,
    pat_indices: np.ndarray,
    wl_indptr: np.ndarray,
    wl_indices: np.ndarray,
    wl_data: np.ndarray,
    w_diag: np.ndarray,
    floor: float,
) -> RowSpanFactor:
    """Factor one independent leading span, all arrays in local coordinates.

    The caller slices the global pattern / W-lower / diagonal rows for the
    span and shifts column indices so the span occupies ``[0, m)``; the
    span must be self-contained (every column inside it), which holds for
    any run of interior blocks of a bordered block-diagonal matrix.
    Everything here pickles, so the sharded build can run one call per
    worker process.
    """
    m = int(np.asarray(w_diag).shape[0])
    pat_indices = np.asarray(pat_indices, dtype=np.int64)
    if pat_indices.size and (
        int(pat_indices.min()) < 0 or int(pat_indices.max()) >= m
    ):
        raise ValueError("span pattern references columns outside the span")
    li = pat_indices.tolist()
    d: list[float] = [0.0] * m
    col_rows: list[list[int]] = [[] for _ in range(m)]
    col_scaled: list[list[float]] = [[] for _ in range(m)]
    perturb, out = _factor_rows(
        0,
        m,
        np.asarray(pat_indptr, dtype=np.int64).tolist(),
        li,
        np.asarray(wl_indptr, dtype=np.int64).tolist(),
        np.asarray(wl_indices, dtype=np.int64).tolist(),
        np.asarray(wl_data, dtype=np.float64).tolist(),
        np.asarray(w_diag, dtype=np.float64).tolist(),
        d,
        floor,
        col_rows,
        col_scaled,
        [-1] * m,
        [0.0] * m,
    )
    # Flatten the per-column pre-division values back into pattern order:
    # column k's entries were appended in ascending row order, so one
    # cursor per column realigns them with the row-major pattern walk.
    scaled = np.empty(len(out), dtype=np.float64)
    cursors = [0] * m
    for idx, k in enumerate(li):
        scaled[idx] = col_scaled[k][cursors[k]]
        cursors[k] += 1
    return RowSpanFactor(
        values=np.asarray(out, dtype=np.float64),
        scaled=scaled,
        diag=np.asarray(d, dtype=np.float64),
        perturbations=perturb,
    )


def factor_border_rows(
    w: sp.csr_matrix,
    pat_indptr: np.ndarray,
    pat_indices: np.ndarray,
    border_start: int,
    interior_diag: np.ndarray,
    interior_scaled: np.ndarray,
    floor: float,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Factor the trailing border rows given every interior span's result.

    ``interior_diag`` / ``interior_scaled`` are the concatenated
    :class:`RowSpanFactor` outputs for rows ``[0, border_start)`` (scaled
    values aligned with the global pattern).  Returns the border rows'
    factor values in pattern order, the border pivots, and the
    perturbation count.
    """
    n = w.shape[0]
    lower_w = sp.tril(w, k=-1, format="csr")
    lower_w.sort_indices()
    interior_nnz = int(pat_indptr[border_start])

    # The border pass only consults columns that appear in border-row
    # patterns; rebuild the per-column (rows, pre-division values)
    # accumulators for exactly those columns with one vectorized grouping
    # over the interior pattern instead of replaying the interior sweep.
    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_scaled: list[list[float]] = [[] for _ in range(n)]
    border_cols = pat_indices[interior_nnz:]
    needed = np.zeros(n, dtype=bool)
    needed[border_cols[border_cols < border_start]] = True
    if interior_nnz and np.any(needed):
        entry_rows = np.repeat(
            np.arange(border_start, dtype=np.int64),
            np.diff(pat_indptr[: border_start + 1]),
        )
        entry_cols = pat_indices[:interior_nnz]
        keep = needed[entry_cols]
        sel_rows = entry_rows[keep]
        sel_cols = entry_cols[keep]
        sel_scaled = interior_scaled[:interior_nnz][keep]
        order = np.argsort(sel_cols, kind="stable")  # preserves row order
        sel_rows, sel_cols = sel_rows[order], sel_cols[order]
        sel_scaled = sel_scaled[order]
        boundaries = np.flatnonzero(
            np.concatenate(([True], sel_cols[1:] != sel_cols[:-1]))
        )
        stops = np.append(boundaries[1:], sel_cols.size)
        for lo, hi in zip(boundaries, stops):
            k = int(sel_cols[lo])
            col_rows[k] = sel_rows[lo:hi].tolist()
            col_scaled[k] = sel_scaled[lo:hi].tolist()

    d: list[float] = [0.0] * n
    d[:border_start] = np.asarray(interior_diag, dtype=np.float64).tolist()
    perturb, out = _factor_rows(
        border_start,
        n,
        np.asarray(pat_indptr, dtype=np.int64).tolist(),
        np.asarray(pat_indices, dtype=np.int64).tolist(),
        lower_w.indptr.tolist(),
        lower_w.indices.tolist(),
        lower_w.data.tolist(),
        w.diagonal().tolist(),
        d,
        floor,
        col_rows,
        col_scaled,
        [-1] * n,
        [0.0] * n,
    )
    return (
        np.asarray(out, dtype=np.float64),
        np.asarray(d[border_start:], dtype=np.float64),
        perturb,
    )


# -- reference backend (the original dict-of-rows implementation) ----------


def _incomplete_reference(
    w: sp.csr_matrix, pivot_floor: float, fill_level: int
) -> LDLFactors:
    """Row-by-row recurrence with sparse dot products (paper Eq. 6-7)."""
    n = w.shape[0]
    indptr, indices, data = w.indptr, w.indices, w.data

    diag_w = w.diagonal()
    floor = pivot_floor * max(float(np.max(np.abs(diag_w))), 1.0)

    if fill_level > 0:
        pattern_rows = _symbolic_fill_pattern(w, fill_level)
    else:
        pattern_rows = None

    d = np.zeros(n, dtype=np.float64)
    # Row-wise storage of the strict lower triangle of L while factoring:
    # dicts give O(1) membership for the sparse dot products below.
    row_maps: list[dict[int, float]] = [dict() for _ in range(n)]
    perturbations = 0

    for i in range(n):
        row_i = row_maps[i]
        start, stop = indptr[i], indptr[i + 1]
        if pattern_rows is None:
            # Pattern of row i, ascending, restricted to the strict lower.
            columns = [int(indices[p]) for p in range(start, stop) if indices[p] < i]
            values = {
                int(indices[p]): data[p]
                for p in range(start, stop)
                if indices[p] < i
            }
        else:
            columns = pattern_rows[i]
            w_row = {
                int(indices[p]): data[p]
                for p in range(start, stop)
                if indices[p] < i
            }
            values = {j: w_row.get(j, 0.0) for j in columns}
        for j in columns:
            row_j = row_maps[j]
            # s = W_ij - sum_{k<j} L_ik L_jk D_kk  over the shared pattern.
            s = values[j]
            if row_i and row_j:
                if len(row_i) <= len(row_j):
                    small, big = row_i, row_j
                else:
                    small, big = row_j, row_i
                for k, v_small in small.items():
                    v_big = big.get(k)
                    if v_big is not None:
                        s -= v_small * v_big * d[k]
            row_i[j] = s / d[j]
        # D_ii = W_ii - sum_{k<i} L_ik^2 D_kk
        pivot = diag_w[i]
        for k, v in row_i.items():
            pivot -= v * v * d[k]
        if pivot < floor:
            pivot = floor
            perturbations += 1
        d[i] = pivot

    lower = _rows_to_csr(row_maps, n)
    return LDLFactors(
        lower=lower,
        upper=lower.T.tocsr(),
        diag=d,
        pivot_perturbations=perturbations,
    )


def _symbolic_fill_pattern(w: sp.csr_matrix, level: int) -> list[list[int]]:
    """ILU(p)-style symbolic factorization for the symmetric lower triangle.

    Returns, per row ``i``, the ascending strict-lower column pattern the
    numeric phase may fill.  Entry levels follow the standard rule:
    original entries are level 0; eliminating pivot ``k`` creates (i, j)
    with level ``lev(i,k) + lev(j,k) + 1``; only entries with level <=
    ``level`` are kept.  ``col_entries[k]`` accumulates the completed rows'
    entries in column ``k`` so row ``i`` can look up every ``L_jk`` with
    ``j < i`` in one pass (the symmetric analogue of consuming U's rows in
    IKJ ILU).
    """
    n = w.shape[0]
    indptr, indices = w.indptr, w.indices
    col_entries: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    pattern_rows: list[list[int]] = []
    for i in range(n):
        levels: dict[int, int] = {
            int(indices[p]): 0
            for p in range(indptr[i], indptr[i + 1])
            if indices[p] < i
        }
        # Process pivots in ascending order; new fill always lands at
        # columns j > k, so one sorted sweep with insertions suffices.
        heap = list(levels)
        heapq.heapify(heap)
        seen: set[int] = set()
        while heap:
            k = heapq.heappop(heap)
            if k in seen:
                continue
            seen.add(k)
            lev_ik = levels[k]
            if lev_ik >= level:
                continue  # any fill through k would exceed the budget
            for j, lev_jk in col_entries[k]:
                if j <= k or j >= i:
                    continue
                candidate = lev_ik + lev_jk + 1
                if candidate > level:
                    continue
                previous = levels.get(j)
                if previous is None or candidate < previous:
                    levels[j] = candidate
                    if j not in seen:
                        heapq.heappush(heap, j)
        columns = sorted(levels)
        pattern_rows.append(columns)
        for j in columns:
            col_entries[j].append((i, levels[j]))
    return pattern_rows


def _complete_reference(w: sp.csr_matrix, pivot_floor: float) -> LDLFactors:
    """Up-looking Modified Cholesky driven by :func:`ereach` (Davis §4.8)."""
    n = w.shape[0]
    indptr, indices, data = w.indptr, w.indices, w.data

    diag_w = w.diagonal()
    floor = pivot_floor * max(float(np.max(np.abs(diag_w))), 1.0)

    parent = elimination_tree(w)
    marks = np.full(n, -1, dtype=np.int64)
    y = np.zeros(n, dtype=np.float64)
    d = np.zeros(n, dtype=np.float64)
    # L stored by columns while factoring; column j gains one entry per
    # later row k with L_kj != 0, appended in ascending row order.
    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_vals: list[list[float]] = [[] for _ in range(n)]
    perturbations = 0

    for k in range(n):
        pattern = ereach(w, k, parent, marks)
        # Scatter row k of W (strictly-lower part) into the dense scratch.
        for p in range(indptr[k], indptr[k + 1]):
            j = indices[p]
            if j < k:
                y[j] = data[p]
        pivot = diag_w[k]
        for j in pattern:  # ascending == topological (parent[j] > j)
            yj = y[j]
            y[j] = 0.0
            # Propagate to later columns: y_r -= L_rj * y_j for r in col j.
            rows_j = col_rows[j]
            vals_j = col_vals[j]
            for idx in range(len(rows_j)):
                y[rows_j[idx]] -= vals_j[idx] * yj
            l_kj = yj / d[j]
            pivot -= l_kj * yj
            col_rows[j].append(k)
            col_vals[j].append(l_kj)
        if pivot < floor:
            pivot = floor
            perturbations += 1
        d[k] = pivot

    upper = _cols_to_csr_upper(col_rows, col_vals, n)
    return LDLFactors(
        lower=upper.T.tocsr(),
        upper=upper,
        diag=d,
        pivot_perturbations=perturbations,
    )


def _rows_to_csr(row_maps: list[dict[int, float]], n: int) -> sp.csr_matrix:
    """Assemble per-row dicts (strict lower triangle) into a CSR matrix."""
    nnz = sum(len(r) for r in row_maps)
    indptr = np.zeros(n + 1, dtype=np.int64)
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=np.float64)
    pos = 0
    for i, row in enumerate(row_maps):
        for j in sorted(row):
            col_idx[pos] = j
            values[pos] = row[j]
            pos += 1
        indptr[i + 1] = pos
    return sp.csr_matrix((values, col_idx, indptr), shape=(n, n))


def _cols_to_csr_upper(
    col_rows: list[list[int]], col_vals: list[list[float]], n: int
) -> sp.csr_matrix:
    """Assemble column-wise L entries into the strict upper triangle of L^T.

    Column ``j`` of ``L`` (entries ``L_kj``, ``k > j``) is exactly row ``j``
    of ``U = L^T``, and the rows were appended in ascending order, so the
    CSR arrays can be emitted directly without sorting.
    """
    nnz = sum(len(r) for r in col_rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=np.float64)
    pos = 0
    for j in range(n):
        rows_j = col_rows[j]
        count = len(rows_j)
        col_idx[pos : pos + count] = rows_j
        values[pos : pos + count] = col_vals[j]
        pos += count
        indptr[j + 1] = pos
    return sp.csr_matrix((values, col_idx, indptr), shape=(n, n))
