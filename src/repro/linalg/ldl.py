"""Sparse :math:`LDL^T` factorizations: Incomplete and Modified Cholesky.

The paper factorizes :math:`W = I - \\alpha (C')^{-1/2} A' (C')^{-1/2}` as
:math:`W \\approx L D L^T` with **Incomplete Cholesky** (Eq. 6-7): ``L`` is
unit lower triangular and restricted to W's own sparsity pattern, so it keeps
O(n) non-zeros on a k-NN graph.  MogulE (§4.6.1) instead uses **Modified
Cholesky** — the same recurrence *without* the pattern restriction — which is
an exact factorization with fill-in.

Both variants are implemented here from scratch:

* :func:`incomplete_ldl` — row-by-row recurrence with sparse dot products
  over the fixed pattern (paper Eq. 6-7).
* :func:`complete_ldl` — up-looking sparse factorization driven by the
  elimination tree (Davis §4.8), producing the exact factor with fill-in.

W is symmetric positive definite (its eigenvalues lie in ``[1-alpha,
1+alpha]``), so the complete factorization cannot break down.  The
*incomplete* variant may in principle produce tiny or negative pivots
because dropped entries perturb the Schur complements; the paper does not
address this, so we guard pivots with a relative floor and count the
perturbations (``LDLFactors.pivot_perturbations``) so tests can assert the
guard almost never fires on real inputs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.linalg.elimination_tree import elimination_tree, ereach
from repro.utils.validation import check_square

#: Relative pivot floor: pivots below ``PIVOT_FLOOR * max(diag(W))`` are
#: clamped.  W's diagonal is ~1 for manifold-ranking matrices, so this is
#: effectively an absolute floor of 1e-12.
PIVOT_FLOOR = 1e-12


@dataclass(frozen=True)
class LDLFactors:
    """The result of an :math:`LDL^T` factorization.

    Attributes
    ----------
    lower:
        CSR matrix holding the **strict** lower triangle of ``L``
        (the unit diagonal is implied, paper Eq. 6 sets ``L_ii = 1``).
    upper:
        CSR matrix holding the strict upper triangle of ``U = L^T``.
        Stored separately because back substitution (paper Eq. 5) walks
        rows of ``U``, which are columns of ``L``.
    diag:
        The diagonal of ``D`` as a dense vector.
    pivot_perturbations:
        Number of pivots clamped by the safety floor (0 in healthy runs).
    """

    lower: sp.csr_matrix
    upper: sp.csr_matrix
    diag: np.ndarray
    pivot_perturbations: int = 0

    @property
    def n(self) -> int:
        """Dimension of the factored matrix."""
        return self.lower.shape[0]

    @property
    def nnz(self) -> int:
        """Non-zeros in the strict lower triangle of ``L``.

        This is the quantity the paper reports when comparing Mogul with
        MogulE (28,293 vs 132,818 on COIL-100).
        """
        return self.lower.nnz

    def reconstruct(self) -> sp.csr_matrix:
        """Return :math:`L D L^T` as a sparse matrix (for tests)."""
        eye = sp.identity(self.n, format="csr")
        l_full = (self.lower + eye).tocsr()
        return (l_full @ sp.diags(self.diag) @ l_full.T).tocsr()


def _to_csr(w) -> sp.csr_matrix:
    w = check_square(w, "W")
    if not sp.issparse(w):
        w = sp.csr_matrix(np.asarray(w, dtype=np.float64))
    w = w.tocsr().astype(np.float64)
    w.sum_duplicates()
    w.sort_indices()
    return w


def incomplete_ldl(
    w, pivot_floor: float = PIVOT_FLOOR, fill_level: int = 0
) -> LDLFactors:
    """Incomplete Cholesky :math:`LDL^T` with level-of-fill control.

    Parameters
    ----------
    w:
        Symmetric positive-definite matrix (sparse or dense).
    pivot_floor:
        Relative floor applied to pivots of ``D`` (see module docstring).
    fill_level:
        How much fill the factor may keep beyond W's own pattern, using
        the standard ILU(p) level rule (an original entry has level 0; a
        fill entry created through pivot ``k`` has level
        ``lev(i,k) + lev(j,k) + 1``; entries above ``fill_level`` are
        dropped).  ``0`` is the paper's Incomplete Cholesky (Eq. 6-7);
        raising it interpolates toward Modified Cholesky (MogulE) —
        higher accuracy, more non-zeros, the classic quality/size knob.
        Fill can only appear where an elimination path exists, so the
        bordered block-diagonal structure of Lemma 3 is preserved at
        every level.

    Returns
    -------
    LDLFactors
    """
    if fill_level < 0:
        raise ValueError(f"fill_level must be >= 0, got {fill_level}")
    w = _to_csr(w)
    n = w.shape[0]
    indptr, indices, data = w.indptr, w.indices, w.data

    diag_w = w.diagonal()
    floor = pivot_floor * max(float(np.max(np.abs(diag_w))), 1.0)

    if fill_level > 0:
        pattern_rows = _symbolic_fill_pattern(w, fill_level)
    else:
        pattern_rows = None

    d = np.zeros(n, dtype=np.float64)
    # Row-wise storage of the strict lower triangle of L while factoring:
    # dicts give O(1) membership for the sparse dot products below.
    row_maps: list[dict[int, float]] = [dict() for _ in range(n)]
    perturbations = 0

    for i in range(n):
        row_i = row_maps[i]
        start, stop = indptr[i], indptr[i + 1]
        if pattern_rows is None:
            # Pattern of row i, ascending, restricted to the strict lower.
            columns = [int(indices[p]) for p in range(start, stop) if indices[p] < i]
            values = {
                int(indices[p]): data[p]
                for p in range(start, stop)
                if indices[p] < i
            }
        else:
            columns = pattern_rows[i]
            w_row = {
                int(indices[p]): data[p]
                for p in range(start, stop)
                if indices[p] < i
            }
            values = {j: w_row.get(j, 0.0) for j in columns}
        for j in columns:
            row_j = row_maps[j]
            # s = W_ij - sum_{k<j} L_ik L_jk D_kk  over the shared pattern.
            s = values[j]
            if row_i and row_j:
                if len(row_i) <= len(row_j):
                    small, big = row_i, row_j
                else:
                    small, big = row_j, row_i
                for k, v_small in small.items():
                    v_big = big.get(k)
                    if v_big is not None:
                        s -= v_small * v_big * d[k]
            row_i[j] = s / d[j]
        # D_ii = W_ii - sum_{k<i} L_ik^2 D_kk
        pivot = diag_w[i]
        for k, v in row_i.items():
            pivot -= v * v * d[k]
        if pivot < floor:
            pivot = floor
            perturbations += 1
        d[i] = pivot

    lower = _rows_to_csr(row_maps, n)
    return LDLFactors(
        lower=lower,
        upper=lower.T.tocsr(),
        diag=d,
        pivot_perturbations=perturbations,
    )


def _symbolic_fill_pattern(w: sp.csr_matrix, level: int) -> list[list[int]]:
    """ILU(p)-style symbolic factorization for the symmetric lower triangle.

    Returns, per row ``i``, the ascending strict-lower column pattern the
    numeric phase may fill.  Entry levels follow the standard rule:
    original entries are level 0; eliminating pivot ``k`` creates (i, j)
    with level ``lev(i,k) + lev(j,k) + 1``; only entries with level <=
    ``level`` are kept.  ``col_entries[k]`` accumulates the completed rows'
    entries in column ``k`` so row ``i`` can look up every ``L_jk`` with
    ``j < i`` in one pass (the symmetric analogue of consuming U's rows in
    IKJ ILU).
    """
    n = w.shape[0]
    indptr, indices = w.indptr, w.indices
    col_entries: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    pattern_rows: list[list[int]] = []
    for i in range(n):
        levels: dict[int, int] = {
            int(indices[p]): 0
            for p in range(indptr[i], indptr[i + 1])
            if indices[p] < i
        }
        # Process pivots in ascending order; new fill always lands at
        # columns j > k, so one sorted sweep with insertions suffices.
        heap = list(levels)
        heapq.heapify(heap)
        seen: set[int] = set()
        while heap:
            k = heapq.heappop(heap)
            if k in seen:
                continue
            seen.add(k)
            lev_ik = levels[k]
            if lev_ik >= level:
                continue  # any fill through k would exceed the budget
            for j, lev_jk in col_entries[k]:
                if j <= k or j >= i:
                    continue
                candidate = lev_ik + lev_jk + 1
                if candidate > level:
                    continue
                previous = levels.get(j)
                if previous is None or candidate < previous:
                    levels[j] = candidate
                    if j not in seen:
                        heapq.heappush(heap, j)
        columns = sorted(levels)
        pattern_rows.append(columns)
        for j in columns:
            col_entries[j].append((i, levels[j]))
    return pattern_rows


def complete_ldl(w, pivot_floor: float = PIVOT_FLOOR) -> LDLFactors:
    """Modified (complete) Cholesky :math:`LDL^T` with fill-in (§4.6.1).

    Uses the up-looking algorithm: for each row ``k`` the non-zero pattern
    of the factor row is predicted with :func:`repro.linalg.ereach` and the
    numeric values follow from one sparse triangular solve.  Because no
    entry is dropped, :math:`LDL^T = W` exactly (up to round-off) and the
    resulting scores are exact — this is MogulE's engine.
    """
    w = _to_csr(w)
    n = w.shape[0]
    indptr, indices, data = w.indptr, w.indices, w.data

    diag_w = w.diagonal()
    floor = pivot_floor * max(float(np.max(np.abs(diag_w))), 1.0)

    parent = elimination_tree(w)
    marks = np.full(n, -1, dtype=np.int64)
    y = np.zeros(n, dtype=np.float64)
    d = np.zeros(n, dtype=np.float64)
    # L stored by columns while factoring; column j gains one entry per
    # later row k with L_kj != 0, appended in ascending row order.
    col_rows: list[list[int]] = [[] for _ in range(n)]
    col_vals: list[list[float]] = [[] for _ in range(n)]
    perturbations = 0

    for k in range(n):
        pattern = ereach(w, k, parent, marks)
        # Scatter row k of W (strictly-lower part) into the dense scratch.
        for p in range(indptr[k], indptr[k + 1]):
            j = indices[p]
            if j < k:
                y[j] = data[p]
        pivot = diag_w[k]
        for j in pattern:  # ascending == topological (parent[j] > j)
            yj = y[j]
            y[j] = 0.0
            # Propagate to later columns: y_r -= L_rj * y_j for r in col j.
            rows_j = col_rows[j]
            vals_j = col_vals[j]
            for idx in range(len(rows_j)):
                y[rows_j[idx]] -= vals_j[idx] * yj
            l_kj = yj / d[j]
            pivot -= l_kj * yj
            col_rows[j].append(k)
            col_vals[j].append(l_kj)
        if pivot < floor:
            pivot = floor
            perturbations += 1
        d[k] = pivot

    upper = _cols_to_csr_upper(col_rows, col_vals, n)
    return LDLFactors(
        lower=upper.T.tocsr(),
        upper=upper,
        diag=d,
        pivot_perturbations=perturbations,
    )


def _rows_to_csr(row_maps: list[dict[int, float]], n: int) -> sp.csr_matrix:
    """Assemble per-row dicts (strict lower triangle) into a CSR matrix."""
    nnz = sum(len(r) for r in row_maps)
    indptr = np.zeros(n + 1, dtype=np.int64)
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=np.float64)
    pos = 0
    for i, row in enumerate(row_maps):
        for j in sorted(row):
            col_idx[pos] = j
            values[pos] = row[j]
            pos += 1
        indptr[i + 1] = pos
    return sp.csr_matrix((values, col_idx, indptr), shape=(n, n))


def _cols_to_csr_upper(
    col_rows: list[list[int]], col_vals: list[list[float]], n: int
) -> sp.csr_matrix:
    """Assemble column-wise L entries into the strict upper triangle of L^T.

    Column ``j`` of ``L`` (entries ``L_kj``, ``k > j``) is exactly row ``j``
    of ``U = L^T``, and the rows were appended in ascending order, so the
    CSR arrays can be emitted directly without sorting.
    """
    nnz = sum(len(r) for r in col_rows)
    indptr = np.zeros(n + 1, dtype=np.int64)
    col_idx = np.empty(nnz, dtype=np.int64)
    values = np.empty(nnz, dtype=np.float64)
    pos = 0
    for j in range(n):
        rows_j = col_rows[j]
        count = len(rows_j)
        col_idx[pos : pos + count] = rows_j
        values[pos : pos + count] = col_vals[j]
        pos += count
        indptr[j + 1] = pos
    return sp.csr_matrix((values, col_idx, indptr), shape=(n, n))
