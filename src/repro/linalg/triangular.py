"""Sparse triangular substitution, full and row-restricted.

Solving :math:`LDL^T x = b` splits into forward substitution on
:math:`L' = LD` (paper Eq. 4) followed by back substitution on
:math:`U = L^T` (paper Eq. 5).  Mogul's efficiency comes from *restricted*
variants: Lemma 4 shows that for a query in cluster :math:`C_Q` the forward
pass only produces non-zeros in :math:`C_Q \\cup C_N`, and Lemma 5 shows the
backward pass can evaluate any chosen cluster once the border cluster
:math:`C_N` is done.  The restricted functions below take an explicit set of
rows and never touch anything else, which is what turns an O(n) solve into a
near-O(answer) one in practice.

All functions operate on :class:`repro.linalg.LDLFactors` (strict triangles,
unit diagonal implied).

Two implementation tiers coexist deliberately:

* the ``*_rows`` functions are the readable per-row reference — they mirror
  the paper's Eq. 4/5 literally and power the lemma-level tests;
* the ``*_ranges`` / ``*_block`` functions are the production tier used by
  Algorithm 2: they restrict the system to contiguous position ranges
  (Algorithm 1 lays clusters out contiguously) and delegate the sequential
  sweep to scipy's compiled triangular solver, which removes the
  per-row Python overhead that would otherwise dominate query time.
  The test suite asserts both tiers agree to machine precision.

The production-tier functions additionally accept an ``(n, b)`` matrix of
right-hand sides and solve all ``b`` systems in one compiled sweep — the
multi-RHS form the batched query engine (:mod:`repro.core.batch`) relies
on; each column equals the corresponding single-RHS solve.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.linalg.ldl import LDLFactors
from repro.utils.validation import check_vector


def forward_substitute(factors: LDLFactors, b: np.ndarray) -> np.ndarray:
    """Solve :math:`(LD) y = b` for ``y`` over **all** rows (paper Eq. 4)."""
    b = check_vector(b, "b", factors.n)
    return forward_substitute_rows(factors, b, range(factors.n))


def forward_substitute_rows(
    factors: LDLFactors, b: np.ndarray, rows: Iterable[int]
) -> np.ndarray:
    """Solve :math:`(LD) y = b` computing only the requested ``rows``.

    Rows are processed in ascending order; every skipped row keeps
    ``y == 0``, which is exactly the structure Lemma 4 guarantees when
    ``rows`` covers :math:`C_Q \\cup C_N` (plus any seed clusters for
    out-of-sample queries).

    Since ``L`` has a unit diagonal, ``(LD)`` has diagonal ``D`` and strict
    lower part ``L_ij D_jj``, giving
    ``y_i = (b_i - sum_{j<i} L_ij D_jj y_j) / D_ii``.
    """
    n = factors.n
    y = np.zeros(n, dtype=np.float64)
    indptr = factors.lower.indptr
    indices = factors.lower.indices
    data = factors.lower.data
    diag = factors.diag
    for i in sorted(set(int(r) for r in rows)):
        start, stop = indptr[i], indptr[i + 1]
        acc = b[i]
        if stop > start:
            cols = indices[start:stop]
            acc -= np.dot(data[start:stop] * diag[cols], y[cols])
        y[i] = acc / diag[i]
    return y


def back_substitute(factors: LDLFactors, y: np.ndarray) -> np.ndarray:
    """Solve :math:`U x = y` for ``x`` over all rows (paper Eq. 5)."""
    y = check_vector(y, "y", factors.n)
    x = np.zeros(factors.n, dtype=np.float64)
    back_substitute_rows(factors, y, range(factors.n), out=x)
    return x


def back_substitute_rows(
    factors: LDLFactors,
    y: np.ndarray,
    rows: Iterable[int],
    out: np.ndarray,
) -> np.ndarray:
    """Solve :math:`U x = y` for the requested ``rows`` only, into ``out``.

    Rows are processed in *descending* order.  ``out`` must already contain
    valid values for every later row the requested rows depend on — per
    Lemma 5 that means the border cluster :math:`C_N` must be computed
    before any interior cluster.  ``U`` has a unit diagonal, so
    ``x_i = y_i - sum_{j>i} U_ij x_j``.

    Returns ``out`` for chaining.
    """
    indptr = factors.upper.indptr
    indices = factors.upper.indices
    data = factors.upper.data
    for i in sorted(set(int(r) for r in rows), reverse=True):
        start, stop = indptr[i], indptr[i + 1]
        acc = y[i]
        if stop > start:
            cols = indices[start:stop]
            acc -= np.dot(data[start:stop], out[cols])
        out[i] = acc
    return out


def ldl_solve(factors: LDLFactors, b: np.ndarray) -> np.ndarray:
    """Solve :math:`L D L^T x = b` (full forward then backward pass).

    Uses the compiled block tier; numerically identical to chaining the
    reference ``*_rows`` functions.
    """
    b = check_vector(b, "b", factors.n)
    n = factors.n
    y = forward_solve_ranges(factors, b, [(0, n)])
    x = np.zeros(n, dtype=np.float64)
    back_solve_block(factors, y, (0, n), x)
    return x


# -- production tier: contiguous-range solvers over scipy ----------------


def forward_solve_ranges(
    factors: LDLFactors, b: np.ndarray, ranges: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Solve :math:`(LD) y = b` restricted to sorted position ``ranges``.

    Every row outside the ranges keeps ``y = 0`` (the caller guarantees
    this is exact — Lemma 4's situation), so the restricted system equals
    the corresponding principal submatrix system, which is handed to
    scipy's compiled triangular solver in one call.

    Parameters
    ----------
    factors:
        The LDL^T factorization.
    b:
        Right-hand side: an ``(n,)`` vector or an ``(n, nrhs)`` matrix of
        independent right-hand sides solved in one sweep.
    ranges:
        Disjoint ``(start, stop)`` position ranges in ascending order.
    """
    n = factors.n
    b = np.asarray(b, dtype=np.float64)
    y = np.zeros(b.shape, dtype=np.float64)
    pieces = [np.arange(s, t) for s, t in ranges if t > s]
    if not pieces:
        return y
    idx = np.concatenate(pieces)
    if idx.shape[0] == n:
        sub = factors.lower
        d = factors.diag
        rhs = b
    else:
        sub = factors.lower[idx][:, idx]
        d = factors.diag[idx]
        rhs = b[idx]
    if idx.shape[0] == 1:
        y[idx] = rhs / (d if b.ndim == 1 else d[:, None])
        return y
    system = (sub @ sp.diags(d)) + sp.diags(d)
    y_sub = spla.spsolve_triangular(system.tocsr(), rhs, lower=True)
    y[idx] = y_sub
    return y


def back_solve_block(
    factors: LDLFactors,
    y: np.ndarray,
    block: tuple[int, int],
    out: np.ndarray,
) -> np.ndarray:
    """Solve :math:`U x = y` for one contiguous position ``block``.

    ``out`` must already hold valid scores for every *later* position the
    block couples to (for Mogul that is the border cluster, which sits at
    the end and is solved first — Lemma 5).  The block's rows are sliced
    once, the coupling to later columns becomes one SpMV, and the
    remaining within-block system goes to scipy's compiled solver:

    ``x[s:t] = (I + U[s:t, s:t])^{-1} (y[s:t] - U[s:t, t:] @ x[t:])``.

    ``y`` and ``out`` may be ``(n,)`` vectors or matching ``(n, nrhs)``
    matrices; all right-hand sides are solved in one sweep.

    Returns ``out`` for chaining.
    """
    start, stop = block
    if stop <= start:
        return out
    n = factors.n
    rows = factors.upper[start:stop]
    rhs = y[start:stop].copy()
    if stop < n:
        rhs -= rows[:, stop:] @ out[stop:]
    if stop - start == 1:
        out[start] = rhs[0]
        return out
    within = rows[:, start:stop].tocsr()
    out[start:stop] = spla.spsolve_triangular(
        within, rhs, lower=False, unit_diagonal=True
    )
    return out
