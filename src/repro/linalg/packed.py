"""Prepacked unit-triangular solves for repeated right-hand sides.

:func:`scipy.sparse.linalg.spsolve_triangular` spends the bulk of its time
on per-call validation, copies and format conversion — two orders of
magnitude more than the compiled substitution itself for the small
cluster-sized systems Mogul solves per query (Lemmas 4/5 restrict each
query to a handful of blocks).  :class:`PackedUnitLower` does all of that
work **once**: it packs a unit-lower-triangular block into the exact CSC
arrays SuperLU's ``gstrs`` kernel consumes and then answers each solve with
a single compiled call.

One packed block serves both substitution directions, because Mogul's back
substitution runs on :math:`U = L^T` (paper Eq. 5) and ``gstrs`` can apply
the transposed operator:

* :meth:`PackedUnitLower.solve_lower` — forward substitution
  :math:`(I + L_{strict})\\,z = b` (paper Eq. 4 after diagonal scaling).
* :meth:`PackedUnitLower.solve_upper` — back substitution
  :math:`(I + L_{strict})^T\\,z = b`.

Both accept a single ``(n,)`` right-hand side or an ``(n, b)`` matrix of
``b`` right-hand sides.  The multi-RHS form is what the batched query
engine (:mod:`repro.core.batch`) is built on: ``gstrs`` sweeps the factor
once per column inside compiled code, so a batch of queries pays the
per-call overhead once instead of ``b`` times, and each column is bitwise
identical to the corresponding single-RHS solve.

``gstrs`` is a private SciPy API, so a pure public-API fallback
(``spsolve_triangular``) is kept behind the same interface; construction
chooses automatically and tests force the fallback to assert both tiers
agree to machine precision.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

try:  # pragma: no cover - exercised implicitly by every solve
    from scipy.sparse._sputils import safely_cast_index_arrays
    from scipy.sparse.linalg._dsolve import _superlu

    HAVE_SUPERLU_GSTRS = True
except ImportError:  # pragma: no cover - depends on scipy build
    HAVE_SUPERLU_GSTRS = False


class PackedUnitLower:
    """A unit-lower-triangular block packed for repeated fast solves.

    Parameters
    ----------
    strict_lower:
        Sparse matrix holding the **strict** lower triangle of the block
        (the unit diagonal is implied, matching
        :class:`repro.linalg.LDLFactors` storage).  Anything on or above
        the diagonal raises.
    use_superlu:
        ``True`` forces the SuperLU kernel (raises if unavailable),
        ``False`` forces the public spsolve_triangular fallback, ``None``
        picks SuperLU when present.
    """

    def __init__(self, strict_lower: sp.spmatrix, use_superlu: bool | None = None):
        strict_lower = strict_lower.tocsr()
        rows, cols = strict_lower.shape
        if rows != cols:
            raise ValueError(f"block must be square, got shape {strict_lower.shape}")
        coo = strict_lower.tocoo()
        if np.any(coo.row <= coo.col) and coo.nnz:
            # Explicit zeros on/above the diagonal are tolerated; values not.
            bad = coo.data[coo.row <= coo.col]
            if np.any(bad != 0.0):
                raise ValueError("strict_lower has entries on or above the diagonal")
        self.n = rows
        if use_superlu is None:
            use_superlu = HAVE_SUPERLU_GSTRS
        elif use_superlu and not HAVE_SUPERLU_GSTRS:  # pragma: no cover
            raise RuntimeError("SuperLU gstrs kernel is not available in this scipy")
        self.uses_superlu = bool(use_superlu) and self.n > 1

        if self.n <= 1:
            # 0x0 and 1x1 unit systems are identities; no packing needed.
            self._unit_csc = None
            return

        unit = (strict_lower + sp.identity(self.n, format="csr")).tocsc()
        unit.sum_duplicates()
        unit.sort_indices()
        unit = unit.astype(np.float64)
        if self.uses_superlu:
            indices, indptr = safely_cast_index_arrays(unit, np.intc, "SuperLU")
            self._l_data = np.ascontiguousarray(unit.data)
            self._l_indices = np.ascontiguousarray(indices)
            self._l_indptr = np.ascontiguousarray(indptr)
            self._l_nnz = unit.nnz
            # gstrs wants an (empty) U factor alongside L.
            self._u_data = np.empty(0, dtype=np.float64)
            self._u_index = np.empty(0, dtype=np.intc)
            self._u_indptr = np.zeros(self.n + 1, dtype=np.intc)
            self._unit_csc = None
        else:
            self._unit_csc = unit.tocsr()
            self._unit_csc_t = self._unit_csc.T.tocsr()

    @classmethod
    def from_strict_lower_trusted(
        cls, strict_lower: sp.csr_matrix, use_superlu: bool | None = None
    ) -> "PackedUnitLower":
        """Pack a sorted strictly-lower CSR block without scipy conversions.

        Assembles the unit CSC arrays directly (diagonal entry first,
        then the block column's rows, already ascending) — the same
        arrays ``__init__`` produces via ``+ identity`` and ``tocsc``,
        so solves are bitwise identical.  Index construction packs a
        block per cluster; this path is what keeps that linear in nnz
        instead of in scipy conversions.  "Trusted" refers to skipping
        the ``tocoo`` materialisation only: strict-lowerness itself is
        still verified with one O(nnz) vectorized check, because a
        diagonal entry would silently shift the assembled columns.
        """
        n = strict_lower.shape[0]
        if use_superlu is None:
            use_superlu = HAVE_SUPERLU_GSTRS
        if (
            n <= 1
            or not use_superlu
            or not HAVE_SUPERLU_GSTRS
            or strict_lower.nnz + n > np.iinfo(np.intc).max
        ):
            # Cold paths (empty, fallback tier, missing kernel, index
            # overflow) carry no packing cost worth skipping — reuse the
            # validated route, which also raises __init__'s clear error
            # for an explicit use_superlu=True without the kernel.
            return cls(strict_lower, use_superlu=use_superlu)
        strict_lower = strict_lower.tocsr()
        entry_rows = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(strict_lower.indptr)
        )
        if np.any(strict_lower.indices >= entry_rows):
            raise ValueError("strict_lower has entries on or above the diagonal")
        self = cls.__new__(cls)
        self.n = n
        self.uses_superlu = True
        self._unit_csc = None
        transposed = strict_lower.T.tocsr()  # rows = columns of L
        transposed.sort_indices()
        nnz = transposed.nnz
        counts = np.diff(transposed.indptr)
        indptr = np.zeros(n + 1, dtype=np.intc)
        np.cumsum(counts + 1, out=indptr[1:])
        indices = np.empty(nnz + n, dtype=np.intc)
        data = np.empty(nnz + n, dtype=np.float64)
        diag_pos = indptr[:-1]
        indices[diag_pos] = np.arange(n, dtype=np.intc)
        data[diag_pos] = 1.0
        off_diag = np.ones(nnz + n, dtype=bool)
        off_diag[diag_pos] = False
        indices[off_diag] = transposed.indices
        data[off_diag] = transposed.data
        self._l_data = data
        self._l_indices = indices
        self._l_indptr = indptr
        self._l_nnz = nnz + n
        self._u_data = np.empty(0, dtype=np.float64)
        self._u_index = np.empty(0, dtype=np.intc)
        self._u_indptr = np.zeros(n + 1, dtype=np.intc)
        return self

    @property
    def nnz(self) -> int:
        """Stored non-zeros including the unit diagonal."""
        if self.n <= 1:
            return self.n
        if self.uses_superlu:
            return int(self._l_nnz)
        return self._unit_csc.nnz

    @property
    def nbytes(self) -> int:
        """Bytes of the packed factor arrays (memory-accounting surface)."""
        if self.n <= 1:
            return 0
        if self.uses_superlu:
            return int(
                self._l_data.nbytes
                + self._l_indices.nbytes
                + self._l_indptr.nbytes
                + self._u_data.nbytes
                + self._u_index.nbytes
                + self._u_indptr.nbytes
            )
        return int(
            sum(
                m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
                for m in (self._unit_csc, self._unit_csc_t)
            )
        )

    def solve_lower(self, b: np.ndarray) -> np.ndarray:
        """Solve :math:`(I + L_{strict})\\,z = b` (forward substitution).

        ``b`` may be a single ``(n,)`` right-hand side or an ``(n, b)``
        matrix; the result matches the input shape and each column equals
        the corresponding single-RHS solve bitwise.
        """
        return self._solve(b, trans="N")

    def solve_upper(self, b: np.ndarray) -> np.ndarray:
        """Solve :math:`(I + L_{strict})^T z = b` (back substitution).

        Accepts ``(n,)`` or ``(n, b)`` right-hand sides like
        :meth:`solve_lower`.
        """
        return self._solve(b, trans="T")

    def _solve(self, b: np.ndarray, trans: str) -> np.ndarray:
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2) or b.shape[0] != self.n:
            raise ValueError(
                f"b must have shape ({self.n},) or ({self.n}, nrhs), got {b.shape}"
            )
        if self.n <= 1 or (b.ndim == 2 and b.shape[1] == 0):
            return b.copy()
        if self.uses_superlu:
            x, info = _superlu.gstrs(
                trans,
                self.n,
                self._l_nnz,
                self._l_data,
                self._l_indices,
                self._l_indptr,
                self.n,
                0,
                self._u_data,
                self._u_index,
                self._u_indptr,
                b.copy(),
            )
            if info:  # pragma: no cover - unit diagonal cannot be singular
                raise np.linalg.LinAlgError("triangular solve reported singularity")
            return x
        matrix = self._unit_csc if trans == "N" else self._unit_csc_t
        return spla.spsolve_triangular(
            matrix, b, lower=(trans == "N"), unit_diagonal=True
        )
