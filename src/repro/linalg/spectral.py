"""Low-rank spectral approximation of the Manifold Ranking operator.

Fast Spectral Ranking (Iscen et al., see PAPERS.md) observes that the
ranking operator :math:`(I - \\alpha S)^{-1}` is a *filter* on the
spectrum of the normalized adjacency :math:`S = C^{-1/2} A C^{-1/2}`:
if :math:`S = U \\Lambda U^T` then

.. math:: (I - \\alpha S)^{-1} = U\\, h(\\Lambda)\\, U^T,
          \\qquad h(\\lambda) = \\frac{1}{1 - \\alpha \\lambda},

and truncating to the top-r eigenpairs (``h`` is monotone increasing on
S's spectrum, so the largest eigenvalues carry almost all of the
operator's mass at :math:`\\alpha \\to 1`) collapses a query from a
sparse solve to two dense GEMVs of shape ``(n, r)``.  This module holds
the numerics only — the decomposition, the filter and the batched
scorer; :mod:`repro.core.spectral` wraps them in the engine interface.

Everything here is deterministic: the Lanczos iteration is started from
a fixed vector, and scores are invariant to per-eigenvector sign flips
(``U h U^T`` is a two-sided product), so repeated builds rank
identically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

#: Below this many nodes the dense eigendecomposition is both faster and
#: free of Lanczos convergence corner cases (eigsh also requires k < n).
_DENSE_CUTOFF = 128


@dataclass(frozen=True)
class SpectralBasis:
    """The rank-r eigenpairs of the normalized adjacency ``S``.

    Attributes
    ----------
    vectors:
        ``(n, r)`` orthonormal eigenvectors, one column per eigenpair.
    values:
        ``(r,)`` matching eigenvalues, sorted descending (``S`` is
        symmetric with spectral radius at most 1, so all lie in
        ``[-1, 1]``).
    """

    vectors: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.vectors.ndim != 2:
            raise ValueError(
                f"vectors must be a (n, r) matrix, got shape {self.vectors.shape}"
            )
        if self.values.shape != (self.vectors.shape[1],):
            raise ValueError(
                f"values must have shape ({self.vectors.shape[1]},), "
                f"got {self.values.shape}"
            )

    @property
    def n_nodes(self) -> int:
        """Number of database nodes the basis spans."""
        return int(self.vectors.shape[0])

    @property
    def rank(self) -> int:
        """Number of retained eigenpairs."""
        return int(self.vectors.shape[1])


def spectral_decompose(s: sp.spmatrix, rank: int) -> SpectralBasis:
    """Top-``rank`` eigenpairs of the symmetric matrix ``S`` (largest first).

    Large problems go through ARPACK's Lanczos iteration
    (``scipy.sparse.linalg.eigsh``) on the CSR matrix directly; small
    ones — and ranks close to ``n``, where Lanczos degenerates — through
    the dense ``np.linalg.eigh``.  Both paths start from deterministic
    state, and both clip ``rank`` to ``n`` (asking for more eigenpairs
    than dimensions is a caller convenience, not an error).
    """
    if rank < 1:
        raise ValueError(f"rank must be >= 1, got {rank}")
    s = s.tocsr()
    n = s.shape[0]
    if s.shape != (n, n):
        raise ValueError(f"S must be square, got shape {s.shape}")
    rank = min(int(rank), n)
    if n < _DENSE_CUTOFF or rank >= n - 1:
        values, vectors = np.linalg.eigh(s.toarray())
        order = np.argsort(values)[::-1][:rank]
        return SpectralBasis(
            vectors=np.ascontiguousarray(vectors[:, order]),
            values=np.ascontiguousarray(values[order]),
        )
    # Fixed start vector: repeated builds of the same graph produce the
    # same iteration and thus bitwise-identical bases.
    v0 = np.full(n, 1.0 / np.sqrt(n), dtype=np.float64)
    values, vectors = spla.eigsh(s, k=rank, which="LA", v0=v0)
    order = np.argsort(values)[::-1]
    return SpectralBasis(
        vectors=np.ascontiguousarray(vectors[:, order]),
        values=np.ascontiguousarray(values[order]),
    )


def spectral_filter(values: np.ndarray, alpha: float) -> np.ndarray:
    """The ranking transfer function :math:`h(\\lambda) = 1/(1-\\alpha\\lambda)`.

    Finite for every eigenvalue of ``S`` when ``0 < alpha < 1`` (the
    spectrum lies in ``[-1, 1]``, so ``1 - alpha * lambda >= 1 - alpha``).
    Values are clipped into ``[-1, 1]`` first: Lanczos round-off can
    report ``1 + eps``, which must not flip the filter's sign.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    clipped = np.clip(np.asarray(values, dtype=np.float64), -1.0, 1.0)
    return 1.0 / (1.0 - alpha * clipped)


def project_seeds(
    basis: SpectralBasis, seed_rows: np.ndarray, seed_weights: np.ndarray
) -> np.ndarray:
    """The spectral projection :math:`U^T q` of a sparse seed vector.

    ``q`` has ``seed_weights`` on ``seed_rows`` and zeros elsewhere, so
    the projection reduces to a weighted sum of ``r``-dimensional basis
    rows — no dense ``q`` is ever formed.  For a one-hot in-database
    query this is just the query's basis row.
    """
    rows = np.asarray(seed_rows, dtype=np.int64)
    weights = np.asarray(seed_weights, dtype=np.float64)
    if rows.ndim != 1 or weights.shape != rows.shape:
        raise ValueError(
            f"seed rows {rows.shape} and weights {weights.shape} must be "
            "matching 1-D arrays"
        )
    return weights @ basis.vectors[rows]


def spectral_scores(
    basis: SpectralBasis, alpha: float, projections: np.ndarray
) -> np.ndarray:
    """Approximate ranking scores from precomputed projections ``U^T q``.

    ``projections`` is ``(r,)`` for one query or ``(r, b)`` for a batch;
    the result matches (``(n,)`` or ``(n, b)``).  Scores are scaled by
    ``1 - alpha`` to match the library's convention (every engine solves
    ``W x = (1 - alpha) q``), so spectral and exact scores are directly
    comparable:

    .. math:: x \\approx (1-\\alpha)\\, U\\, h(\\Lambda)\\, U^T q.

    One filtered ``(n, r) @ (r, b)`` GEMM — the whole query-time cost of
    the approximate tier.
    """
    projections = np.asarray(projections, dtype=np.float64)
    if projections.ndim not in (1, 2):
        raise ValueError(
            f"projections must be (r,) or (r, b), got shape {projections.shape}"
        )
    if projections.shape[0] != basis.rank:
        raise ValueError(
            f"projections have {projections.shape[0]} rows but the basis has "
            f"rank {basis.rank}"
        )
    h = spectral_filter(basis.values, alpha)
    if projections.ndim == 1:
        filtered = h * projections
    else:
        filtered = h[:, None] * projections
    return (1.0 - alpha) * (basis.vectors @ filtered)
