"""Evaluation substrate: metrics, sparsity diagnostics, experiment harness.

* :mod:`repro.eval.metrics` — P@k against the exact ranking and retrieval
  precision against ground-truth labels, the paper's two accuracy measures
  (§5.2.1), plus rank-correlation diagnostics.
* :mod:`repro.eval.sparsity` — text rasters and block statistics of factor
  sparsity patterns (Figure 6).
* :mod:`repro.eval.harness` — timing loops and aligned result tables used
  by every ``repro.experiments`` module and benchmark.
* :mod:`repro.eval.tiered` — recall@k-versus-latency sweeps of the tiered
  engine's accuracy dial against the exact engine.
"""

from repro.eval.harness import (
    ExperimentTable,
    iter_batches,
    sample_queries,
    time_queries,
    time_query_batches,
)
from repro.eval.metrics import (
    average_precision_at_k,
    ndcg_at_k,
    p_at_k,
    rank_correlation,
    reciprocal_rank,
    retrieval_precision,
)
from repro.eval.sparsity import block_structure_stats, sparsity_raster
from repro.eval.tiered import DialPoint, curve_table, recall_latency_curve

__all__ = [
    "DialPoint",
    "ExperimentTable",
    "average_precision_at_k",
    "block_structure_stats",
    "curve_table",
    "iter_batches",
    "ndcg_at_k",
    "p_at_k",
    "rank_correlation",
    "reciprocal_rank",
    "retrieval_precision",
    "recall_latency_curve",
    "sample_queries",
    "sparsity_raster",
    "time_queries",
    "time_query_batches",
]
