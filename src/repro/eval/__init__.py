"""Evaluation substrate: metrics, sparsity diagnostics, experiment harness.

* :mod:`repro.eval.metrics` — P@k against the exact ranking and retrieval
  precision against ground-truth labels, the paper's two accuracy measures
  (§5.2.1), plus rank-correlation diagnostics.
* :mod:`repro.eval.sparsity` — text rasters and block statistics of factor
  sparsity patterns (Figure 6).
* :mod:`repro.eval.harness` — timing loops and aligned result tables used
  by every ``repro.experiments`` module and benchmark.
"""

from repro.eval.harness import (
    ExperimentTable,
    iter_batches,
    sample_queries,
    time_queries,
    time_query_batches,
)
from repro.eval.metrics import (
    average_precision_at_k,
    ndcg_at_k,
    p_at_k,
    rank_correlation,
    reciprocal_rank,
    retrieval_precision,
)
from repro.eval.sparsity import block_structure_stats, sparsity_raster

__all__ = [
    "ExperimentTable",
    "average_precision_at_k",
    "block_structure_stats",
    "iter_batches",
    "ndcg_at_k",
    "p_at_k",
    "rank_correlation",
    "reciprocal_rank",
    "retrieval_precision",
    "sample_queries",
    "sparsity_raster",
    "time_queries",
    "time_query_batches",
]
