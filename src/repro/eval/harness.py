"""Shared experiment plumbing: query sampling, timing loops, result tables.

Every module in :mod:`repro.experiments` and every benchmark builds on
these three primitives so that "search time" always means the same
measured region and tables print in one consistent format (aligned text
that doubles as the EXPERIMENTS.md record).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import SeedLike, as_rng
from repro.utils.timer import Timer


def sample_queries(n_nodes: int, count: int, seed: SeedLike = 0) -> np.ndarray:
    """Draw ``count`` distinct query node ids (deterministic under seed)."""
    if count > n_nodes:
        raise ValueError(f"cannot sample {count} queries from {n_nodes} nodes")
    rng = as_rng(seed)
    return rng.choice(n_nodes, size=count, replace=False)


def time_queries(
    run_query: Callable[[int], object],
    queries: Sequence[int],
    warmup: int = 1,
) -> float:
    """Mean wall-clock seconds per query over ``queries``.

    ``warmup`` initial calls are executed but not timed (first-call effects:
    lazy caches, branch-predictor noise).
    """
    queries = list(queries)
    if not queries:
        raise ValueError("queries must be non-empty")
    for query in queries[: max(0, warmup)]:
        run_query(query)
    timer = Timer()
    for query in queries:
        with timer:
            run_query(query)
    return timer.mean


def iter_batches(queries: Sequence[int], batch_size: int):
    """Yield ``queries`` as consecutive lists of at most ``batch_size``."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    queries = list(queries)
    for start in range(0, len(queries), batch_size):
        yield queries[start : start + batch_size]


def time_engine_queries(
    engine,
    queries: Sequence[int],
    k: int,
    batch_size: int = 1,
    warmup: int = 1,
) -> float:
    """Mean seconds/query for any :class:`repro.core.engine.Engine`.

    The engine-level convenience over :func:`time_queries` /
    :func:`time_query_batches`: ``batch_size == 1`` times sequential
    ``top_k`` calls, larger values time ``top_k_batch`` slices — the two
    regimes every engine (single-index or sharded) must serve with
    identical answers, measured the same way so QPS numbers stay
    comparable across engines and batch sizes.
    """
    if batch_size <= 1:
        return time_queries(
            lambda query: engine.top_k(int(query), k), queries, warmup=warmup
        )
    return time_query_batches(
        lambda batch: engine.top_k_batch(batch, k),
        queries,
        batch_size,
        warmup=warmup,
    )


def time_query_batches(
    run_batch: Callable[[list[int]], object],
    queries: Sequence[int],
    batch_size: int,
    warmup: int = 1,
) -> float:
    """Mean wall-clock seconds *per query* when answering in batches.

    The batched counterpart of :func:`time_queries`: ``run_batch``
    receives consecutive query slices of at most ``batch_size`` and the
    measured region covers every batch call; the mean divides by the
    query count so numbers stay comparable across batch sizes
    (``1 / result`` is the queries-per-second throughput).  ``warmup``
    initial *batches* are executed but not timed.
    """
    queries = list(queries)
    if not queries:
        raise ValueError("queries must be non-empty")
    batches = list(iter_batches(queries, batch_size))
    for batch in batches[: max(0, warmup)]:
        run_batch(batch)
    timer = Timer()
    for batch in batches:
        with timer:
            run_batch(batch)
    return timer.elapsed / len(queries)


@dataclass
class ExperimentTable:
    """A printable experiment result table.

    Rows are lists of cells (strings or numbers); numbers are rendered
    with engineering-friendly precision.  ``to_text`` aligns columns for
    the terminal and EXPERIMENTS.md; ``to_markdown`` emits a pipe table.
    """

    title: str
    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_note(self, note: str) -> None:
        """Attach a free-text note printed under the table."""
        self.notes.append(note)

    @staticmethod
    def _format_cell(cell: object) -> str:
        if isinstance(cell, float):
            if cell == 0.0:
                return "0"
            magnitude = abs(cell)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{cell:.3e}"
            return f"{cell:.4f}".rstrip("0").rstrip(".")
        return str(cell)

    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        formatted = [[self._format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in formatted), 1)
            if formatted
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        formatted = [[self._format_cell(c) for c in row] for row in self.rows]
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in formatted:
            lines.append("| " + " | ".join(row) + " |")
        for note in self.notes:
            lines.append(f"\n_{note}_")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
