"""Sparsity-pattern diagnostics for factor matrices (Figure 6).

The paper plots the non-zero pattern of the lower-triangular factor ``L``
under Mogul's permutation versus a random permutation: Mogul's is singly
bordered block diagonal (Lemma 3), random is scattered.  In a text
environment we render the same comparison as a character raster (one cell
aggregates a sub-block of the matrix) plus quantitative block statistics.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.core.permutation import Permutation


def sparsity_raster(matrix: sp.spmatrix, size: int = 40, mark: str = "#") -> list[str]:
    """Render a matrix non-zero pattern as ``size`` lines of text.

    Cell ``(r, c)`` is ``mark`` when any non-zero of the matrix falls in
    the corresponding sub-block, ``.`` otherwise.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    matrix = matrix.tocoo()
    n_rows, n_cols = matrix.shape
    grid = np.zeros((size, size), dtype=bool)
    if matrix.nnz:
        r = (matrix.row * size) // max(n_rows, 1)
        c = (matrix.col * size) // max(n_cols, 1)
        grid[r, c] = True
    return ["".join(mark if cell else "." for cell in row) for row in grid]


def block_structure_stats(
    lower: sp.spmatrix, permutation: Permutation
) -> dict[str, float]:
    """Quantify how bordered-block-diagonal a factor's pattern is.

    Returns a dict with:

    * ``nnz`` — total non-zeros in the strict lower factor;
    * ``within_block`` — fraction inside interior-cluster diagonal blocks;
    * ``border`` — fraction in the border cluster's rows;
    * ``off_block`` — fraction violating Lemma 3 (between two distinct
      interior clusters) — exactly 0.0 under Mogul's permutation;
    * ``mean_band`` — mean ``|i - j| / n`` over factor entries.  For the
      *incomplete* factorization the cluster-membership fractions are
      permutation invariant (the factor inherits W's pattern), so the
      visually obvious difference in the paper's Figure 6 — compact
      diagonal blocks vs scatter — is captured by this band statistic:
      ~cluster_size/(3n) under Mogul, ~1/3 under a random permutation.
    """
    coo = lower.tocoo()
    nnz = coo.nnz
    if nnz == 0:
        return {
            "nnz": 0.0,
            "within_block": 0.0,
            "border": 0.0,
            "off_block": 0.0,
            "mean_band": 0.0,
        }
    cluster_of = permutation.cluster_of_position
    border_id = permutation.border_cluster
    row_cluster = cluster_of[coo.row]
    col_cluster = cluster_of[coo.col]
    in_border = (row_cluster == border_id) | (col_cluster == border_id)
    same_cluster = (row_cluster == col_cluster) & ~in_border
    off_block = ~in_border & ~same_cluster
    n = lower.shape[0]
    return {
        "nnz": float(nnz),
        "within_block": float(np.mean(same_cluster)),
        "border": float(np.mean(in_border)),
        "off_block": float(np.mean(off_block)),
        "mean_band": float(np.mean(np.abs(coo.row - coo.col))) / max(n, 1),
    }
