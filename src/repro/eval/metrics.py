"""The paper's accuracy metrics (§5.2.1) and rank diagnostics.

* :func:`p_at_k` — "the fraction of answer nodes among the top-k results
  that match those of the inverse matrix approach": set overlap between an
  approximate answer list and the exact one.
* :func:`retrieval_precision` — "the ratio of answer nodes that correspond
  to the same objects as the query nodes": semantic quality against
  ground-truth labels.
* :func:`rank_correlation` — Spearman correlation between two full score
  vectors; not in the paper but invaluable for testing approximation
  quality beyond the top-k cutoff.
* :func:`ndcg_at_k`, :func:`reciprocal_rank` — order-aware retrieval
  quality (binary relevance against ground-truth labels), used by the
  extended examples and ablation benches.
"""

from __future__ import annotations

import numpy as np


def p_at_k(retrieved: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of ``retrieved`` ids that appear in the ``reference`` top-k.

    Both arguments are id arrays (order ignored — the paper's P@k is set
    overlap).  Lengths may differ; the denominator is ``len(retrieved)``.
    """
    retrieved = np.asarray(retrieved).ravel()
    reference = np.asarray(reference).ravel()
    if retrieved.size == 0:
        return 0.0
    if np.unique(retrieved).size != retrieved.size:
        raise ValueError("retrieved ids must be unique")
    hits = np.isin(retrieved, reference).sum()
    return float(hits) / float(retrieved.size)


def retrieval_precision(
    retrieved: np.ndarray, labels: np.ndarray, query_label: int
) -> float:
    """Fraction of retrieved nodes sharing the query's semantic label."""
    retrieved = np.asarray(retrieved).ravel()
    if retrieved.size == 0:
        return 0.0
    labels = np.asarray(labels)
    return float(np.mean(labels[retrieved] == query_label))


def average_precision_at_k(
    retrieved: np.ndarray, labels: np.ndarray, query_label: int
) -> float:
    """Order-aware precision: mean of precision@i over relevant positions.

    A stricter companion to :func:`retrieval_precision` used by the
    extended examples (0.0 when no retrieved item is relevant).
    """
    retrieved = np.asarray(retrieved).ravel()
    if retrieved.size == 0:
        return 0.0
    labels = np.asarray(labels)
    relevant = labels[retrieved] == query_label
    if not np.any(relevant):
        return 0.0
    cumulative = np.cumsum(relevant)
    positions = np.arange(1, retrieved.size + 1)
    return float(np.mean((cumulative / positions)[relevant]))


def ndcg_at_k(
    retrieved: np.ndarray, labels: np.ndarray, query_label: int, k: int | None = None
) -> float:
    """Normalised discounted cumulative gain with binary relevance.

    Relevance of a retrieved item is 1 when it shares the query's label.
    The ideal ordering puts every relevant item first; the score is
    DCG/IDCG in [0, 1].  Returns 0.0 when nothing relevant exists in the
    database (no meaningful ideal) or the retrieved list is empty.
    """
    retrieved = np.asarray(retrieved).ravel()
    labels = np.asarray(labels)
    if k is not None:
        retrieved = retrieved[:k]
    if retrieved.size == 0:
        return 0.0
    relevant = (labels[retrieved] == query_label).astype(np.float64)
    discounts = 1.0 / np.log2(np.arange(2, retrieved.size + 2))
    dcg = float(np.dot(relevant, discounts))
    n_relevant_total = int(np.sum(labels == query_label))
    ideal_hits = min(retrieved.size, n_relevant_total)
    if ideal_hits == 0:
        return 0.0
    idcg = float(np.sum(discounts[:ideal_hits]))
    return dcg / idcg


def reciprocal_rank(
    retrieved: np.ndarray, labels: np.ndarray, query_label: int
) -> float:
    """1 / rank of the first relevant answer (0.0 when none is relevant).

    Averaged over queries this is MRR, the standard "how soon does the
    user see something right" statistic.
    """
    retrieved = np.asarray(retrieved).ravel()
    labels = np.asarray(labels)
    relevant = np.flatnonzero(labels[retrieved] == query_label)
    if relevant.size == 0:
        return 0.0
    return 1.0 / (float(relevant[0]) + 1.0)


def rank_correlation(scores_a: np.ndarray, scores_b: np.ndarray) -> float:
    """Spearman rank correlation between two score vectors.

    Implemented directly (rank transform + Pearson) to keep the dependency
    surface small; ties receive average ranks.
    """
    a = _average_ranks(np.asarray(scores_a, dtype=np.float64))
    b = _average_ranks(np.asarray(scores_b, dtype=np.float64))
    if a.shape != b.shape:
        raise ValueError(f"score vectors differ in shape: {a.shape} vs {b.shape}")
    a_centered = a - a.mean()
    b_centered = b - b.mean()
    denom = np.linalg.norm(a_centered) * np.linalg.norm(b_centered)
    if denom == 0:
        return 0.0
    return float(np.dot(a_centered, b_centered) / denom)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """Rank transform with average ranks for ties."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.shape[0], dtype=np.float64)
    ranks[order] = np.arange(values.shape[0], dtype=np.float64)
    # Average the ranks inside each tie group.
    sorted_vals = values[order]
    boundaries = np.flatnonzero(np.diff(sorted_vals) != 0) + 1
    groups = np.split(order, boundaries)
    for group in groups:
        if group.size > 1:
            ranks[group] = ranks[group].mean()
    return ranks
