"""Accuracy-dial evaluation: recall@k versus latency across dial settings.

The tiered engine trades recall for speed through one knob — the
candidate budget ``m`` the spectral tier nominates for exact re-ranking.
This module sweeps that knob and measures both sides of the trade on the
same query sample:

* **recall@k** — set overlap (:func:`repro.eval.metrics.p_at_k`) of the
  dialed answers against the exact engine's answers.  This is end-to-end
  answer recall, not nomination recall: the re-rank is exact over the
  nominated candidates, so any loss is the spectral tier failing to
  nominate a true top-k member.
* **seconds/query** — the same measured region as every other benchmark
  (:func:`repro.eval.harness.time_queries`), so q/s numbers are
  comparable with the exact engine's.

:func:`recall_latency_curve` produces one :class:`DialPoint` per dial
setting (presets and/or explicit budgets), each carrying its speedup
against the exact baseline measured in the same run;
:func:`curve_table` renders the sweep as an
:class:`repro.eval.harness.ExperimentTable`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.eval.harness import ExperimentTable, time_queries
from repro.eval.metrics import p_at_k


@dataclass(frozen=True)
class DialPoint:
    """One dial setting's measured accuracy/latency trade-off.

    Attributes
    ----------
    label:
        The canonical accuracy level (``"fast"``, ``"balanced"``,
        ``"exact"``, or ``"m=<budget>"``).
    recall_at_k:
        Mean recall@k of the dialed answers against the exact answers.
    min_recall_at_k:
        Worst single-query recall@k in the sample (the tail matters:
        a mean can hide individual queries answered badly).
    seconds_per_query:
        Mean wall-clock seconds per single query at this setting.
    speedup:
        Exact seconds/query divided by this setting's seconds/query
        (1.0 for the exact level by construction, up to timing noise).
    mean_candidates:
        Mean nominated candidate-set size (0 for ``exact``: the
        spectral tier is bypassed).
    """

    label: str
    recall_at_k: float
    min_recall_at_k: float
    seconds_per_query: float
    speedup: float
    mean_candidates: float

    def to_dict(self) -> dict:
        """JSON-serialisable form (for BENCH reports)."""
        return {
            "label": self.label,
            "recall_at_k": self.recall_at_k,
            "min_recall_at_k": self.min_recall_at_k,
            "seconds_per_query": self.seconds_per_query,
            "qps": 1.0 / self.seconds_per_query
            if self.seconds_per_query > 0
            else float("inf"),
            "speedup": self.speedup,
            "mean_candidates": self.mean_candidates,
        }


def _dial_kwargs(level: "str | int") -> dict:
    """Engine kwargs for one sweep entry (a preset name or an ``m``)."""
    if isinstance(level, str):
        return {"accuracy": level}
    return {"m": int(level)}


def recall_latency_curve(
    tiered,
    queries: Sequence[int],
    k: int,
    levels: Sequence["str | int"] = ("fast", "balanced", "exact"),
    warmup: int = 1,
) -> list[DialPoint]:
    """Measure recall@k and seconds/query at each dial setting.

    Parameters
    ----------
    tiered:
        A :class:`repro.core.TieredEngine`.
    queries:
        In-database query node ids (e.g. from
        :func:`repro.eval.harness.sample_queries`).
    k:
        Answer-list length; recall is measured at this k.
    levels:
        Dial settings to sweep — preset names (strings) and/or explicit
        candidate budgets (integers, labelled ``m=<value>``).
    warmup:
        Untimed initial calls per setting (first-call effects).

    The exact baseline is measured once through the *base* engine (the
    tier machinery fully out of the way) and shared by every point's
    ``speedup``; reference answers for recall come from the same run.
    """
    queries = [int(query) for query in queries]
    if not queries:
        raise ValueError("queries must be non-empty")
    reference = {query: tiered.base.top_k(query, k).indices for query in queries}
    exact_seconds = time_queries(
        lambda query: tiered.base.top_k(query, k), queries, warmup=warmup
    )
    points: list[DialPoint] = []
    for level in levels:
        kwargs = _dial_kwargs(level)
        label = tiered.resolve_accuracy(**kwargs)[0]
        recalls = []
        candidates = 0.0
        for query in queries:
            answer = tiered.top_k(query, k, **kwargs)
            recalls.append(p_at_k(answer.indices, reference[query]))
            candidates += tiered.last_tier_breakdown["candidates"]
        seconds = time_queries(
            lambda query: tiered.top_k(query, k, **kwargs), queries, warmup=warmup
        )
        points.append(
            DialPoint(
                label=label,
                recall_at_k=float(np.mean(recalls)),
                min_recall_at_k=float(np.min(recalls)),
                seconds_per_query=seconds,
                speedup=exact_seconds / seconds if seconds > 0 else float("inf"),
                mean_candidates=candidates / len(queries),
            )
        )
    return points


def curve_table(
    points: Sequence[DialPoint], k: int, title: str = "Accuracy dial sweep"
) -> ExperimentTable:
    """Render a dial sweep as an aligned experiment table."""
    table = ExperimentTable(
        title=title,
        columns=[
            "level",
            f"recall@{k}",
            f"min recall@{k}",
            "ms/query",
            "qps",
            "speedup",
            "mean m",
        ],
    )
    for point in points:
        table.add_row(
            point.label,
            point.recall_at_k,
            point.min_recall_at_k,
            1e3 * point.seconds_per_query,
            1.0 / point.seconds_per_query if point.seconds_per_query > 0 else 0.0,
            point.speedup,
            point.mean_candidates,
        )
    table.add_note(
        "recall measured against the exact engine's answers on the same "
        "queries; speedup is exact seconds/query over dialed seconds/query"
    )
    return table
