"""Command-line interface: build, inspect and query Mogul indexes.

The CLI wraps the library's primary workflow so the system can be driven
without writing Python::

    python -m repro datasets
    python -m repro build --dataset coil --out coil.idx.npz
    python -m repro build --dataset coil --shards 4 --jobs 4 --out coil.shards
    python -m repro build --dataset coil --spectral-rank 128 --out coil.idx.npz
    python -m repro info coil.idx.npz
    python -m repro info coil.shards
    python -m repro search coil.idx.npz --dataset coil --query 42 -k 10
    python -m repro search coil.idx.npz --dataset coil --query 42 --accuracy fast
    python -m repro search coil.shards --features db.npy --query 42 -k 10
    python -m repro search coil.idx.npz --dataset coil --batch \
        --query 1 --query 2 --query 3 -k 10
    python -m repro serve coil.shards --dataset coil --port 8080
    python -m repro serve coil.idx.npz --dataset coil --mutable
    python -m repro loadtest --port 8080 --concurrency 32 --requests 512
    python -m repro slowlog --port 8080 --limit 5

``build --spectral-rank R`` additionally writes a rank-R spectral tier
next to the exact artifact (the ``.spectral.npz`` sidecar).  When the
sidecar exists, ``serve`` composes the tiered engine automatically (the
accuracy dial appears on ``/search``), and ``search --accuracy``/
``--m`` query through it from the command line; without the dial flags,
``search`` stays on the exact engine.

Feature sources: either a named synthetic dataset (``--dataset`` +
``--scale``/``--seed``, regenerated deterministically) or a dense ``.npy``
feature matrix (``--features``).  Index artifacts are interchangeable
everywhere a path is accepted: a legacy single ``.npz`` file or a sharded
directory (built with ``--shards``) — ``search``/``serve``/``info`` pick
the right engine.  ``search --json`` emits the same machine-readable
documents the HTTP server serves.  Experiment regeneration lives in its
own entry point, ``python -m repro.experiments <figure>``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence

import numpy as np

from repro.core.engine import engine_from_index
from repro.core.index import MogulIndex
from repro.core.serialize import load_any_index
from repro.core.sharded import ShardedMogulIndex
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.graph.build import build_knn_graph
from repro.linalg.ldl import BACKENDS, DEFAULT_BACKEND


def _nonnegative_float(text: str) -> float:
    """argparse type for flags that must be a float >= 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {value}"
        )
    return value


def _positive_int(text: str) -> int:
    """argparse type for flags that must be a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer >= 1, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type for flags that must be a float > 0."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {value}"
        )
    return value


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ValueError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Mogul: scalable top-k Manifold Ranking "
        "(reproduction of Fujiwara et al., VLDB 2014).",
    )
    sub = parser.add_subparsers(required=True, metavar="command")

    datasets = sub.add_parser(
        "datasets", help="list the built-in synthetic dataset substitutes"
    )
    datasets.add_argument(
        "--scale", type=float, default=1.0, help="size multiplier (default 1.0)"
    )
    datasets.add_argument("--seed", type=int, default=0)
    datasets.set_defaults(handler=_cmd_datasets)

    build = sub.add_parser("build", help="build a Mogul index and save it")
    _add_feature_source(build)
    build.add_argument("--out", required=True, help="output .npz path")
    build.add_argument("--k", type=int, default=5, help="k-NN neighbours (default 5)")
    build.add_argument(
        "--alpha", type=float, default=0.99, help="damping parameter (default 0.99)"
    )
    build.add_argument(
        "--exact",
        action="store_true",
        help="use Modified Cholesky (MogulE): exact scores, denser factor",
    )
    build.add_argument(
        "--fill-level",
        type=int,
        default=0,
        help="ILU(p)-style fill budget for the incomplete factorization "
        "(0 = the paper's ICF; higher = more accuracy, more memory)",
    )
    build.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        help="worker threads for the parallel precompute stages (k-NN "
        "search, per-cluster factorization); any value builds an "
        "identical index (default 1)",
    )
    build.add_argument(
        "--factor-backend",
        choices=BACKENDS,
        default=DEFAULT_BACKEND,
        help="LDL^T implementation: 'csr' (fast, default) or 'reference' "
        "(the original dict-of-rows kernel, kept for equivalence runs)",
    )
    build.add_argument(
        "--shards",
        type=_positive_int,
        default=None,
        metavar="S",
        help="build a sharded index with S shards (written as a directory: "
        "manifest.json + per-shard .npz); answers are identical to the "
        "unsharded index for any S, and --jobs > 1 builds the shards in "
        "parallel worker processes.  Omit for the legacy single .npz",
    )
    build.add_argument(
        "--spectral-rank",
        type=_positive_int,
        default=None,
        metavar="R",
        help="also build a rank-R spectral nomination tier and save it as "
        "a sidecar next to the index; serve composes the tiered engine "
        "(accuracy dial) automatically when the sidecar is present",
    )
    build.set_defaults(handler=_cmd_build)

    info = sub.add_parser("info", help="print statistics of a saved index")
    info.add_argument("index", help="index .npz path")
    info.add_argument(
        "--verbose",
        action="store_true",
        help="full health report with warnings (cluster sizes, bound "
        "saturation, pivot guards)",
    )
    info.set_defaults(handler=_cmd_info)

    search = sub.add_parser("search", help="query a saved index")
    search.add_argument("index", help="index .npz path")
    _add_feature_source(search)
    search.add_argument(
        "--query",
        type=int,
        action="append",
        required=True,
        help="database node id; repeat for a multi-seed query",
    )
    search.add_argument("-k", type=int, default=10, help="answers (default 10)")
    search.add_argument("--knn", type=int, default=5, help="graph k (default 5)")
    search.add_argument(
        "--batch",
        action="store_true",
        help="treat repeated --query as independent queries answered in one "
        "batched engine pass (prints per-query answers plus pruning stats)",
    )
    search.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON document (the same encoding "
        "the HTTP server's /search responses use)",
    )
    dial = search.add_mutually_exclusive_group()
    dial.add_argument(
        "--accuracy",
        choices=("fast", "balanced", "exact"),
        default=None,
        help="answer through the tiered engine at this accuracy level "
        "(requires the index's spectral sidecar, built with "
        "build --spectral-rank)",
    )
    dial.add_argument(
        "--m",
        type=_positive_int,
        default=None,
        metavar="M",
        help="answer through the tiered engine with an explicit candidate "
        "budget of M nominations (requires the spectral sidecar)",
    )
    search.add_argument(
        "--query-jobs",
        type=_positive_int,
        default=1,
        metavar="J",
        help="threads for a sharded index's per-shard scans (default 1; "
        "answers are identical at any setting; no-op on flat/spectral "
        "indexes)",
    )
    _add_memory_budget_flags(search)
    search.set_defaults(handler=_cmd_search)

    serve = sub.add_parser(
        "serve", help="serve a saved index over HTTP with micro-batching"
    )
    serve.add_argument("index", help="index .npz path")
    _add_feature_source(serve)
    serve.add_argument("--knn", type=int, default=5, help="graph k (default 5)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="most queries coalesced into one engine dispatch (default 32)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long the first request of a batch waits for company "
        "(default 2.0; 0 = dispatch immediately, still coalescing "
        "whatever is already queued)",
    )
    serve.add_argument(
        "--cache-capacity",
        type=int,
        default=1024,
        help="LRU result-cache entries (default 1024; 0 disables)",
    )
    serve.add_argument(
        "--query-workers",
        type=_positive_int,
        default=1,
        metavar="W",
        help="engine worker threads solving dispatched batches "
        "(default 1 = serialize every dispatch; more workers overlap "
        "solves on multi-core hosts; answers are identical at any "
        "setting)",
    )
    serve.add_argument(
        "--query-jobs",
        type=_positive_int,
        default=1,
        metavar="J",
        help="threads for a sharded index's per-shard scans inside one "
        "solve (default 1; no-op on flat/spectral indexes; composes "
        "with --query-workers — total engine threads ~ W*J)",
    )
    serve.add_argument(
        "--mutable",
        action="store_true",
        help="accept writes: POST /insert, /delete and /rebuild route "
        "through an epoch-versioned LiveEngine that rebuilds in the "
        "background and atomically swaps the fresh index in; mutable "
        "state (pending buffer + tombstones + epoch) persists next to "
        "the index artifact across restarts",
    )
    serve.add_argument(
        "--auto-rebuild-fraction",
        type=_nonnegative_float,
        default=0.2,
        metavar="F",
        help="trigger a background rebuild when the pending buffer "
        "outgrows this fraction of the indexed database (default 0.2; "
        "0 disables automatic rebuilds — only POST /rebuild rebuilds)",
    )
    serve.add_argument(
        "--no-tracing",
        action="store_true",
        help="disable per-request span tracing (X-Repro-Trace-Id, "
        "?debug=trace, the slow-query flight recorder and the "
        "per-stage histograms)",
    )
    serve.add_argument(
        "--slowlog-capacity",
        type=int,
        default=32,
        help="traces retained by the slow-query flight recorder "
        "(default 32; 0 disables it)",
    )
    serve.add_argument(
        "--slow-threshold-ms",
        type=_nonnegative_float,
        default=None,
        metavar="MS",
        help="record the most recent requests at least this slow instead "
        "of the all-time slowest (default: slowest-N policy)",
    )
    serve.add_argument(
        "--request-timeout-ms",
        type=_nonnegative_float,
        default=30_000.0,
        metavar="MS",
        help="default per-request deadline for search endpoints "
        "(default 30000; 0 disables; requests override with "
        "?deadline_ms= or the X-Repro-Deadline-Ms header)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        metavar="N",
        help="admission-control threshold: past this many queued "
        "requests, new ones are degraded or shed per --overload-policy "
        "(default 1024; 0 disables admission control — unbounded queues)",
    )
    serve.add_argument(
        "--overload-policy",
        choices=("shed", "degrade", "degrade-then-shed"),
        default="degrade-then-shed",
        help="what to do past the queue threshold: shed (429 + "
        "Retry-After), degrade (downgrade dialable requests to the fast "
        "tier), or degrade-then-shed (degrade what can be, shed the "
        "rest; the default)",
    )
    serve.add_argument(
        "--max-queue-delay-ms",
        type=_nonnegative_float,
        default=None,
        metavar="MS",
        help="also shed/degrade when the estimated queue delay (from the "
        "per-stage histograms) crosses this budget (default: depth "
        "threshold only)",
    )
    serve.add_argument(
        "--max-body-bytes",
        type=_positive_int,
        default=8 * 1024 * 1024,
        metavar="BYTES",
        help="largest accepted request body; larger answers 413 "
        "(default 8 MiB)",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help="ARM THE CHAOS HARNESS (tests/CI only): comma-separated "
        "site:kind[:value_ms][:probability] rules, e.g. "
        "'engine.solve:latency:25,server.response:error:0:0.05'; the "
        "REPRO_FAULTS environment variable is honoured when this flag "
        "is absent",
    )
    _add_memory_budget_flags(serve)
    serve.set_defaults(handler=_cmd_serve)

    slowlog = sub.add_parser(
        "slowlog", help="print a running server's slow-query flight recorder"
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=8080)
    slowlog.add_argument(
        "--limit", type=int, default=10, help="entries to print (default 10)"
    )
    slowlog.add_argument(
        "--json",
        action="store_true",
        help="emit the raw /debug/slow document instead of the text view",
    )
    slowlog.set_defaults(handler=_cmd_slowlog)

    loadtest = sub.add_parser(
        "loadtest", help="drive a running server with concurrent queries"
    )
    loadtest.add_argument("--host", default="127.0.0.1")
    loadtest.add_argument("--port", type=int, default=8080)
    loadtest.add_argument(
        "--concurrency", type=int, default=8, help="closed-loop workers (default 8)"
    )
    bound = loadtest.add_mutually_exclusive_group()
    bound.add_argument(
        "--requests",
        type=int,
        default=None,
        help="total requests across all workers (default 256)",
    )
    bound.add_argument(
        "--duration",
        type=float,
        default=None,
        help="run for this many seconds instead of a request count",
    )
    loadtest.add_argument("-k", type=int, default=10, help="answers per query")
    loadtest.add_argument("--seed", type=int, default=0, help="query sampling seed")
    loadtest.add_argument(
        "--deadline-ms",
        type=_nonnegative_float,
        default=None,
        metavar="MS",
        help="per-request deadline sent as X-Repro-Deadline-Ms "
        "(default: the server's own default; 0 opts out)",
    )
    loadtest.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="budgeted client retries per request with exponential "
        "backoff + full jitter, honouring Retry-After (default 0)",
    )
    loadtest.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of the text summary",
    )
    loadtest.set_defaults(handler=_cmd_loadtest)

    return parser


def _add_memory_budget_flags(parser: argparse.ArgumentParser) -> None:
    """Shard-residency flags shared by ``search`` and ``serve``.

    Both are no-ops on flat and spectral artifacts (loaded whole); on a
    sharded index they configure LRU eviction and compact bound tables
    with answers bitwise identical to the unbudgeted engine.
    """
    from repro.core.bounds import BOUND_TABLE_DTYPES

    parser.add_argument(
        "--memory-budget-mb",
        type=_positive_float,
        default=None,
        metavar="MB",
        help="cap a sharded index's evictable shard-state bytes; least-"
        "recently-used shards are evicted back to their mmap loaders and "
        "re-faulted on demand (default: everything stays resident; no-op "
        "on flat/spectral indexes; answers are identical at any budget)",
    )
    parser.add_argument(
        "--bounds-dtype",
        choices=BOUND_TABLE_DTYPES,
        default="float64",
        help="bound-table representation kept resident per shard: float64 "
        "(exact, default), float32 or int8 (compact, with certified exact "
        "fallback for clusters within quantization error of the pruning "
        "threshold; answers are identical under any setting)",
    )


def _add_feature_source(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in synthetic dataset"
    )
    source.add_argument("--features", help="path to a dense (n, m) .npy matrix")
    parser.add_argument(
        "--scale", type=float, default=1.0, help="dataset size multiplier"
    )
    parser.add_argument("--seed", type=int, default=0, help="dataset seed")


def _load_features(args: argparse.Namespace) -> np.ndarray:
    if args.dataset is not None:
        return load_dataset(args.dataset, scale=args.scale, seed=args.seed).features
    features = np.load(args.features, allow_pickle=False)
    if features.ndim != 2:
        raise ValueError(f"features must be a 2-D matrix, got shape {features.shape}")
    return np.asarray(features, dtype=np.float64)


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':10s} {'points':>8s} {'dims':>6s} {'classes':>8s}")
    for name in DATASET_NAMES:
        dataset = load_dataset(name, scale=args.scale, seed=args.seed)
        print(
            f"{name:10s} {dataset.n_points:8d} {dataset.n_dims:6d} "
            f"{dataset.n_classes:8d}"
        )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    features = _load_features(args)
    started = time.perf_counter()
    graph = build_knn_graph(features, k=args.k, jobs=args.jobs)
    graph_seconds = time.perf_counter() - started
    started = time.perf_counter()
    build_kwargs = dict(
        alpha=args.alpha,
        factorization="complete" if args.exact else "incomplete",
        fill_level=0 if args.exact else args.fill_level,
        jobs=args.jobs,
        factor_backend=args.factor_backend,
    )
    if args.shards is not None:
        index = ShardedMogulIndex.build(graph, args.shards, **build_kwargs)
    else:
        index = MogulIndex.build(graph, **build_kwargs)
    index_seconds = time.perf_counter() - started
    if index.profile is not None:
        # Account graph construction in the same table, ahead of the
        # stages the index build recorded itself.
        index.profile.stages = {"graph": graph_seconds, **index.profile.stages}
    index.save(args.out)
    shard_note = (
        f" ({index.n_shards} shards)" if args.shards is not None else ""
    )
    print(
        f"indexed {graph.n_nodes} nodes ({graph.n_edges} edges) in "
        f"{graph_seconds:.2f}s graph + {index_seconds:.2f}s index"
        f"{shard_note} -> {args.out}"
    )
    if index.profile is not None:
        print(index.profile.to_text())
    if args.spectral_rank is not None:
        from repro.core.serialize import save_spectral_index, spectral_tier_path
        from repro.core.spectral import SpectralIndex

        started = time.perf_counter()
        tier = SpectralIndex.build(graph, rank=args.spectral_rank, alpha=args.alpha)
        spectral_seconds = time.perf_counter() - started
        sidecar = save_spectral_index(tier, spectral_tier_path(args.out))
        print(
            f"spectral tier rank {tier.rank} in {spectral_seconds:.2f}s "
            f"-> {sidecar}"
        )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    from repro.core.spectral import SpectralIndex

    if isinstance(index, SpectralIndex):
        return _spectral_info(index)
    sharded = isinstance(index, ShardedMogulIndex)
    if args.verbose:
        if sharded:
            # Full health diagnostics assume the single-index layout;
            # degrade to the standard report rather than failing.
            print("(--verbose diagnostics cover single-index layouts; "
                  "showing the standard report)")
        else:
            from repro.core.diagnostics import diagnose_index

            print(diagnose_index(index).to_text())
            return 0
    perm = index.permutation
    border = perm.border_slice
    interior = [sl.stop - sl.start for sl in perm.cluster_slices[:-1]]
    print(f"nodes:            {index.n_nodes}")
    print(f"alpha:            {index.alpha}")
    print(f"factorization:    {index.factorization}")
    print(f"clusters:         {index.n_clusters} (border last)")
    print(f"border size:      {border.stop - border.start}")
    if interior:
        print(f"interior sizes:   min {min(interior)} / max {max(interior)}")
    print(f"factor non-zeros: {index.factor_nnz} (strict lower)")
    if sharded:
        print(f"pivot guards hit: {index.pivot_perturbations}")
        layout = index.layout
        print(
            f"shard layout:     {index.n_shards} shards + shared border "
            f"block of {index.border_size} nodes "
            f"({index.border_rows.nnz} border nnz)"
        )
        for shard_id, ((start, stop), (c_lo, c_hi)) in enumerate(
            zip(layout.spans, layout.cluster_ranges)
        ):
            print(
                f"  shard {shard_id}:        n={stop - start} "
                f"clusters={c_hi - c_lo} nnz={index.shard_nnz(shard_id)}"
            )
    else:
        # Legacy single-file layout: everything lives in one shard.
        print(f"pivot guards hit: {index.factors.pivot_perturbations}")
        print("shard layout:     1 shard (legacy single-file index)")
    profile = index.profile
    if profile is not None:
        if profile.stages:
            print("build profile:")
            print(profile.to_text())
        elif profile.load_seconds is not None:
            print(f"loaded in:        {profile.load_seconds:.3f}s")
            for warning in profile.load_warnings:
                print(f"load warning:     {warning}")
    from repro.core.serialize import is_spectral_index_path, spectral_tier_path

    sidecar = spectral_tier_path(args.index)
    if is_spectral_index_path(sidecar):
        # The artifact carries a nomination tier: serve composes the
        # tiered engine (accuracy dial) from it automatically.
        print(f"spectral tier:    {sidecar}")
    from repro.core.serialize import load_live_state

    state = load_live_state(args.index)
    if state is not None:
        # A mutable deployment's write-ahead sidecar: show the mutation
        # totals next to the (static) artifact they apply to.
        print("live state:")
        print(f"  epoch:          {state.epoch}")
        print(f"  pending:        {state.pending_ids.shape[0]}")
        print(f"  tombstones:     {state.tombstones.shape[0]}")
        print(
            f"  mutations:      {state.inserts} inserts / "
            f"{state.deletes} deletes / {state.rebuilds} rebuilds"
        )
        print(f"  live nodes:     {state.n_total - state.tombstones.shape[0]}")
    return 0


def _spectral_info(index) -> int:
    """The ``info`` report for a standalone spectral artifact."""
    print(f"nodes:            {index.n_nodes}")
    print(f"alpha:            {index.alpha}")
    print(f"factorization:    {index.factorization}")
    print(f"spectral rank:    {index.rank}")
    print(f"clusters:         {index.n_clusters}")
    print(f"basis non-zeros:  {index.factor_nnz} (dense n x r)")
    profile = index.profile
    if profile is not None:
        if profile.stages:
            print("build profile:")
            print(profile.to_text())
        elif profile.load_seconds is not None:
            print(f"loaded in:        {profile.load_seconds:.3f}s")
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    index = load_any_index(args.index)
    features = _load_features(args)
    graph = build_knn_graph(features, k=args.knn)
    dial = {}
    if args.accuracy is not None:
        dial["accuracy"] = args.accuracy
    if args.m is not None:
        dial["m"] = args.m
    spectral = None
    if dial:
        from repro.core.serialize import load_spectral_tier

        spectral = load_spectral_tier(args.index)
        if spectral is None:
            raise ValueError(
                f"--accuracy/--m need a spectral tier next to {args.index}; "
                "build one with `build --spectral-rank R`"
            )
    ranker = engine_from_index(
        graph,
        index,
        spectral=spectral,
        query_jobs=args.query_jobs,
        memory_budget_mb=args.memory_budget_mb,
        bounds_dtype=args.bounds_dtype,
    )
    label = ranker.resolve_accuracy(**dial)[0] if dial else None
    if args.batch:
        # Batch queries are independent; repeats are answered repeatedly.
        return _search_batch(
            ranker, list(args.query), args.k, as_json=args.json, dial=dial
        )
    queries = list(dict.fromkeys(args.query))  # de-dup, keep order (multi-seed)
    started = time.perf_counter()
    if len(queries) == 1:
        result = ranker.top_k(queries[0], args.k, **dial)
    else:
        if dial:
            raise ValueError(
                "the accuracy dial applies to single-node or --batch "
                "queries; multi-seed queries stay on the exact engine"
            )
        result = ranker.top_k_multi(np.asarray(queries), args.k)
    elapsed = time.perf_counter() - started
    if args.json:
        from repro.service.encoding import search_result_payload

        extra = {} if label is None else {"accuracy": label}
        print(
            json.dumps(
                search_result_payload(
                    result,
                    args.k,
                    ranker.last_stats,
                    query=queries[0] if len(queries) == 1 else queries,
                    latency_ms=1e3 * elapsed,
                    **extra,
                ),
                indent=2,
            )
        )
        return 0
    dial_note = "" if label is None else f" [{label}]"
    print(
        f"query {queries} -> top-{len(result)}{dial_note} "
        f"in {1e3 * elapsed:.2f} ms"
    )
    for rank, (node, score) in enumerate(zip(result.indices, result.scores), 1):
        print(f"{rank:4d}  node {int(node):8d}  score {float(score):.6e}")
    return 0


def _search_batch(
    ranker,
    queries: list[int],
    k: int,
    as_json: bool = False,
    dial: dict | None = None,
) -> int:
    """Answer every ``--query`` independently in one batched engine pass."""
    dial = dial or {}
    started = time.perf_counter()
    results = ranker.top_k_batch(np.asarray(queries), k, **dial)
    elapsed = time.perf_counter() - started
    if as_json:
        from repro.service.encoding import search_result_payload, stats_to_dict

        batch_stats = ranker.last_batch_stats
        document = {
            "k": k,
            "elapsed_ms": 1e3 * elapsed,
            "results": [
                search_result_payload(result, k, stats, query=int(query))
                for query, result, stats in zip(
                    queries, results, batch_stats.per_query
                )
            ],
            "totals": stats_to_dict(batch_stats.totals),
        }
        if dial:
            document["accuracy"] = ranker.resolve_accuracy(**dial)[0]
        print(json.dumps(document, indent=2))
        return 0
    per_query = 1e3 * elapsed / len(queries)
    print(
        f"batch of {len(queries)} queries -> top-{k} each in "
        f"{1e3 * elapsed:.2f} ms ({per_query:.2f} ms/query)"
    )
    batch_stats = ranker.last_batch_stats
    for query, result, stats in zip(queries, results, batch_stats.per_query):
        print(
            f"query {query}: pruned {stats.clusters_pruned}/"
            f"{stats.clusters_total} clusters "
            f"({100.0 * stats.prune_fraction:.0f}%), "
            f"{stats.nodes_scored} nodes scored"
        )
        for rank, (node, score) in enumerate(zip(result.indices, result.scores), 1):
            print(f"{rank:4d}  node {int(node):8d}  score {float(score):.6e}")
    totals = batch_stats.totals
    print(
        f"batch totals: pruned {totals.clusters_pruned}/"
        f"{totals.clusters_pruned + totals.clusters_scored} eligible clusters "
        f"({100.0 * batch_stats.prune_fraction:.0f}%), "
        f"{totals.nodes_scored} nodes scored, "
        f"{totals.bound_evaluations} bound evaluations"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.faults import FaultInjector
    from repro.service.server import run_server

    if args.faults:
        faults = FaultInjector.parse(args.faults)
    else:
        faults = FaultInjector.from_env()

    def _overload_kwargs() -> dict:
        return dict(
            request_timeout_ms=args.request_timeout_ms or None,
            max_queue_depth=args.max_queue_depth or None,
            overload_policy=args.overload_policy,
            max_queue_delay_ms=args.max_queue_delay_ms,
            max_body_bytes=args.max_body_bytes,
            faults=faults,
        )

    index = load_any_index(args.index)
    features = _load_features(args)
    graph = build_knn_graph(features, k=args.knn)
    from repro.core.serialize import (
        is_spectral_index_path,
        load_spectral_tier,
        spectral_tier_path,
    )

    spectral = None
    if not args.mutable:
        # A spectral sidecar next to the artifact turns the deployment
        # into a tiered engine with the /search accuracy dial.  A mutable
        # deployment cannot use it (the tier cannot follow writes).
        spectral = load_spectral_tier(args.index)
    elif is_spectral_index_path(spectral_tier_path(args.index)):
        print(
            "ignoring spectral tier sidecar: a mutable deployment serves "
            "the exact engine only"
        )
    ranker = engine_from_index(
        graph,
        index,
        live=args.mutable,
        live_kwargs=dict(
            k=args.knn,
            auto_rebuild_fraction=args.auto_rebuild_fraction or None,
        ),
        spectral=spectral,
        query_jobs=args.query_jobs,
        memory_budget_mb=args.memory_budget_mb,
        bounds_dtype=args.bounds_dtype,
    )
    if spectral is not None:
        print(
            f"spectral tier: rank {spectral.rank}, accuracy dial on "
            "/search (fast/balanced/exact or m=<budget>)"
        )
    if not args.mutable:
        run_server(
            ranker,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_capacity,
            tracing=not args.no_tracing,
            slowlog_capacity=args.slowlog_capacity,
            slow_threshold_ms=args.slow_threshold_ms,
            query_workers=args.query_workers,
            **_overload_kwargs(),
        )
        return 0

    from repro.core.serialize import load_live_state, save_live_state

    state = load_live_state(args.index)
    if state is not None:
        ranker.restore_mutable_state(state)
        print(
            f"restored live state: epoch {state.epoch}, "
            f"{state.pending_ids.shape[0]} pending, "
            f"{state.tombstones.shape[0]} tombstones"
        )
    try:
        run_server(
            ranker,
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            cache_capacity=args.cache_capacity,
            tracing=not args.no_tracing,
            slowlog_capacity=args.slowlog_capacity,
            slow_threshold_ms=args.slow_threshold_ms,
            query_workers=args.query_workers,
            **_overload_kwargs(),
        )
    finally:
        # Let an in-flight background rebuild settle, then persist the
        # write-ahead state next to the (unchanged) index artifact.
        ranker.close()
        sidecar = save_live_state(args.index, ranker.mutable_state())
        print(f"saved live state -> {sidecar}")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.service.client import run_load_test

    total = args.requests
    if total is None and args.duration is None:
        total = 256
    report = run_load_test(
        host=args.host,
        port=args.port,
        concurrency=args.concurrency,
        total_requests=total,
        duration_seconds=args.duration,
        k=args.k,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        retries=args.retries,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.to_text())
    if not report.ok:
        print(
            f"loadtest FAILED: {report.n_errors} errors, "
            f"{report.n_empty} empty responses out of {report.n_requests}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_slowlog(args: argparse.Namespace) -> int:
    from repro.obs.trace import format_trace
    from repro.service.client import RetrievalClient

    with RetrievalClient(args.host, args.port) as client:
        document = client.slowlog()
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    recorder = document["slowlog"]
    policy = recorder["policy"]
    threshold = recorder.get("threshold_ms")
    print(
        f"slow-query flight recorder: policy={policy}"
        + (f" (>= {threshold:g} ms)" if threshold is not None else "")
        + f", retained {recorder['retained']}/{recorder['capacity']}, "
        f"seen {recorder['seen']} requests"
    )
    if not recorder.get("tracing", True):
        print("tracing is disabled on this server (--no-tracing)")
    entries = document["entries"][: max(0, args.limit)]
    for rank, entry in enumerate(entries, start=1):
        print(
            f"\n#{rank}  {entry['endpoint']}  {entry['latency_ms']:.2f} ms  "
            f"trace {entry['trace_id']}"
        )
        print(format_trace(entry["trace"]["root"], indent=1))
    if not entries:
        print("no slow queries recorded")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
