"""One-call construction of the k-NN graph used throughout the paper.

:func:`build_knn_graph` composes the neighbour search, symmetrisation and
heat-kernel weighting substrates into the graph the paper's experiments use
(k = 5, union symmetrisation, automatic bandwidth, alpha handled later by
the rankers).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.graph.adjacency import KnnGraph
from repro.graph.heat_kernel import heat_kernel_weights
from repro.graph.knn import knn_search
from repro.utils.validation import check_positive_int


def build_knn_graph(
    features: np.ndarray,
    k: int = 5,
    sigma: float | str = "auto",
    weight: str = "heat",
    mode: str = "union",
    method: str = "auto",
    jobs: int = 1,
) -> KnnGraph:
    """Build the undirected weighted k-NN graph of a feature matrix.

    Parameters
    ----------
    features:
        ``(n, m)`` dense feature matrix (one row per image).
    k:
        Neighbours per node before symmetrisation.  The paper uses 5 and
        notes 5-20 is the usual range (§3).
    sigma:
        Heat-kernel bandwidth or ``"auto"`` (std of the edge distances).
    weight:
        ``"heat"`` for heat-kernel weights (paper default) or ``"binary"``
        for unweighted edges.
    mode:
        ``"union"`` keeps an edge when either endpoint selects the other;
        ``"mutual"`` requires both.  Union is the standard reading of
        "two nodes are connected if they are k-nearest neighbors".
    method:
        Neighbour-search engine, forwarded to :func:`repro.graph.knn_search`.
    jobs:
        Worker threads for the neighbour search (the expensive stage of
        graph construction); identical graphs for any value.

    Returns
    -------
    KnnGraph
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    n = features.shape[0]
    k = check_positive_int(k, "k")
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the number of points n={n}")
    if weight not in ("heat", "binary"):
        raise ValueError(f"weight must be 'heat' or 'binary', got {weight!r}")
    if mode not in ("union", "mutual"):
        raise ValueError(f"mode must be 'union' or 'mutual', got {mode!r}")

    nbr_idx, nbr_dist = knn_search(features, k, method=method, jobs=jobs)

    rows = np.repeat(np.arange(n, dtype=np.int64), k)
    cols = nbr_idx.ravel()
    dists = nbr_dist.ravel()

    directed = sp.csr_matrix((dists, (rows, cols)), shape=(n, n))
    # Marker matrix distinguishes "absent" from "present at distance 0".
    present = sp.csr_matrix((np.ones_like(dists), (rows, cols)), shape=(n, n))
    if mode == "union":
        sym_present = present.maximum(present.T)
        sym_dist = directed.maximum(directed.T)
    else:
        sym_present = present.minimum(present.T)
        sym_dist = directed.multiply(sym_present)
        sym_dist = sym_dist.maximum(sym_dist.T)
    sym_present = sym_present.tocoo()
    edge_rows, edge_cols = sym_present.row, sym_present.col
    sym_dist = sym_dist.tocsr()
    edge_dists = np.asarray(sym_dist[edge_rows, edge_cols]).ravel()

    if weight == "heat":
        if sigma == "auto":
            # Bandwidth from each undirected edge once (upper triangle).
            upper = edge_rows < edge_cols
            sigma = _auto_sigma(edge_dists[upper])
        weights, used_sigma = heat_kernel_weights(edge_dists, sigma)
    else:
        weights = np.ones_like(edge_dists)
        used_sigma = 0.0

    adjacency = sp.csr_matrix((weights, (edge_rows, edge_cols)), shape=(n, n))
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    # Symmetrise exactly against float round-off.
    adjacency = ((adjacency + adjacency.T) * 0.5).tocsr()
    adjacency.sort_indices()
    return KnnGraph(
        features=features,
        adjacency=adjacency,
        k=k,
        sigma=used_sigma,
        mode=mode,
    )


def _auto_sigma(upper_edge_dists: np.ndarray) -> float:
    from repro.graph.heat_kernel import estimate_sigma

    if upper_edge_dists.size == 0:
        return 1.0
    return estimate_sigma(upper_edge_dists)
