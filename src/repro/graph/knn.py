"""Exact k-nearest-neighbour search over dense feature matrices.

Three interchangeable engines:

* ``"brute"`` — chunked, fully vectorised Euclidean distances.  Exact, no
  preprocessing, O(n^2 m) time but cache-friendly.
* ``"blas"`` — the same O(n^2 m) work split into a single-precision
  *prefilter* (one ``sgemm`` panel per chunk over centred data, roughly
  twice the float64 throughput at half the memory traffic) that
  nominates ``k + pad`` candidates per query, followed by an exact
  float64 re-ranking of just those candidates with the same
  clamped-expansion formula ``brute`` uses.  Each row is then certified
  against a float32 error bound and recomputed by brute force when the
  pad provably might not have sufficed — so the selected neighbours
  always match ``brute`` (distances agree to float64 rounding of the
  dot products), and only adversarial inputs pay the fallback.  The
  default for large high-dimensional self-queries — i.e. graph
  construction.
* ``"kdtree"`` — the from-scratch tree in :mod:`repro.graph.kdtree`; wins in
  low dimensions.

All return the same `(indices, distances)` contract and exclude the point
itself from its own neighbour list.  ``jobs`` spreads the independent
query chunks of the matrix engines over a thread pool (the BLAS panels
release the GIL); any value returns identical results.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.graph.kdtree import KDTree
from repro.utils.validation import check_jobs, check_positive_int

#: Rows per brute-force distance block; bounds peak memory at
#: ``_CHUNK * n * 8`` bytes for the pairwise-distance panel.
_CHUNK = 512

#: Rows per ``"blas"`` prefilter panel (float32, so twice the rows fit in
#: the same footprint as a brute-force panel).
_BLAS_CHUNK = 1024

#: Extra float32 candidates kept beyond ``k`` before the exact float64
#: re-ranking.  The pad absorbs float32 misordering near the k-th
#: neighbour; rows where it provably might not suffice (see the
#: certification step in :func:`_blas_prefilter`) fall back to an exact
#: brute-force pass, so the engine stays exact regardless.
_BLAS_PAD = 16

#: Constant in the float32 error bound used to certify prefilter rows:
#: accumulating an m-term dot product plus the input roundings costs at
#: most ~(m + _BLAS_ERROR_TERMS) ulps of the magnitude scale.
_BLAS_ERROR_TERMS = 8

#: ``method="auto"`` switches to the ``"blas"`` engine for self-query
#: databases at least this large (below it, brute's simplicity wins).
_BLAS_MIN_POINTS = 4096


def pairwise_sq_distances(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between ``block`` rows and all ``points``.

    Uses the expansion ``|a-b|^2 = |a|^2 - 2 a.b + |b|^2`` with a clamp at
    zero (round-off can push tiny distances negative).
    """
    sq_block = np.einsum("ij,ij->i", block, block)
    sq_points = np.einsum("ij,ij->i", points, points)
    d2 = sq_block[:, None] - 2.0 * (block @ points.T) + sq_points[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def knn_search(
    points: np.ndarray,
    k: int,
    queries: np.ndarray | None = None,
    method: str = "auto",
    exclude_self: bool | None = None,
    jobs: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Find the ``k`` nearest neighbours of each query among ``points``.

    Parameters
    ----------
    points:
        ``(n, m)`` database feature matrix.
    k:
        Number of neighbours to return per query.
    queries:
        ``(q, m)`` query matrix.  ``None`` means "the points themselves",
        in which case each point is excluded from its own neighbour list
        (the k-NN-graph convention; no self loops, paper §3).
    method:
        ``"brute"``, ``"blas"``, ``"kdtree"``, or ``"auto"`` (KD-tree for
        m <= 16, the blas prefilter engine for self-query databases of at
        least ``_BLAS_MIN_POINTS`` points, brute force otherwise).
    exclude_self:
        Override the self-exclusion default (only meaningful when
        ``queries is None``).
    jobs:
        Worker threads for the independent query chunks of the matrix
        engines (``"brute"``/``"blas"``); identical results for any
        value.  The KD-tree engine ignores it.

    Returns
    -------
    (indices, distances):
        Both of shape ``(q, k)``; neighbours sorted by increasing distance.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    k = check_positive_int(k, "k")
    jobs = check_jobs(jobs)
    self_query = queries is None
    if exclude_self is None:
        exclude_self = self_query
    if exclude_self and not self_query:
        raise ValueError("exclude_self requires queries to be the points themselves")
    query_mat = points if self_query else np.asarray(queries, dtype=np.float64)
    if query_mat.ndim != 2 or query_mat.shape[1] != points.shape[1]:
        raise ValueError(
            f"queries must be (q, {points.shape[1]}), got shape {query_mat.shape}"
        )
    limit = points.shape[0] - (1 if exclude_self else 0)
    if k > limit:
        raise ValueError(f"k={k} exceeds the {limit} available neighbours")

    if method == "auto":
        if points.shape[1] <= 16:
            method = "kdtree"
        elif self_query and points.shape[0] >= _BLAS_MIN_POINTS:
            method = "blas"
        else:
            method = "brute"
    if method == "kdtree":
        tree = KDTree(points)
        return tree.query(query_mat, k, exclude_self=exclude_self)
    if method == "blas":
        return _blas_prefilter(points, query_mat, k, exclude_self, jobs)
    if method != "brute":
        raise ValueError(
            f"unknown method {method!r}; use 'brute', 'blas', 'kdtree' or 'auto'"
        )
    return _brute_force(points, query_mat, k, exclude_self, jobs)


def _chunk_ranges(n_queries: int, chunk: int) -> list[tuple[int, int]]:
    return [
        (start, min(start + chunk, n_queries))
        for start in range(0, n_queries, chunk)
    ]


def _run_chunks(run, ranges: list[tuple[int, int]], jobs: int) -> None:
    """Execute chunk workers, optionally across a thread pool.

    Each worker writes a disjoint row range of the output arrays, so the
    schedule cannot change results.
    """
    if jobs > 1 and len(ranges) > 1:
        with ThreadPoolExecutor(max_workers=min(jobs, len(ranges))) as pool:
            for _ in pool.map(lambda span: run(*span), ranges):
                pass
    else:
        for start, stop in ranges:
            run(start, stop)


def _brute_force(
    points: np.ndarray, queries: np.ndarray, k: int, exclude_self: bool, jobs: int = 1
) -> tuple[np.ndarray, np.ndarray]:
    n_queries = queries.shape[0]
    nbr_idx = np.empty((n_queries, k), dtype=np.int64)
    nbr_dist = np.empty((n_queries, k), dtype=np.float64)

    def run(start: int, stop: int) -> None:
        d2 = pairwise_sq_distances(queries[start:stop], points)
        if exclude_self:
            rows = np.arange(stop - start)
            d2[rows, np.arange(start, stop)] = np.inf
        # argpartition picks the k smallest in O(n), then we sort just those.
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        part_d2 = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d2, axis=1, kind="stable")
        nbr_idx[start:stop] = np.take_along_axis(part, order, axis=1)
        nbr_dist[start:stop] = np.sqrt(np.take_along_axis(part_d2, order, axis=1))

    _run_chunks(run, _chunk_ranges(n_queries, _CHUNK), jobs)
    return nbr_idx, nbr_dist


def _blas_prefilter(
    points: np.ndarray,
    queries: np.ndarray,
    k: int,
    exclude_self: bool,
    jobs: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Float32 candidate nomination + exact float64 re-ranking.

    Three safeguards make the fast path *exact*, not approximate:

    * the data is **centred** before the float32 stage (distances are
      translation invariant), so uncentred features with huge norms do
      not sink the prefilter in catastrophic cancellation;
    * the prefilter ranks by ``r = |x_j - c|^2 - 2 <q_i - c, x_j - c>``
      (the query norm is constant per row and cannot change the
      ordering), and the refine step evaluates the same clamped
      expansion ``brute`` uses, in float64, on the ``k + pad`` nominated
      candidates only;
    * every row is **certified**: any point the prefilter excluded has
      float32 rank value at least that of the last kept candidate, so
      its true rank value is at least that minus the float32 error
      bound.  If the exact k-th candidate does not clear that threshold
      the row's neighbours are not provably correct, and the row is
      recomputed with an exact brute-force pass.  On feature matrices
      whose neighbour gaps exceed float32 noise (every real dataset
      here) no row falls back; adversarial inputs get the right answer
      at brute-force speed.
    """
    n, m = points.shape
    n_queries = queries.shape[0]
    cand_count = min(k + _BLAS_PAD, n)
    certify = cand_count < n  # with every point a candidate, exactness is free
    center = points.mean(axis=0) if n else np.zeros(m)
    centered = points - center
    self_query = queries is points
    centered_queries = centered if self_query else queries - center
    points32 = np.asarray(centered, dtype=np.float32)
    queries32 = points32 if self_query else np.asarray(centered_queries, np.float32)
    sq32 = np.einsum("ij,ij->i", points32, points32)
    sq_points = np.einsum("ij,ij->i", points, points)
    sq_centered_q = np.einsum("ij,ij->i", centered_queries, centered_queries)
    max_norm = float(
        np.sqrt(np.einsum("ij,ij->i", centered, centered).max())
    ) if n else 0.0
    max_sq_points = float(sq_points.max()) if n else 0.0
    eps32 = float(np.finfo(np.float32).eps)
    eps64 = float(np.finfo(np.float64).eps)
    nbr_idx = np.empty((n_queries, k), dtype=np.int64)
    nbr_dist = np.empty((n_queries, k), dtype=np.float64)

    def run(start: int, stop: int) -> None:
        # r32 = |x_j|^2 - 2 <q_i, x_j> (centred), built in place on the panel.
        r32 = queries32[start:stop] @ points32.T
        r32 *= -2.0
        r32 += sq32[None, :]
        if exclude_self:
            rows = np.arange(stop - start)
            r32[rows, np.arange(start, stop)] = np.inf
        part = np.argpartition(r32, cand_count - 1, axis=1)[:, :cand_count]
        block = queries[start:stop]
        sq_block = np.einsum("ij,ij->i", block, block)
        # The exact re-rank gathers candidate points densely; sub-block
        # the rows so the (rows, cand, m) transient stays small even on
        # thousand-dimensional features (results are row-wise, so the
        # sub-blocking cannot change them).
        d2 = np.empty((stop - start, cand_count), dtype=np.float64)
        # ~64 MB of gathered float64 candidates per sub-block.
        sub = max(1, 8_000_000 // (cand_count * m))
        for lo in range(0, stop - start, sub):
            hi = min(lo + sub, stop - start)
            gathered = points[part[lo:hi]]
            dots = np.einsum("cm,cpm->cp", block[lo:hi], gathered)
            d2[lo:hi] = sq_block[lo:hi, None] - 2.0 * dots + sq_points[part[lo:hi]]
        np.maximum(d2, 0.0, out=d2)
        if exclude_self:
            d2[part == np.arange(start, stop)[:, None]] = np.inf
        top = np.argpartition(d2, k - 1, axis=1)[:, :k]
        top_d2 = np.take_along_axis(d2, top, axis=1)
        order = np.argsort(top_d2, axis=1, kind="stable")
        nbr_idx[start:stop] = np.take_along_axis(
            np.take_along_axis(part, top, axis=1), order, axis=1
        )
        sorted_d2 = np.take_along_axis(top_d2, order, axis=1)
        nbr_dist[start:stop] = np.sqrt(sorted_d2)
        if not certify:
            return
        # Certification: excluded points have r32 >= t32 (the last kept
        # candidate), hence true r >= t32 - bound; the row is proven
        # exact when its exact k-th candidate beats that floor.
        t32 = np.take_along_axis(
            r32, part[:, cand_count - 1 : cand_count], axis=1
        ).ravel().astype(np.float64)
        q_norm = np.sqrt(sq_centered_q[start:stop])
        bound = (
            (m + _BLAS_ERROR_TERMS)
            * eps32
            * (max_norm * max_norm + q_norm * max_norm)
        )
        exact_rank = sorted_d2[:, k - 1] - sq_centered_q[start:stop]
        unproven = exact_rank > t32 - bound
        # Squared distances that tie within the float64 noise of the
        # expansion could legitimately be ordered either way by the two
        # computations; route those rows through brute's own panels so
        # both the selection (k-th kept vs. (k+1)-th candidate) and the
        # internal order match brute exactly.
        noise64 = (
            (m + _BLAS_ERROR_TERMS)
            * eps64
            * (max_sq_points + np.sqrt(sq_block * max_sq_points))
        )
        runner_up = np.partition(d2, k, axis=1)[:, k]
        min_gap = runner_up - sorted_d2[:, k - 1]
        if k > 1:
            min_gap = np.minimum(min_gap, np.diff(sorted_d2, axis=1).min(axis=1))
        unproven |= min_gap <= 2.0 * noise64
        uncertified = start + np.flatnonzero(unproven)
        if uncertified.size == 0:
            return
        # Recompute uncertified rows through brute force's own chunked
        # panels (brute chunks nest inside blas chunks, so the panel
        # values — and hence any noise-level tie decisions — are bitwise
        # what method="brute" would have produced for those rows).
        for chunk_id in np.unique(uncertified // _CHUNK):
            panel_start = int(chunk_id) * _CHUNK
            panel_stop = min(panel_start + _CHUNK, n_queries)
            d2_panel = pairwise_sq_distances(
                queries[panel_start:panel_stop], points
            )
            if exclude_self:
                rows = np.arange(panel_stop - panel_start)
                d2_panel[rows, np.arange(panel_start, panel_stop)] = np.inf
            in_panel = uncertified[
                (uncertified >= panel_start) & (uncertified < panel_stop)
            ]
            for global_row in in_panel:
                d2_row = d2_panel[global_row - panel_start]
                chosen = np.argpartition(d2_row, k - 1)[:k]
                chosen_d2 = d2_row[chosen]
                resort = np.argsort(chosen_d2, kind="stable")
                nbr_idx[global_row] = chosen[resort]
                nbr_dist[global_row] = np.sqrt(chosen_d2[resort])

    _run_chunks(run, _chunk_ranges(n_queries, _BLAS_CHUNK), jobs)
    return nbr_idx, nbr_dist
