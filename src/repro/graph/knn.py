"""Exact k-nearest-neighbour search over dense feature matrices.

Two interchangeable engines:

* ``"brute"`` — chunked, fully vectorised Euclidean distances.  Exact, no
  preprocessing, O(n^2 m) time but cache-friendly; the default for the
  feature dimensionalities used in the paper (73-3048 D), where space
  partitioning degenerates anyway.
* ``"kdtree"`` — the from-scratch tree in :mod:`repro.graph.kdtree`; wins in
  low dimensions.

Both return the same `(indices, distances)` contract and exclude the point
itself from its own neighbour list.
"""

from __future__ import annotations

import numpy as np

from repro.graph.kdtree import KDTree
from repro.utils.validation import check_positive_int

#: Rows per brute-force distance block; bounds peak memory at
#: ``_CHUNK * n * 8`` bytes for the pairwise-distance panel.
_CHUNK = 512


def pairwise_sq_distances(block: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between ``block`` rows and all ``points``.

    Uses the expansion ``|a-b|^2 = |a|^2 - 2 a.b + |b|^2`` with a clamp at
    zero (round-off can push tiny distances negative).
    """
    sq_block = np.einsum("ij,ij->i", block, block)
    sq_points = np.einsum("ij,ij->i", points, points)
    d2 = sq_block[:, None] - 2.0 * (block @ points.T) + sq_points[None, :]
    np.maximum(d2, 0.0, out=d2)
    return d2


def knn_search(
    points: np.ndarray,
    k: int,
    queries: np.ndarray | None = None,
    method: str = "auto",
    exclude_self: bool | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Find the ``k`` nearest neighbours of each query among ``points``.

    Parameters
    ----------
    points:
        ``(n, m)`` database feature matrix.
    k:
        Number of neighbours to return per query.
    queries:
        ``(q, m)`` query matrix.  ``None`` means "the points themselves",
        in which case each point is excluded from its own neighbour list
        (the k-NN-graph convention; no self loops, paper §3).
    method:
        ``"brute"``, ``"kdtree"``, or ``"auto"`` (KD-tree for m <= 16,
        brute force otherwise).
    exclude_self:
        Override the self-exclusion default (only meaningful when
        ``queries is None``).

    Returns
    -------
    (indices, distances):
        Both of shape ``(q, k)``; neighbours sorted by increasing distance.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {points.shape}")
    k = check_positive_int(k, "k")
    self_query = queries is None
    if exclude_self is None:
        exclude_self = self_query
    if exclude_self and not self_query:
        raise ValueError("exclude_self requires queries to be the points themselves")
    query_mat = points if self_query else np.asarray(queries, dtype=np.float64)
    if query_mat.ndim != 2 or query_mat.shape[1] != points.shape[1]:
        raise ValueError(
            f"queries must be (q, {points.shape[1]}), got shape {query_mat.shape}"
        )
    limit = points.shape[0] - (1 if exclude_self else 0)
    if k > limit:
        raise ValueError(f"k={k} exceeds the {limit} available neighbours")

    if method == "auto":
        method = "kdtree" if points.shape[1] <= 16 else "brute"
    if method == "kdtree":
        tree = KDTree(points)
        return tree.query(query_mat, k, exclude_self=exclude_self)
    if method != "brute":
        raise ValueError(f"unknown method {method!r}; use 'brute', 'kdtree' or 'auto'")
    return _brute_force(points, query_mat, k, exclude_self)


def _brute_force(
    points: np.ndarray, queries: np.ndarray, k: int, exclude_self: bool
) -> tuple[np.ndarray, np.ndarray]:
    n_queries = queries.shape[0]
    nbr_idx = np.empty((n_queries, k), dtype=np.int64)
    nbr_dist = np.empty((n_queries, k), dtype=np.float64)
    for start in range(0, n_queries, _CHUNK):
        stop = min(start + _CHUNK, n_queries)
        d2 = pairwise_sq_distances(queries[start:stop], points)
        if exclude_self:
            rows = np.arange(stop - start)
            d2[rows, np.arange(start, stop)] = np.inf
        # argpartition picks the k smallest in O(n), then we sort just those.
        part = np.argpartition(d2, k - 1, axis=1)[:, :k]
        part_d2 = np.take_along_axis(d2, part, axis=1)
        order = np.argsort(part_d2, axis=1, kind="stable")
        nbr_idx[start:stop] = np.take_along_axis(part, order, axis=1)
        nbr_dist[start:stop] = np.sqrt(np.take_along_axis(part_d2, order, axis=1))
    return nbr_idx, nbr_dist
