"""k-NN graph substrate: neighbour search, heat-kernel weights, container.

Manifold Ranking models the database as a k-NN graph (paper §3): one node
per image, an undirected edge between k-nearest neighbours, and heat-kernel
edge weights :math:`A_{ij} = \\exp(-d^2(u_i, u_j) / 2\\sigma^2)`.  This
package builds that graph from raw feature vectors:

* :func:`knn_search` — exact k-nearest neighbours (chunked brute force, or
  the from-scratch KD-tree in :mod:`repro.graph.kdtree` for low dimensions).
* :func:`heat_kernel_weights` — edge weighting with automatic bandwidth.
* :func:`build_knn_graph` — the one-call entry point producing a
  :class:`KnnGraph`.
"""

from repro.graph.adjacency import KnnGraph
from repro.graph.build import build_knn_graph
from repro.graph.heat_kernel import estimate_sigma, heat_kernel_weights
from repro.graph.kdtree import KDTree
from repro.graph.knn import knn_search

__all__ = [
    "KDTree",
    "KnnGraph",
    "build_knn_graph",
    "estimate_sigma",
    "heat_kernel_weights",
    "knn_search",
]
