"""Heat-kernel edge weighting for k-NN graphs.

The paper (§3) weights an edge (i, j) as

.. math:: A_{ij} = \\exp\\bigl(-d^2(u_i, u_j) / 2\\sigma^2\\bigr)

with :math:`d` the Euclidean distance and :math:`\\sigma` "the standard
variation of the function scores".  We follow the common reading used by the
Manifold Ranking literature: :math:`\\sigma` is a global bandwidth estimated
from the distribution of k-NN edge distances.  :func:`estimate_sigma`
implements that estimator (standard deviation of the edge distances, with a
mean fallback when the spread is degenerate) and is the ``sigma="auto"``
path of :func:`repro.graph.build_knn_graph`.
"""

from __future__ import annotations

import numpy as np


def estimate_sigma(distances: np.ndarray) -> float:
    """Bandwidth estimate from the pooled k-NN edge distances.

    Returns the mean edge distance — the standard bandwidth choice in the
    Manifold Ranking literature.  (The paper's phrase "standard variation
    of the function scores" is ambiguous; the *spread* of k-NN distances
    collapses towards zero on homogeneous data, which would underflow every
    edge weight to ``exp(-huge)``, so the mean is the robust reading that
    keeps within-manifold weights O(1).)  Falls back to 1.0 when all edge
    distances are zero (duplicate points), so the kernel never divides by
    zero.
    """
    distances = np.asarray(distances, dtype=np.float64).ravel()
    if distances.size == 0:
        raise ValueError("cannot estimate sigma from an empty distance set")
    sigma = float(np.mean(distances))
    if sigma <= 1e-12:
        sigma = 1.0
    return sigma


def heat_kernel_weights(
    distances: np.ndarray, sigma: float | str = "auto"
) -> tuple[np.ndarray, float]:
    """Map edge distances to heat-kernel weights.

    Parameters
    ----------
    distances:
        Array of Euclidean edge distances (any shape).
    sigma:
        Kernel bandwidth, or ``"auto"`` to call :func:`estimate_sigma`.

    Returns
    -------
    (weights, sigma):
        Weights with the same shape as ``distances`` in ``(0, 1]``, and the
        bandwidth actually used.
    """
    distances = np.asarray(distances, dtype=np.float64)
    if sigma == "auto":
        sigma = estimate_sigma(distances)
    sigma = float(sigma)
    if sigma <= 0:
        raise ValueError(f"sigma must be positive, got {sigma}")
    weights = np.exp(-np.square(distances) / (2.0 * sigma * sigma))
    return weights, sigma
