"""The :class:`KnnGraph` container shared by every ranker in the library.

A ``KnnGraph`` bundles the raw feature matrix with the symmetric weighted
adjacency matrix of its k-NN graph, plus the construction metadata (k, the
heat-kernel bandwidth, the symmetrisation mode).  Rankers only consume the
adjacency matrix; the features are retained for out-of-sample queries
(paper §4.6.2) and for dataset-level bookkeeping (labels live alongside in
:mod:`repro.datasets`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.sparse as sp

from repro.utils.validation import check_symmetric


@dataclass(frozen=True)
class KnnGraph:
    """An undirected, weighted k-NN graph over a feature matrix.

    Attributes
    ----------
    features:
        ``(n, m)`` feature matrix the graph was built from.
    adjacency:
        ``(n, n)`` symmetric CSR weight matrix with a zero diagonal
        (no self loops, paper §3).
    k:
        Neighbour count used at construction.
    sigma:
        Heat-kernel bandwidth used for the edge weights (``0.0`` when the
        graph uses binary weights).
    mode:
        ``"union"`` (edge if either endpoint lists the other among its k
        nearest — the common k-NN-graph convention) or ``"mutual"``.
    """

    features: np.ndarray
    adjacency: sp.csr_matrix
    k: int
    sigma: float
    mode: str = "union"
    _degrees: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        adj = self.adjacency
        if adj.shape[0] != self.features.shape[0]:
            raise ValueError(
                f"adjacency is {adj.shape[0]}x{adj.shape[1]} but features have "
                f"{self.features.shape[0]} rows"
            )
        check_symmetric(adj, "adjacency", tol=1e-8)
        if np.any(adj.diagonal() != 0):
            raise ValueError("k-NN graphs must not contain self loops")
        if adj.nnz and np.any(adj.data < 0):
            raise ValueError("edge weights must be non-negative")
        object.__setattr__(self, "_degrees", np.asarray(adj.sum(axis=1)).ravel())

    @property
    def n_nodes(self) -> int:
        """Number of nodes (images) in the graph."""
        return self.adjacency.shape[0]

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return self.adjacency.nnz // 2

    @property
    def degrees(self) -> np.ndarray:
        """Weighted degree vector ``C_ii = sum_j A_ij`` (paper Eq. 1)."""
        return self._degrees

    def neighbors(self, node: int) -> np.ndarray:
        """Indices of nodes adjacent to ``node``."""
        start, stop = self.adjacency.indptr[node], self.adjacency.indptr[node + 1]
        return self.adjacency.indices[start:stop]

    def edge_weight(self, i: int, j: int) -> float:
        """Weight of edge ``(i, j)`` (0.0 when absent)."""
        return float(self.adjacency[i, j])

    def subgraph_adjacency(self, nodes: np.ndarray) -> sp.csr_matrix:
        """Adjacency restricted to ``nodes`` (used by the FMR blocks)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        return self.adjacency[nodes][:, nodes].tocsr()
