"""A from-scratch KD-tree for exact k-nearest-neighbour queries.

Median-split construction over the widest-spread dimension, array-based node
storage, and best-first descent with a bounded max-heap per query.  Exactness
is guaranteed by the usual hypersphere/hyperplane pruning test; the test
suite cross-checks every query against brute force.

The tree is the low-dimensional engine behind :func:`repro.graph.knn_search`
and also serves the out-of-sample path (paper §4.6.2), where neighbour
queries against a single cluster's features are frequent and small.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

_LEAF_SIZE = 16


@dataclass
class _Node:
    """One KD-tree node; leaves keep point indices, splits keep a plane."""

    indices: np.ndarray | None = None  # leaf payload
    split_dim: int = -1
    split_value: float = 0.0
    left: int = -1  # child node ids
    right: int = -1


class KDTree:
    """Exact k-NN index over an ``(n, m)`` point matrix.

    Parameters
    ----------
    points:
        Dense feature matrix; a float64 copy is kept for query-time
        distance evaluation.
    leaf_size:
        Points per leaf before splitting stops.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE):
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError(f"points must be a non-empty 2-D array, got {points.shape}")
        if leaf_size < 1:
            raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
        self.points = points
        self.leaf_size = leaf_size
        self._nodes: list[_Node] = []
        self._build(np.arange(points.shape[0], dtype=np.int64))

    # -- construction --------------------------------------------------

    def _build(self, indices: np.ndarray) -> int:
        node_id = len(self._nodes)
        self._nodes.append(_Node())
        if indices.shape[0] <= self.leaf_size:
            self._nodes[node_id].indices = indices
            return node_id
        subset = self.points[indices]
        spreads = subset.max(axis=0) - subset.min(axis=0)
        dim = int(np.argmax(spreads))
        if spreads[dim] == 0.0:  # all duplicates: cannot split further
            self._nodes[node_id].indices = indices
            return node_id
        values = subset[:, dim]
        order = np.argsort(values, kind="stable")
        mid = indices.shape[0] // 2
        split_value = float(values[order[mid]])
        left_idx = indices[order[:mid]]
        right_idx = indices[order[mid:]]
        node = self._nodes[node_id]
        node.split_dim = dim
        node.split_value = split_value
        node.left = self._build(left_idx)
        node.right = self._build(right_idx)
        return node_id

    # -- queries -------------------------------------------------------

    def query(
        self,
        queries: np.ndarray,
        k: int,
        exclude_self: bool = False,
    ) -> tuple[np.ndarray, np.ndarray]:
        """k nearest neighbours for each query row.

        ``exclude_self`` drops a neighbour at distance zero with index equal
        to the query's row position — the convention used when the queries
        *are* the indexed points (k-NN graph construction).
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if queries.shape[1] != self.points.shape[1]:
            raise ValueError(
                f"queries must have {self.points.shape[1]} columns, got {queries.shape[1]}"
            )
        limit = self.points.shape[0] - (1 if exclude_self else 0)
        if k > limit:
            raise ValueError(f"k={k} exceeds the {limit} available neighbours")
        nbr_idx = np.empty((queries.shape[0], k), dtype=np.int64)
        nbr_dist = np.empty((queries.shape[0], k), dtype=np.float64)
        for row, query in enumerate(queries):
            skip = row if exclude_self else -1
            idx, dist = self._query_one(query, k, skip)
            nbr_idx[row] = idx
            nbr_dist[row] = dist
        return nbr_idx, nbr_dist

    def _query_one(
        self, query: np.ndarray, k: int, skip: int
    ) -> tuple[np.ndarray, np.ndarray]:
        # Max-heap of (-distance^2, index) keeping the k best so far.
        heap: list[tuple[float, int]] = []

        def consider_leaf(indices: np.ndarray) -> None:
            diffs = self.points[indices] - query
            d2 = np.einsum("ij,ij->i", diffs, diffs)
            for idx, dist2 in zip(indices, d2):
                if idx == skip:
                    continue
                if len(heap) < k:
                    heapq.heappush(heap, (-dist2, int(idx)))
                elif -dist2 > heap[0][0]:
                    heapq.heapreplace(heap, (-dist2, int(idx)))

        def worst() -> float:
            return -heap[0][0] if len(heap) == k else np.inf

        def descend(node_id: int) -> None:
            node = self._nodes[node_id]
            if node.indices is not None:
                consider_leaf(node.indices)
                return
            diff = query[node.split_dim] - node.split_value
            near, far = (node.right, node.left) if diff >= 0 else (node.left, node.right)
            descend(near)
            # Only cross the plane if the hypersphere of the current worst
            # candidate intersects the far half-space.
            if diff * diff < worst():
                descend(far)

        descend(0)
        best = sorted(((-neg_d2, idx) for neg_d2, idx in heap))
        idx = np.fromiter((i for _, i in best), dtype=np.int64, count=len(best))
        dist = np.sqrt(np.fromiter((d for d, _ in best), dtype=np.float64, count=len(best)))
        return idx, dist
