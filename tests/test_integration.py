"""End-to-end integration tests across the whole library.

These exercise the full pipeline — dataset -> graph -> every ranker ->
metrics — and assert the cross-method relationships the paper's evaluation
depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EMRRanker,
    ExactRanker,
    FMRRanker,
    IterativeRanker,
    MogulRanker,
    build_knn_graph,
)
from repro.datasets import make_coil, make_nuswide
from repro.eval import p_at_k, rank_correlation, retrieval_precision


@pytest.fixture(scope="module")
def coil_setup():
    dataset = make_coil(n_objects=12, n_poses=24, seed=0)
    graph = dataset.build_graph(k=5)
    return dataset, graph


class TestCrossMethodConsistency:
    def test_all_methods_rank_same_graph(self, coil_setup):
        _, graph = coil_setup
        rankers = [
            ExactRanker(graph),
            IterativeRanker(graph),
            MogulRanker(graph),
            MogulRanker(graph, exact=True),
            EMRRanker(graph, n_anchors=30, seed=0),
            FMRRanker(graph, n_partitions=6, seed=0),
        ]
        query = 10
        for ranker in rankers:
            result = ranker.top_k(query, 5)
            assert len(result) == 5
            assert query not in result.indices
            assert np.all(np.diff(result.scores) <= 1e-12)

    def test_exact_family_agrees(self, coil_setup):
        """Inverse, tight Iterative and MogulE are all the same ranking."""
        _, graph = coil_setup
        exact = ExactRanker(graph)
        iterative = IterativeRanker(graph, tolerance=1e-12)
        mogul_e = MogulRanker(graph, exact=True)
        q = 3
        ref = exact.scores(q)
        np.testing.assert_allclose(iterative.scores(q), ref, atol=1e-8)
        np.testing.assert_allclose(mogul_e.scores(q), ref, atol=1e-9)

    def test_mogul_p_at_k_beats_low_anchor_emr(self, coil_setup):
        """The paper's headline accuracy claim (Figure 2): Mogul's answers
        match the exact ones better than EMR with few anchors."""
        _, graph = coil_setup
        exact = ExactRanker(graph)
        mogul = MogulRanker(graph)
        emr = EMRRanker(graph, n_anchors=10, seed=0)
        rng = np.random.default_rng(1)
        queries = rng.choice(graph.n_nodes, 12, replace=False)
        mogul_p, emr_p = [], []
        for q in queries:
            ref = exact.top_k(int(q), 5).indices
            mogul_p.append(p_at_k(mogul.top_k(int(q), 5).indices, ref))
            emr_p.append(p_at_k(emr.top_k(int(q), 5).indices, ref))
        assert np.mean(mogul_p) > np.mean(emr_p)
        assert np.mean(mogul_p) >= 0.7

    def test_mogul_retrieval_precision_high(self, coil_setup):
        """>90% semantic precision on the COIL substitute (Figure 3)."""
        dataset, graph = coil_setup
        mogul = MogulRanker(graph)
        rng = np.random.default_rng(2)
        queries = rng.choice(graph.n_nodes, 15, replace=False)
        precisions = [
            retrieval_precision(
                mogul.top_k(int(q), 5).indices,
                dataset.labels,
                int(dataset.labels[int(q)]),
            )
            for q in queries
        ]
        assert np.mean(precisions) >= 0.9

    def test_mogul_scores_correlate_with_exact(self, coil_setup):
        _, graph = coil_setup
        exact = ExactRanker(graph)
        mogul = MogulRanker(graph)
        # global Spearman over ALL nodes includes the mass of ~zero-score
        # nodes whose relative ranks are approximation noise; moderate
        # positive correlation plus the P@k test above is the meaningful
        # joint check.
        corr = rank_correlation(mogul.scores(5), exact.scores(5))
        assert corr > 0.5


class TestScalingBehaviour:
    def test_mogul_work_grows_sublinearly_with_pruning(self):
        """On clusterable data the number of *scored* nodes stays near the
        query's cluster size even as n grows — the practical sub-O(n)
        behaviour the paper highlights after Theorem 2."""
        scored_fractions = []
        for n_concepts, n_points in ((10, 600), (20, 1200), (40, 2400)):
            ds = make_nuswide(
                n_points=n_points, n_concepts=n_concepts, center_scale=12.0, seed=0
            )
            graph = ds.build_graph(k=5)
            ranker = MogulRanker(graph)
            ranker.top_k(0, 5)
            scored_fractions.append(ranker.last_stats.nodes_scored / n_points)
        # fraction of scored nodes must not grow with n
        assert scored_fractions[-1] <= scored_fractions[0] + 0.1

    def test_factor_nnz_linear_in_n(self):
        """O(n) memory (Theorem 3): factor nnz grows linearly, not
        quadratically."""
        nnz = []
        sizes = (400, 800, 1600)
        for n in sizes:
            ds = make_nuswide(n_points=n, n_concepts=10, seed=1)
            graph = ds.build_graph(k=5)
            ranker = MogulRanker(graph)
            nnz.append(ranker.index.factors.nnz)
        ratio_small = nnz[1] / nnz[0]
        ratio_large = nnz[2] / nnz[1]
        assert ratio_large < 3.0  # quadratic would give ~4x per doubling
        assert ratio_small < 3.0


class TestOutOfSampleIntegration:
    def test_oos_precision_on_coil(self, coil_setup):
        dataset, _ = coil_setup
        reduced, held_features, held_labels = dataset.holdout_split(10, seed=3)
        graph = build_knn_graph(reduced.features, k=5)
        mogul = MogulRanker(graph)
        emr = EMRRanker(graph, n_anchors=30, seed=0)
        mogul_prec, emr_prec = [], []
        for feature, label in zip(held_features, held_labels):
            m = mogul.top_k_out_of_sample(feature, 5)
            e = emr.top_k_out_of_sample(feature, 5)
            mogul_prec.append(
                retrieval_precision(m.indices, reduced.labels, int(label))
            )
            emr_prec.append(
                retrieval_precision(e.indices, reduced.labels, int(label))
            )
        # The paper's out-of-sample claim is about *speed* (Figure 7:
        # Mogul up to 35x faster); both methods retrieve semantically
        # well here, so assert quality floors for each rather than a
        # margin between them.
        assert np.mean(mogul_prec) >= 0.8
        assert np.mean(emr_prec) >= 0.8


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None

    def test_quickstart_flow(self):
        """The README quickstart, verbatim in spirit."""
        rng = np.random.default_rng(0)
        features = np.vstack(
            [rng.normal(loc=c * 3, scale=0.5, size=(40, 16)) for c in range(3)]
        )
        graph = build_knn_graph(features, k=5)
        ranker = MogulRanker(graph)
        result = ranker.top_k(0, 10)
        assert len(result) == 10
        assert result.scores[0] >= result.scores[-1]
