"""Tests for the ranking problem definition and reference solvers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking import (
    ExactRanker,
    IterativeRanker,
    TopKResult,
    cost_function,
    query_vector,
    ranking_matrix,
    symmetric_normalize,
)
from repro.ranking.base import rank_scores
from tests.conftest import graph_from_adjacency, random_symmetric_adjacency


class TestNormalize:
    def test_spectral_radius_at_most_one(self):
        for seed in range(5):
            s = symmetric_normalize(random_symmetric_adjacency(20, seed=seed))
            eigvals = np.linalg.eigvalsh(s.toarray())
            assert np.max(np.abs(eigvals)) <= 1.0 + 1e-9

    def test_w_is_spd(self):
        for alpha in (0.5, 0.9, 0.99):
            w = ranking_matrix(random_symmetric_adjacency(25, seed=1), alpha)
            eigvals = np.linalg.eigvalsh(w.toarray())
            assert np.min(eigvals) > 0
            assert np.min(eigvals) >= (1 - alpha) - 1e-9
            assert np.max(eigvals) <= (1 + alpha) + 1e-9

    def test_isolated_nodes_zero_rows(self):
        adj = sp.lil_matrix((4, 4))
        adj[0, 1] = adj[1, 0] = 1.0
        s = symmetric_normalize(adj.tocsr())
        np.testing.assert_array_equal(s.toarray()[2], 0.0)
        np.testing.assert_array_equal(s.toarray()[3], 0.0)

    def test_symmetry_preserved(self):
        s = symmetric_normalize(random_symmetric_adjacency(15, seed=2))
        np.testing.assert_allclose(s.toarray(), s.toarray().T, atol=1e-12)

    def test_query_vector(self):
        q = query_vector(5, 2)
        assert q[2] == 1.0 and q.sum() == 1.0
        with pytest.raises(ValueError):
            query_vector(5, 5)
        with pytest.raises(ValueError):
            query_vector(5, -1)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            ranking_matrix(random_symmetric_adjacency(5, seed=0), 1.0)


class TestExactRanker:
    def test_closed_form(self):
        adj = random_symmetric_adjacency(20, seed=3)
        graph = graph_from_adjacency(adj)
        ranker = ExactRanker(graph, alpha=0.9)
        w = ranking_matrix(adj, 0.9).toarray()
        for q in (0, 7, 19):
            expected = 0.1 * np.linalg.solve(w, query_vector(20, q))
            np.testing.assert_allclose(ranker.scores(q), expected, atol=1e-10)

    def test_all_methods_agree(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(15, seed=4))
        a = ExactRanker(graph, method="inverse")
        b = ExactRanker(graph, method="factorized")
        c = ExactRanker(graph, method="per_query_inverse")
        np.testing.assert_allclose(a.scores(3), b.scores(3), atol=1e-10)
        np.testing.assert_allclose(a.scores(3), c.scores(3), atol=1e-10)
        q = np.zeros(15)
        q[3] = 1.0
        np.testing.assert_allclose(
            c.scores_for_vector(q), a.scores_for_vector(q), atol=1e-10
        )

    def test_scores_nonnegative(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(20, seed=5))
        scores = ExactRanker(graph, alpha=0.99).scores(0)
        assert np.all(scores >= -1e-12)

    def test_query_has_top_score_at_moderate_alpha(self):
        """For small alpha the fitting constraint dominates and the query
        itself must score highest ((I - aS)^-1 ~ I + aS).  At alpha ~ 1
        hub nodes can legitimately overtake the query, so this is only
        asserted away from that regime."""
        graph = graph_from_adjacency(random_symmetric_adjacency(20, seed=6))
        scores = ExactRanker(graph, alpha=0.3).scores(4)
        assert np.argmax(scores) == 4

    def test_minimizes_cost_function(self):
        """The closed form is the unique minimiser of Eq. (1): random
        perturbations strictly increase the cost."""
        adj = random_symmetric_adjacency(15, seed=7)
        graph = graph_from_adjacency(adj)
        alpha = 0.8
        q = query_vector(15, 2)
        x_star = ExactRanker(graph, alpha=alpha).scores(2)
        base = cost_function(x_star, adj, alpha, q)
        rng = np.random.default_rng(0)
        for _ in range(10):
            perturbed = x_star + rng.normal(scale=0.01, size=15)
            assert cost_function(perturbed, adj, alpha, q) > base

    def test_memory_cap(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(30, seed=8))
        with pytest.raises(MemoryError):
            ExactRanker(graph, max_dense_nodes=10)

    def test_method_validation(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(10, seed=9))
        with pytest.raises(ValueError, match="method"):
            ExactRanker(graph, method="lu")

    def test_scores_for_vector_multi_seed(self):
        adj = random_symmetric_adjacency(12, seed=10)
        graph = graph_from_adjacency(adj)
        ranker = ExactRanker(graph, alpha=0.9)
        q = np.zeros(12)
        q[2] = 0.5
        q[5] = 0.5
        combined = ranker.scores_for_vector(q)
        # linearity of the solve
        expected = 0.5 * ranker.scores(2) + 0.5 * ranker.scores(5)
        np.testing.assert_allclose(combined, expected, atol=1e-10)

    def test_top_k_excludes_query_by_default(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(15, seed=11))
        ranker = ExactRanker(graph)
        result = ranker.top_k(3, 5)
        assert 3 not in result.indices
        # without exclusion the result is exactly the ranking of all scores
        result_incl = ranker.top_k(3, 5, exclude_query=False)
        expected = rank_scores(ranker.scores(3), 5)
        np.testing.assert_array_equal(result_incl.indices, expected.indices)


class TestIterativeRanker:
    def test_converges_to_exact(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(25, seed=12))
        exact = ExactRanker(graph, alpha=0.9)
        iterative = IterativeRanker(graph, alpha=0.9, tolerance=1e-12)
        np.testing.assert_allclose(iterative.scores(5), exact.scores(5), atol=1e-8)

    def test_looser_tolerance_fewer_iterations(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(25, seed=13))
        loose = IterativeRanker(graph, alpha=0.95, tolerance=1e-2)
        tight = IterativeRanker(graph, alpha=0.95, tolerance=1e-10)
        loose.scores(0)
        tight.scores(0)
        assert loose.last_iterations < tight.last_iterations

    def test_max_iterations_respected(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(25, seed=14))
        ranker = IterativeRanker(graph, alpha=0.99, tolerance=1e-30, max_iterations=3)
        ranker.scores(0)
        assert ranker.last_iterations == 3

    def test_validation(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(10, seed=15))
        with pytest.raises(ValueError):
            IterativeRanker(graph, tolerance=0.0)
        with pytest.raises(ValueError):
            IterativeRanker(graph, max_iterations=0)

    def test_query_bounds_checked(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(10, seed=16))
        ranker = IterativeRanker(graph)
        with pytest.raises(ValueError):
            ranker.scores(10)


class TestRankScores:
    def test_orders_descending(self):
        scores = np.array([0.1, 0.5, 0.3, 0.9])
        result = rank_scores(scores, 3)
        np.testing.assert_array_equal(result.indices, [3, 1, 2])
        np.testing.assert_allclose(result.scores, [0.9, 0.5, 0.3])

    def test_ties_broken_by_id(self):
        scores = np.array([0.5, 0.5, 0.5, 0.1])
        result = rank_scores(scores, 2)
        np.testing.assert_array_equal(result.indices, [0, 1])

    def test_exclude(self):
        scores = np.array([0.9, 0.5, 0.3])
        result = rank_scores(scores, 2, exclude=0)
        np.testing.assert_array_equal(result.indices, [1, 2])

    def test_k_larger_than_n(self):
        scores = np.array([0.2, 0.1])
        result = rank_scores(scores, 10)
        assert len(result) == 2

    def test_topk_result_validation(self):
        with pytest.raises(ValueError):
            TopKResult(indices=np.array([1, 2]), scores=np.array([0.1]))

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_topk_are_maximal(self, n, k, seed):
        scores = np.random.default_rng(seed).random(n)
        result = rank_scores(scores, k)
        k_eff = min(k, n)
        assert len(result) == k_eff
        cutoff = np.sort(scores)[::-1][k_eff - 1]
        assert np.all(result.scores >= cutoff - 1e-12)
