"""Golden serialization fixtures: committed artifacts, known answers.

Round-trip tests (save then load in the same process) cannot catch
format drift where the writer and reader change *together* — the
classic silent-corruption failure of persisted indexes.  These tests
load artifacts whose **bytes are committed to the repository**
(``tests/fixtures/``, regenerated only by a deliberate
``make_golden.py`` run alongside a format-version bump) and verify
known top-k answers against them.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.core.engine import engine_from_index
from repro.core.serialize import (
    FORMAT_VERSION,
    LIVE_STATE_VERSION,
    SHARDED_FORMAT_VERSION,
    load_any_index,
    load_live_state,
)
from repro.core.sharded import ShardedMogulIndex
from repro.graph.build import build_knn_graph

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


@pytest.fixture(scope="module")
def golden():
    with open(os.path.join(FIXTURES, "golden_answers.json")) as stream:
        return json.load(stream)


@pytest.fixture(scope="module")
def golden_graph(golden):
    features = np.load(os.path.join(FIXTURES, "golden_features.npy"))
    return build_knn_graph(features, k=golden["graph_k"])


def check_answers(ranker, documents) -> None:
    for document in documents:
        if document["query"] == "oos_mean":
            result = ranker.top_k_out_of_sample(
                ranker.graph.features.mean(axis=0), document["k"]
            )
        else:
            result = ranker.top_k(document["query"], document["k"])
        assert [int(i) for i in result.indices] == document["indices"], (
            f"query {document['query']}: indices drifted from the "
            f"committed golden answers"
        )
        np.testing.assert_allclose(
            result.scores, document["scores"], rtol=1e-9, atol=1e-12
        )


class TestGoldenVersionsPinned:
    """A format bump must come with regenerated fixtures (and vice versa)."""

    def test_versions_match_library(self, golden):
        assert golden["format_version"] == FORMAT_VERSION
        assert golden["sharded_format_version"] == SHARDED_FORMAT_VERSION
        assert golden["live_state_version"] == LIVE_STATE_VERSION


class TestGoldenFlat:
    def test_known_answers(self, golden, golden_graph):
        index = load_any_index(os.path.join(FIXTURES, "golden_flat.idx.npz"))
        ranker = engine_from_index(golden_graph, index)
        assert ranker.n_nodes == golden["n_nodes"]
        check_answers(ranker, golden["flat"])


class TestGoldenSharded:
    def test_known_answers(self, golden, golden_graph):
        index = load_any_index(os.path.join(FIXTURES, "golden_sharded"))
        assert isinstance(index, ShardedMogulIndex)
        assert index.n_shards == 2
        ranker = engine_from_index(golden_graph, index)
        check_answers(ranker, golden["sharded"])

    def test_flat_and_sharded_agree(self, golden):
        """The two committed artifacts describe the same database."""
        for a, b in zip(golden["flat"], golden["sharded"]):
            assert a["indices"] == b["indices"]
            np.testing.assert_allclose(a["scores"], b["scores"], rtol=0, atol=0)


class TestGoldenLiveState:
    def test_sidecar_restores(self, golden, golden_graph):
        path = os.path.join(FIXTURES, "golden_flat.idx.npz")
        state = load_live_state(path)
        assert state is not None
        expected = golden["live"]
        assert [int(g) for g in state.pending_ids] == expected["pending_ids"]
        assert [int(g) for g in state.tombstones] == expected["tombstones"]
        assert state.epoch == expected["epoch"]
        assert state.inserts == expected["inserts"]
        assert state.deletes == expected["deletes"]

        live = engine_from_index(
            golden_graph,
            load_any_index(path),
            live=True,
            live_kwargs=dict(k=golden["graph_k"]),
        )
        live.restore_mutable_state(state)
        assert live.n_pending == 1
        assert live.n_live == golden["n_nodes"]  # +1 pending, -1 tombstone
        # The tombstone holds and the pending point is answerable: it is
        # a near-duplicate of node 0, so it must surface for query 0.
        answer = live.top_k(0, 6)
        assert expected["tombstones"][0] not in answer.indices
        assert expected["pending_ids"][0] in answer.indices
