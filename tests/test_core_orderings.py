"""Tests for the within-cluster ordering options of build_permutation.

The paper orders nodes inside each cluster by ascending within-cluster
degree (§4.2.2, lines 8-17 of Algorithm 1); the alternatives exist for the
Figure 8 ablation.  Whatever the ordering, the structural invariants of the
permutation must hold — Mogul's correctness never depends on the ordering,
only its approximation quality and precompute speed do.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.core.permutation import WITHIN_ORDERS, build_permutation
from repro.ranking.base import rank_scores


def assert_valid_permutation(perm, n):
    np.testing.assert_array_equal(np.sort(perm.order), np.arange(n))
    np.testing.assert_array_equal(perm.order[perm.inverse], np.arange(n))
    assert perm.cluster_slices[-1].stop == n


class TestOrderings:
    @pytest.mark.parametrize("within_order", WITHIN_ORDERS)
    def test_valid_permutation(self, bridged_graph, within_order):
        perm = build_permutation(
            bridged_graph.adjacency, within_order=within_order
        )
        assert_valid_permutation(perm, bridged_graph.n_nodes)

    def test_default_is_degree_asc(self, bridged_graph):
        default = build_permutation(bridged_graph.adjacency)
        explicit = build_permutation(
            bridged_graph.adjacency, within_order="degree_asc"
        )
        np.testing.assert_array_equal(default.order, explicit.order)

    def test_degree_asc_actually_ascends(self, bridged_graph):
        perm = build_permutation(bridged_graph.adjacency)
        adjacency = bridged_graph.adjacency
        labels_of = perm.cluster_of_position
        for sl in perm.cluster_slices:
            members = perm.order[sl]
            if members.size < 2:
                continue
            # within-cluster degree under the final membership
            degrees = []
            for node in members:
                row = adjacency[int(node)]
                neighbors = row.indices
                cluster = labels_of[perm.inverse[int(node)]]
                degrees.append(
                    int(
                        np.sum(
                            labels_of[perm.inverse[neighbors]] == cluster
                        )
                    )
                )
            assert all(
                degrees[i] <= degrees[i + 1] for i in range(len(degrees) - 1)
            )

    def test_degree_desc_reverses_degree_sequence(self, bridged_graph):
        asc = build_permutation(bridged_graph.adjacency, within_order="degree_asc")
        desc = build_permutation(
            bridged_graph.adjacency, within_order="degree_desc"
        )
        # Same cluster boundary layout, different internal arrangement.
        assert [s.start for s in asc.cluster_slices] == [
            s.start for s in desc.cluster_slices
        ]

    def test_random_is_seed_deterministic(self, bridged_graph):
        a = build_permutation(bridged_graph.adjacency, within_order="random", seed=5)
        b = build_permutation(bridged_graph.adjacency, within_order="random", seed=5)
        c = build_permutation(bridged_graph.adjacency, within_order="random", seed=6)
        np.testing.assert_array_equal(a.order, b.order)
        assert not np.array_equal(a.order, c.order)

    def test_unknown_order_rejected(self, bridged_graph):
        with pytest.raises(ValueError, match="within_order"):
            build_permutation(bridged_graph.adjacency, within_order="bogus")


class TestSearchCorrectUnderAnyOrdering:
    @pytest.mark.parametrize("within_order", WITHIN_ORDERS)
    def test_answers_match_bruteforce(self, clustered_graph, within_order):
        """Algorithm 2 stays exact w.r.t. its own approximate scores no
        matter how nodes are arranged inside clusters."""
        from repro.core.index import MogulIndex
        from repro.core.search import top_k_search

        perm = build_permutation(
            clustered_graph.adjacency, within_order=within_order, seed=1
        )
        # Build the index around the custom permutation by reusing its
        # cluster labels (ordering inside clusters comes from `perm`).
        from repro.core.solver import ClusterSolver
        from repro.core.bounds import BoundsTable, precompute_cluster_bounds
        from repro.linalg.ldl import incomplete_ldl
        from repro.linalg.triangular import ldl_solve
        from repro.ranking.normalize import ranking_matrix

        w = perm.permute_matrix(ranking_matrix(clustered_graph.adjacency, 0.95))
        factors = incomplete_ldl(w)
        bounds = precompute_cluster_bounds(factors, perm)
        query = 17
        position = int(perm.inverse[query])
        q_vec = np.zeros(clustered_graph.n_nodes)
        q_vec[position] = 0.05
        full_permuted = ldl_solve(factors, q_vec)
        reference = rank_scores(
            full_permuted, 5, exclude=position
        )
        answers, _ = top_k_search(
            factors,
            perm,
            bounds,
            seed_positions=np.asarray([position]),
            seed_weights=np.asarray([0.05]),
            k=5,
            exclude_positions=(position,),
        )
        result_scores = np.asarray([score for _, score in answers])
        np.testing.assert_allclose(result_scores, reference.scores, atol=1e-12)
