"""Tests for the shared top-k ordering/merge utilities (repro.core.topk)."""

from __future__ import annotations

import numpy as np

from repro.core.topk import (
    dedupe_ranked,
    merge_answer_pairs,
    rank_order,
    sort_answer_pairs,
    sorted_result,
    truncate_result,
)
from repro.ranking.base import TopKResult


class TestCanonicalOrder:
    def test_score_desc_id_asc(self):
        ids = np.asarray([5, 1, 9, 3])
        scores = np.asarray([0.2, 0.9, 0.2, 0.9])
        order = rank_order(ids, scores)
        assert list(ids[order]) == [1, 3, 5, 9]

    def test_sorted_result(self):
        result = sorted_result([4, 2, 7], [0.1, 0.5, 0.5])
        assert list(result.indices) == [2, 7, 4]
        assert list(result.scores) == [0.5, 0.5, 0.1]

    def test_sort_answer_pairs(self):
        pairs = [(3, 0.5), (1, 0.5), (2, 0.9)]
        assert sort_answer_pairs(pairs) == [(2, 0.9), (1, 0.5), (3, 0.5)]


class TestMerge:
    def test_merges_disjoint_lists(self):
        merged = merge_answer_pairs(
            [[(0, 0.9), (4, 0.1)], [(2, 0.5)], [(7, 0.9)]], 3
        )
        assert merged == [(0, 0.9), (7, 0.9), (2, 0.5)]

    def test_short_inputs(self):
        assert merge_answer_pairs([[], [(1, 0.3)]], 5) == [(1, 0.3)]
        assert merge_answer_pairs([], 5) == []


class TestTruncate:
    def test_prefix(self):
        result = TopKResult(
            indices=np.asarray([1, 2, 3]), scores=np.asarray([0.9, 0.5, 0.1])
        )
        cut = truncate_result(result, 2)
        assert list(cut.indices) == [1, 2]

    def test_noop_when_short(self):
        result = TopKResult(
            indices=np.asarray([1]), scores=np.asarray([0.9])
        )
        assert truncate_result(result, 5) is result


class TestDedupe:
    def test_higher_score_wins(self):
        result = dedupe_ranked(
            np.asarray([3, 5, 3]), np.asarray([0.2, 0.4, 0.8])
        )
        assert list(result.indices) == [3, 5]
        assert list(result.scores) == [0.8, 0.4]
