"""Tests for the LDL^T factorizations (incomplete and complete).

Key invariants (see repro.linalg.ldl):

* complete_ldl reconstructs W exactly — it is Modified Cholesky;
* incomplete_ldl matches W *on W's own sparsity pattern* and keeps
  exactly that pattern in the factor;
* on a tree ordered leaves-first there is no fill-in, so both variants
  coincide and the incomplete factorization is exact;
* pivots remain positive without perturbation for W = I - alpha*S.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import complete_ldl, incomplete_ldl, ldl_solve
from repro.ranking.normalize import ranking_matrix
from tests.conftest import random_symmetric_adjacency


def _ranking_w(n: int, seed: int, alpha: float = 0.9) -> sp.csr_matrix:
    return ranking_matrix(random_symmetric_adjacency(n, seed=seed), alpha)


class TestCompleteLDL:
    @pytest.mark.parametrize("n,seed", [(5, 0), (20, 1), (60, 2)])
    def test_reconstructs_exactly(self, n, seed):
        w = _ranking_w(n, seed)
        factors = complete_ldl(w)
        np.testing.assert_allclose(
            factors.reconstruct().toarray(), w.toarray(), atol=1e-10
        )

    def test_solve_matches_dense(self):
        w = _ranking_w(30, 3)
        factors = complete_ldl(w)
        b = np.random.default_rng(0).random(30)
        expected = np.linalg.solve(w.toarray(), b)
        np.testing.assert_allclose(ldl_solve(factors, b), expected, atol=1e-9)

    def test_no_pivot_perturbations_on_spd(self):
        factors = complete_ldl(_ranking_w(40, 4, alpha=0.99))
        assert factors.pivot_perturbations == 0

    def test_fill_in_superset_of_pattern(self):
        w = _ranking_w(40, 5)
        inc = incomplete_ldl(w)
        com = complete_ldl(w)
        assert com.nnz >= inc.nnz
        # every incomplete entry position appears in the complete factor
        inc_pattern = set(zip(*inc.lower.nonzero()))
        com_pattern = set(zip(*com.lower.nonzero()))
        missing = {
            pos for pos in inc_pattern - com_pattern
            # positions may vanish from the complete factor only by exact
            # numerical cancellation, which does not occur for these W
        }
        assert not missing

    def test_dense_input_accepted(self):
        w = _ranking_w(10, 6).toarray()
        factors = complete_ldl(w)
        np.testing.assert_allclose(factors.reconstruct().toarray(), w, atol=1e-10)

    def test_diagonal_matrix(self):
        w = sp.diags([2.0, 3.0, 4.0]).tocsr()
        factors = complete_ldl(w)
        assert factors.nnz == 0
        np.testing.assert_allclose(factors.diag, [2.0, 3.0, 4.0])

    def test_upper_is_transpose_of_lower(self):
        factors = complete_ldl(_ranking_w(25, 7))
        np.testing.assert_allclose(
            factors.upper.toarray(), factors.lower.T.toarray(), atol=0
        )


class TestIncompleteLDL:
    def test_same_pattern_as_w(self):
        w = _ranking_w(40, 8)
        factors = incomplete_ldl(w)
        w_lower = sp.tril(w, k=-1).tocsr()
        assert set(zip(*factors.lower.nonzero())) <= set(zip(*w_lower.nonzero()))

    def test_matches_w_on_pattern(self):
        """IC(0) residual W - LDL^T vanishes on W's pattern positions."""
        w = _ranking_w(50, 9)
        factors = incomplete_ldl(w)
        residual = (factors.reconstruct() - w).toarray()
        coo = sp.tril(w, k=-1).tocoo()
        np.testing.assert_allclose(residual[coo.row, coo.col], 0.0, atol=1e-10)
        np.testing.assert_allclose(np.diag(residual), 0.0, atol=1e-10)

    def test_exact_on_leaf_first_tree(self):
        """On a tree with children ordered before parents there is no
        fill-in, so Incomplete Cholesky is exact (the paper's accuracy
        argument in the manifold limit)."""
        import networkx as nx

        tree = nx.random_labeled_tree(30, seed=1)
        adj = nx.to_scipy_sparse_array(tree, format="csr").astype(float)
        rng = np.random.default_rng(2)
        adj.data = rng.random(adj.nnz) * 0.5 + 0.5
        adj = ((adj + adj.T) / 2).tocsr()
        order = list(nx.bfs_tree(tree, 0).nodes())[::-1]
        perm = sp.csr_matrix(
            (np.ones(30), (np.arange(30), order)), shape=(30, 30)
        )
        w = (perm @ ranking_matrix(adj, 0.9) @ perm.T).tocsr()
        inc = incomplete_ldl(w)
        np.testing.assert_allclose(inc.reconstruct().toarray(), w.toarray(), atol=1e-10)

    def test_no_pivot_perturbations_on_knn_like(self):
        factors = incomplete_ldl(_ranking_w(60, 10, alpha=0.99))
        assert factors.pivot_perturbations == 0

    def test_pivot_guard_counts(self):
        """A matrix engineered to break IC(0) triggers the guard instead of
        dividing by ~0 or producing negative pivots silently."""
        dense = np.array(
            [
                [1.0, 0.99, 0.99, 0.0],
                [0.99, 1.0, 0.0, 0.99],
                [0.99, 0.0, 1.0, 0.99],
                [0.0, 0.99, 0.99, 1.0],
            ]
        )
        factors = incomplete_ldl(sp.csr_matrix(dense))
        assert np.all(factors.diag > 0)

    def test_identity(self):
        factors = incomplete_ldl(sp.identity(5, format="csr"))
        assert factors.nnz == 0
        np.testing.assert_allclose(factors.diag, np.ones(5))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            incomplete_ldl(sp.csr_matrix(np.ones((2, 3))))

    def test_nnz_reported(self):
        w = _ranking_w(30, 11)
        factors = incomplete_ldl(w)
        assert factors.nnz == sp.tril(w, k=-1).nnz


class TestLDLProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
        alpha=st.floats(min_value=0.05, max_value=0.99),
    )
    def test_complete_always_reconstructs(self, n, seed, alpha):
        w = ranking_matrix(random_symmetric_adjacency(n, seed=seed), alpha)
        factors = complete_ldl(w)
        np.testing.assert_allclose(
            factors.reconstruct().toarray(), w.toarray(), atol=1e-8
        )
        assert factors.pivot_perturbations == 0

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=25),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_incomplete_pattern_and_diagonal(self, n, seed):
        w = ranking_matrix(random_symmetric_adjacency(n, seed=seed), 0.9)
        factors = incomplete_ldl(w)
        # pattern containment
        w_lower = sp.tril(w, k=-1).tocsr()
        assert set(zip(*factors.lower.nonzero())) <= set(zip(*w_lower.nonzero()))
        # positive pivots on SPD input
        assert np.all(factors.diag > 0)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_solve_roundtrip(self, n, seed):
        w = ranking_matrix(random_symmetric_adjacency(n, seed=seed), 0.8)
        factors = complete_ldl(w)
        b = np.random.default_rng(seed).random(n)
        x = ldl_solve(factors, b)
        np.testing.assert_allclose(w @ x, b, atol=1e-8)
