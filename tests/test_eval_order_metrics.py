"""Tests for the order-aware retrieval metrics (NDCG@k, reciprocal rank)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import ndcg_at_k, reciprocal_rank

LABELS = np.asarray([0, 0, 0, 1, 1, 2, 2, 2, 2, 3])


class TestNdcg:
    def test_perfect_ranking_is_one(self):
        retrieved = np.asarray([0, 1, 2])  # all label 0, all relevant
        assert ndcg_at_k(retrieved, LABELS, query_label=0) == pytest.approx(1.0)

    def test_no_relevant_is_zero(self):
        retrieved = np.asarray([3, 4, 5])
        assert ndcg_at_k(retrieved, LABELS, query_label=0) == 0.0

    def test_relevant_first_beats_relevant_last(self):
        first = ndcg_at_k(np.asarray([0, 3, 4]), LABELS, query_label=0)
        last = ndcg_at_k(np.asarray([3, 4, 0]), LABELS, query_label=0)
        assert first > last > 0.0

    def test_k_truncation(self):
        retrieved = np.asarray([3, 4, 0])
        assert ndcg_at_k(retrieved, LABELS, query_label=0, k=2) == 0.0
        assert ndcg_at_k(retrieved, LABELS, query_label=0, k=3) > 0.0

    def test_ideal_shorter_than_list(self):
        """Only one relevant item exists (label 3): retrieving it first
        among k=3 is a perfect ranking."""
        retrieved = np.asarray([9, 0, 1])
        assert ndcg_at_k(retrieved, LABELS, query_label=3) == pytest.approx(1.0)

    def test_empty_retrieved(self):
        assert ndcg_at_k(np.asarray([], dtype=int), LABELS, 0) == 0.0

    @settings(deadline=None, max_examples=50)
    @given(
        permutation_seed=st.integers(min_value=0, max_value=10_000),
        label=st.integers(min_value=0, max_value=3),
    )
    def test_bounded_in_unit_interval(self, permutation_seed, label):
        rng = np.random.default_rng(permutation_seed)
        retrieved = rng.permutation(LABELS.shape[0])[:5]
        value = ndcg_at_k(retrieved, LABELS, query_label=label)
        assert 0.0 <= value <= 1.0


class TestReciprocalRank:
    def test_first_position(self):
        assert reciprocal_rank(np.asarray([0, 3, 4]), LABELS, 0) == 1.0

    def test_second_position(self):
        assert reciprocal_rank(np.asarray([3, 0, 4]), LABELS, 0) == 0.5

    def test_no_relevant(self):
        assert reciprocal_rank(np.asarray([3, 4]), LABELS, 0) == 0.0

    def test_empty(self):
        assert reciprocal_rank(np.asarray([], dtype=int), LABELS, 0) == 0.0

    @settings(deadline=None, max_examples=50)
    @given(permutation_seed=st.integers(min_value=0, max_value=10_000))
    def test_matches_manual_scan(self, permutation_seed):
        rng = np.random.default_rng(permutation_seed)
        retrieved = rng.permutation(LABELS.shape[0])[:6]
        value = reciprocal_rank(retrieved, LABELS, query_label=2)
        manual = 0.0
        for position, node in enumerate(retrieved, start=1):
            if LABELS[node] == 2:
                manual = 1.0 / position
                break
        assert value == pytest.approx(manual)
