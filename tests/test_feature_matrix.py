"""Cross-feature integration tests: the extension features composed.

Each extension (serialization, fill levels, multi-seed, multi-probe,
exact variant, dynamic layer) is tested in isolation elsewhere; this
module guards the *combinations* a real deployment would hit — e.g.
"save a fill-level index, load it, run a multi-seed query on it".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicMogulRanker
from repro.core.index import MogulIndex, MogulRanker
from repro.graph.build import build_knn_graph
from tests.conftest import three_cluster_features


@pytest.fixture(scope="module")
def graph():
    features, _ = three_cluster_features(per_cluster=40)
    return build_knn_graph(features, k=5)


class TestSerializationCompositions:
    def test_fill_level_index_round_trips(self, graph, tmp_path):
        original = MogulRanker(graph, alpha=0.95, fill_level=2)
        path = tmp_path / "filled.idx.npz"
        original.index.save(path)
        restored = MogulRanker.from_index(graph, MogulIndex.load(path))
        assert restored.index.factors.nnz == original.index.factors.nnz
        for query in (0, 60, 110):
            a = original.top_k(query, 6)
            b = restored.top_k(query, 6)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.scores, b.scores, atol=0)

    def test_loaded_index_serves_multi_seed(self, graph, tmp_path):
        original = MogulRanker(graph, alpha=0.95)
        path = tmp_path / "index.npz"
        original.index.save(path)
        restored = MogulRanker.from_index(graph, MogulIndex.load(path))
        seeds = np.asarray([2, 45, 100])
        a = original.top_k_multi(seeds, 5)
        b = restored.top_k_multi(seeds, 5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_loaded_index_serves_multi_probe_oos(self, graph, tmp_path):
        original = MogulRanker(graph, alpha=0.95)
        path = tmp_path / "index.npz"
        original.index.save(path)
        restored = MogulRanker.from_index(graph, MogulIndex.load(path))
        feature = graph.features.mean(axis=0)
        a = original.top_k_out_of_sample(feature, 5, n_probe=2)
        b = restored.top_k_out_of_sample(feature, 5, n_probe=2)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_diagnostics_on_loaded_index(self, graph, tmp_path):
        from repro.core.diagnostics import diagnose_index

        original = MogulRanker(graph, alpha=0.95)
        path = tmp_path / "index.npz"
        original.index.save(path)
        loaded_report = diagnose_index(MogulIndex.load(path))
        fresh_report = diagnose_index(original.index)
        assert loaded_report.factor_nnz == fresh_report.factor_nnz
        assert loaded_report.saturated_bounds == fresh_report.saturated_bounds


class TestExactCompositions:
    def test_exact_multi_seed_matches_exact_ranker(self, graph):
        from repro.ranking.exact import ExactRanker

        mogul_e = MogulRanker(graph, alpha=0.95, exact=True)
        oracle = ExactRanker(graph, alpha=0.95)
        seeds = np.asarray([7, 77])
        a = mogul_e.top_k_multi(seeds, 6)
        b = oracle.top_k_multi(seeds, 6)
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-9)

    def test_exact_out_of_sample_multi_probe(self, graph):
        mogul_e = MogulRanker(graph, alpha=0.95, exact=True)
        feature = graph.features[10] + 0.02
        result = mogul_e.top_k_out_of_sample(feature, 5, n_probe=3)
        assert len(result) == 5

    def test_fill_level_bounded_by_exact(self, graph):
        """nnz ordering: ICF <= ICF(p) <= complete."""
        plain = MogulRanker(graph, alpha=0.95)
        filled = MogulRanker(graph, alpha=0.95, fill_level=3)
        exact = MogulRanker(graph, alpha=0.95, exact=True)
        assert (
            plain.index.factors.nnz
            <= filled.index.factors.nnz
            <= exact.index.factors.nnz
        )


class TestDynamicCompositions:
    def test_dynamic_with_exact_base(self):
        features, labels = three_cluster_features(per_cluster=25)
        database = DynamicMogulRanker(
            features, alpha=0.95, exact=True, auto_rebuild_fraction=None
        )
        new_id = database.add(features[labels == 1].mean(axis=0))
        result = database.top_k(30, 10)
        assert new_id in result.indices.tolist() or len(result) == 10

    def test_dynamic_rebuild_then_remove_then_query(self):
        features, _ = three_cluster_features(per_cluster=25)
        database = DynamicMogulRanker(features, alpha=0.95, auto_rebuild_fraction=None)
        added = [database.add(features[i] + 0.01) for i in range(6)]
        database.rebuild()
        database.remove(added[0])
        database.remove(3)
        result = database.top_k(added[1], 15)
        answers = set(result.indices.tolist())
        assert added[0] not in answers
        assert 3 not in answers

    def test_dynamic_out_of_sample_with_pending(self):
        features, labels = three_cluster_features(per_cluster=25)
        database = DynamicMogulRanker(features, alpha=0.95, auto_rebuild_fraction=None)
        center = features[labels == 0].mean(axis=0)
        new_id = database.add(center + 0.01)
        result = database.top_k_out_of_sample(center, 10)
        assert new_id in result.indices.tolist()


class TestSearchSwitchCompositions:
    @pytest.mark.parametrize("fill_level", [0, 2])
    @pytest.mark.parametrize("cluster_order", ["index", "bound_desc"])
    def test_all_switch_combinations_agree(self, graph, fill_level, cluster_order):
        baseline = MogulRanker(graph, alpha=0.95, fill_level=fill_level)
        variant = MogulRanker(
            graph,
            alpha=0.95,
            fill_level=fill_level,
            cluster_order=cluster_order,
            use_pruning=False,
        )
        for query in (5, 55):
            a = baseline.top_k(query, 5)
            b = variant.top_k(query, 5)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)
