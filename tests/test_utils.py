"""Tests for repro.utils: rng plumbing, validation, timing."""

from __future__ import annotations

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils import (
    Timer,
    as_rng,
    check_alpha,
    check_positive_int,
    check_probability,
    check_square,
    check_symmetric,
    check_vector,
    spawn_rngs,
    time_call,
)


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_different_seeds_differ(self):
        assert not np.allclose(as_rng(1).random(8), as_rng(2).random(8))


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_streams_are_independent(self):
        rngs = spawn_rngs(0, 2)
        assert not np.allclose(rngs[0].random(8), rngs[1].random(8))

    def test_deterministic_under_seed(self):
        a = [g.random(3) for g in spawn_rngs(5, 3)]
        b = [g.random(3) for g in spawn_rngs(5, 3)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)


class TestValidation:
    def test_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_positive_int_accepts_numpy(self):
        assert check_positive_int(np.int64(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1])
    def test_positive_int_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(bad, "x")

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_positive_int_rejects_wrong_type(self, bad):
        with pytest.raises(TypeError):
            check_positive_int(bad, "x")

    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.2, "p")

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_alpha_open_interval(self, bad):
        with pytest.raises(ValueError, match="alpha"):
            check_alpha(bad)

    def test_alpha_accepts_interior(self):
        assert check_alpha(0.99) == 0.99

    def test_vector_shape(self):
        v = check_vector([1, 2, 3], "v", size=3)
        assert v.dtype == np.float64
        with pytest.raises(ValueError, match="length"):
            check_vector([1, 2], "v", size=3)
        with pytest.raises(ValueError, match="1-D"):
            check_vector(np.zeros((2, 2)), "v")

    def test_square(self):
        check_square(np.zeros((3, 3)), "m")
        with pytest.raises(ValueError, match="square"):
            check_square(np.zeros((2, 3)), "m")

    def test_symmetric_dense_and_sparse(self):
        m = np.array([[0.0, 1.0], [1.0, 0.0]])
        check_symmetric(m, "m")
        check_symmetric(sp.csr_matrix(m), "m")
        m[0, 1] = 2.0
        with pytest.raises(ValueError, match="symmetric"):
            check_symmetric(m, "m")

    def test_symmetric_tolerance(self):
        m = np.array([[0.0, 1.0], [1.0 + 1e-12, 0.0]])
        check_symmetric(m, "m", tol=1e-10)  # within tol
        with pytest.raises(ValueError):
            check_symmetric(m, "m", tol=1e-14)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.02
        assert len(t.laps) == 2
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and not t.laps and t.mean == 0.0

    def test_time_call_returns_result(self):
        result, seconds = time_call(lambda a, b: a + b, 2, b=3, repeats=2)
        assert result == 5
        assert seconds >= 0.0

    def test_time_call_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)
