"""End-to-end observability tests: tracing, /debug/slow, Prometheus.

Real HTTP over a real socket, like test_service_server.py — these tests
exercise the three observability surfaces the PR adds: the inline
``?debug=trace`` span tree (and the ``X-Repro-Trace-Id`` header on every
traced response), the slow-query flight recorder at ``/debug/slow``, and
the Prometheus text exposition at ``/metrics?format=prometheus``.
"""

from __future__ import annotations

import pytest

from repro.core.index import MogulRanker
from repro.core.spectral import SpectralEngine, SpectralIndex
from repro.core.tiered import TieredEngine
from repro.service.client import RetrievalClient
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.timeout(120)


def span_names(tree: dict) -> set[str]:
    names = {tree["name"]}
    for child in tree.get("children", ()):
        names |= span_names(child)
    return names


def find_spans(tree: dict, name: str) -> list[dict]:
    found = [tree] if tree["name"] == name else []
    for child in tree.get("children", ()):
        found.extend(find_spans(child, name))
    return found


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


@pytest.fixture(scope="module")
def background(ranker):
    with BackgroundServer(
        ranker, port=0, max_batch_size=16, max_wait_ms=1.0, cache_capacity=64
    ) as server:
        yield server


@pytest.fixture()
def client(background):
    with RetrievalClient(port=background.port) as connection:
        yield connection


class TestInlineTrace:
    def test_debug_trace_returns_span_tree(self, client):
        payload = client.search(5, k=4, debug_trace=True)
        assert payload["indices"]  # tracing must not change the answer
        trace = payload["trace"]
        assert trace["trace_id"] == payload["trace_id"]
        assert trace["duration_ms"] > 0
        names = span_names(trace["root"])
        assert {"search", "scheduler.wait", "engine.dispatch"} <= names
        # The flat engine solves through the three-stage exact path.
        assert "solve.seed_forward" in names
        for stage in ("scheduler.wait", "engine.dispatch"):
            (node,) = find_spans(trace["root"], stage)
            assert node["duration_ms"] >= 0.0
        (dispatch,) = find_spans(trace["root"], "engine.dispatch")
        assert dispatch["meta"]["lane"].startswith("node")
        assert dispatch["meta"]["batch_size"] >= 1

    def test_trace_id_header_on_every_traced_response(self, client):
        status, headers, _ = client._raw(
            "POST", "/search", {"query": 6, "k": 3}
        )
        assert status == 200
        assert len(headers["X-Repro-Trace-Id"]) == 16

    def test_untraced_response_has_no_trace_payload(self, client):
        payload = client.search(7, k=3)
        assert "trace" not in payload
        assert "trace_id" in payload  # id still travels for correlation

    def test_cache_hit_traced_without_engine_dispatch(self, client):
        client.search(23, k=5)
        warm = client.search(23, k=5, debug_trace=True)
        assert warm["cached"]
        names = span_names(warm["trace"]["root"])
        assert "cache.hit" in names
        assert "engine.dispatch" not in names

    def test_search_oos_traced(self, client, ranker):
        feature = ranker.graph.features.mean(axis=0)
        vector = [float(v) for v in feature]
        status, _, text = client._raw(
            "POST", "/search_oos?debug=trace", {"feature": vector, "k": 3}
        )
        import json

        assert status == 200
        payload = json.loads(text)
        names = span_names(payload["trace"]["root"])
        assert {"search_oos", "scheduler.wait", "engine.dispatch"} <= names

    def test_traces_feed_stage_histograms(self, client):
        client.search(9, k=4)
        stages = client.metrics()["stages"]
        assert "scheduler.wait" in stages
        assert "engine.dispatch" in stages
        assert stages["engine.dispatch"]["count"] >= 1


class TestSlowlog:
    def test_debug_slow_retains_traces(self, client):
        client.search(31, k=4)
        document = client.slowlog()
        assert document["slowlog"]["tracing"]
        assert document["slowlog"]["policy"] == "slowest"
        assert document["slowlog"]["retained"] >= 1
        entries = document["entries"]
        assert entries
        latencies = [entry["latency_ms"] for entry in entries]
        assert latencies == sorted(latencies, reverse=True)
        slowest = entries[0]
        assert slowest["endpoint"] in {"search", "search_oos"}
        assert len(slowest["trace_id"]) == 16
        assert "scheduler.wait" in span_names(slowest["trace"]["root"])

    def test_metrics_snapshot_reports_slowlog(self, client):
        snapshot = client.metrics()
        assert snapshot["tracing"]
        assert snapshot["slowlog"]["capacity"] == 32


class TestPrometheusEndpoint:
    def test_content_type_and_families(self, background, client):
        client.search(3, k=4)
        status, headers, text = client._raw("GET", "/metrics?format=prometheus")
        assert status == 200
        assert (
            headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        )
        for family in (
            "repro_uptime_seconds",
            "repro_requests_total",
            "repro_queue_depth",
            "repro_cache_hits_total",
            "repro_request_latency_seconds_bucket",
            "repro_stage_duration_seconds_bucket",
            "repro_slowlog_recorded_total",
        ):
            assert family in text, family
        # Parse every sample line: `name{labels} value`.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)  # must not raise

    def test_bucket_series_cumulative(self, client):
        client.search(4, k=4)
        text = client.prometheus_metrics()
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
            and 'endpoint="search"' in line
        ]
        assert counts and counts == sorted(counts)

    def test_unknown_format_400(self, client):
        status, _, _ = client._raw("GET", "/metrics?format=xml")
        assert status == 400

    def test_json_format_still_default(self, client):
        assert "requests_total" in client.metrics()
        status, _, _ = client._raw("GET", "/metrics?format=json")
        assert status == 200


class TestTracingDisabled:
    @pytest.fixture(scope="class")
    def untraced_background(self, ranker):
        with BackgroundServer(
            ranker, port=0, max_wait_ms=1.0, tracing=False
        ) as server:
            yield server

    @pytest.fixture()
    def untraced_client(self, untraced_background):
        with RetrievalClient(port=untraced_background.port) as connection:
            yield connection

    def test_answers_identical_without_tracing(self, untraced_client, ranker):
        payload = untraced_client.search(5, k=4)
        direct = ranker.top_k(5, 4)
        assert payload["indices"] == [int(node) for node in direct.indices]
        assert "trace_id" not in payload

    def test_no_trace_header_or_inline_tree(self, untraced_client):
        status, headers, _ = untraced_client._raw(
            "POST", "/search?debug=trace", {"query": 5, "k": 4}
        )
        assert status == 200
        assert "X-Repro-Trace-Id" not in headers

    def test_slowlog_empty_and_flagged(self, untraced_client):
        untraced_client.search(8, k=3)
        document = untraced_client.slowlog()
        assert not document["slowlog"]["tracing"]
        assert document["entries"] == []

    def test_prometheus_still_served(self, untraced_client):
        text = untraced_client.prometheus_metrics()
        assert "repro_requests_total" in text


class TestTieredTracing:
    @pytest.fixture(scope="class")
    def tiered_background(self, bridged_graph):
        base = MogulRanker(bridged_graph)
        spectral = SpectralEngine.from_index(
            bridged_graph, SpectralIndex.build(bridged_graph, rank=16)
        )
        with BackgroundServer(
            TieredEngine(base, spectral), port=0, max_wait_ms=1.0
        ) as server:
            yield server

    @pytest.fixture()
    def tiered_client(self, tiered_background):
        with RetrievalClient(port=tiered_background.port) as connection:
            yield connection

    def test_tiered_search_has_nominate_and_rerank_spans(self, tiered_client):
        import json

        status, _, text = tiered_client._raw(
            "POST",
            "/search?debug=trace",
            {"query": 3, "k": 5, "accuracy": "fast"},
        )
        assert status == 200
        payload = json.loads(text)
        root = payload["trace"]["root"]
        names = span_names(root)
        assert {"tier.nominate", "tier.rerank"} <= names
        (nominate,) = find_spans(root, "tier.nominate")
        (rerank,) = find_spans(root, "tier.rerank")
        assert nominate["duration_ms"] > 0
        assert rerank["duration_ms"] > 0
        assert nominate["meta"]["accuracy"] == "fast"
        assert nominate["meta"]["candidates"] >= 5

    def test_exact_dial_traces_exact_tier(self, tiered_client):
        import json

        status, _, text = tiered_client._raw(
            "POST",
            "/search?debug=trace",
            {"query": 4, "k": 5, "accuracy": "exact"},
        )
        assert status == 200
        payload = json.loads(text)
        names = span_names(payload["trace"]["root"])
        assert "tier.exact" in names
        assert "tier.nominate" not in names

    def test_tier_counters_exposed_in_prometheus(self, tiered_client):
        tiered_client._raw(
            "POST", "/search", {"query": 6, "k": 5, "accuracy": "fast"}
        )
        text = tiered_client.prometheus_metrics()
        assert 'repro_tier_queries_total{accuracy="fast"}' in text
        assert (
            'repro_tier_seconds_total{accuracy="fast",tier="spectral"}' in text
        )


class TestBatchSharedEngineSpan:
    def test_coalesced_requests_share_one_dispatch_span(self, background):
        """Concurrent traced requests coalesced into one batch each see
        the same engine.dispatch subtree with batch_size > 1."""
        import threading

        results = []
        barrier = threading.Barrier(4)

        def one_request(query):
            with RetrievalClient(port=background.port) as connection:
                barrier.wait()
                results.append(
                    connection.search(query, k=3, debug_trace=True)
                )

        threads = [
            threading.Thread(target=one_request, args=(40 + i,))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 4
        batch_sizes = []
        for payload in results:
            (dispatch,) = find_spans(
                payload["trace"]["root"], "engine.dispatch"
            )
            batch_sizes.append(dispatch["meta"]["batch_size"])
            (wait,) = find_spans(payload["trace"]["root"], "scheduler.wait")
            assert wait["meta"]["batch_size"] == dispatch["meta"]["batch_size"]
        # At least the batching machinery ran; with 4 simultaneous
        # arrivals and a 1 ms window, usually some coalescing happens —
        # but the invariant we assert is consistency, not luck.
        assert all(size >= 1 for size in batch_sizes)
