"""Tests for out-of-sample queries (paper §4.6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.core.out_of_sample import build_query_seeds, nearest_cluster
from repro.eval.metrics import p_at_k


class TestNearestCluster:
    def test_picks_closest_mean(self):
        means = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        assert nearest_cluster(np.array([9.0, 1.0]), means) == 1
        assert nearest_cluster(np.array([0.5, 0.5]), means) == 0
        assert nearest_cluster(np.array([1.0, 11.0]), means) == 2


class TestBuildQuerySeeds:
    def test_seeds_come_from_nearest_cluster(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        index = ranker.index
        feature = clustered_graph.features[0] + 0.01
        seeds = build_query_seeds(
            feature,
            index.cluster_means,
            index.cluster_members,
            clustered_graph.features,
            n_neighbors=3,
            sigma=clustered_graph.sigma,
        )
        members = set(index.cluster_members[seeds.cluster].tolist())
        assert set(seeds.nodes.tolist()) <= members
        assert seeds.weights.shape == seeds.nodes.shape

    def test_weights_normalised(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        index = ranker.index
        seeds = build_query_seeds(
            clustered_graph.features[5],
            index.cluster_means,
            index.cluster_members,
            clustered_graph.features,
            n_neighbors=4,
            sigma=clustered_graph.sigma,
        )
        assert seeds.weights.sum() == pytest.approx(1.0)
        assert np.all(seeds.weights > 0)

    def test_uniform_fallback_without_sigma(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        index = ranker.index
        seeds = build_query_seeds(
            clustered_graph.features[5],
            index.cluster_means,
            index.cluster_members,
            clustered_graph.features,
            n_neighbors=3,
            sigma=0.0,
        )
        np.testing.assert_allclose(seeds.weights, 1.0 / 3.0)

    def test_neighbor_count_clamped_to_cluster_size(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        index = ranker.index
        seeds = build_query_seeds(
            clustered_graph.features[5],
            index.cluster_means,
            index.cluster_members,
            clustered_graph.features,
            n_neighbors=10_000,
            sigma=1.0,
        )
        assert seeds.nodes.size <= max(m.size for m in index.cluster_members)


class TestMultiProbe:
    def test_nearest_clusters_ordering(self):
        from repro.core.out_of_sample import nearest_clusters

        means = np.asarray([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        feature = np.asarray([0.9, 0.0])
        probed = nearest_clusters(feature, means, 2)
        np.testing.assert_array_equal(probed, [1, 0])

    def test_nearest_clusters_clamped(self):
        from repro.core.out_of_sample import nearest_clusters

        means = np.asarray([[0.0], [1.0]])
        assert nearest_clusters(np.asarray([0.2]), means, 10).shape == (2,)

    def test_probe_widens_candidate_pool(self, clustered_graph):
        """A query exactly between two cluster means must reach members of
        both clusters when probed with n_probe=2."""
        from repro.core.index import MogulIndex
        from repro.core.out_of_sample import build_query_seeds

        index = MogulIndex.build(clustered_graph, alpha=0.95)
        sizes = [m.size for m in index.cluster_members]
        big = sorted(range(len(sizes)), key=lambda c: -sizes[c])[:2]
        midpoint = 0.5 * (
            index.cluster_means[big[0]] + index.cluster_means[big[1]]
        )
        single = build_query_seeds(
            midpoint, index.cluster_means, index.cluster_members,
            clustered_graph.features, n_neighbors=10,
            sigma=clustered_graph.sigma, n_probe=1,
        )
        multi = build_query_seeds(
            midpoint, index.cluster_means, index.cluster_members,
            clustered_graph.features, n_neighbors=10,
            sigma=clustered_graph.sigma, n_probe=2,
        )
        def clusters_of(seeds):
            return {
                int(index.permutation.cluster_of_position[
                    index.permutation.inverse[n]
                ])
                for n in seeds.nodes
            }
        assert len(clusters_of(multi)) >= len(clusters_of(single))

    def test_empty_clusters_never_probed(self, clustered_graph):
        """Zero-mean placeholder rows of empty clusters must not win."""
        from repro.core.out_of_sample import build_query_seeds

        members = (
            np.asarray([0, 1, 2]),
            np.asarray([], dtype=np.int64),  # empty cluster with zero mean
        )
        means = np.vstack([
            clustered_graph.features[:3].mean(axis=0),
            np.zeros(clustered_graph.features.shape[1]),
        ])
        # a query at the origin is closest to the empty cluster's mean
        seeds = build_query_seeds(
            np.zeros(clustered_graph.features.shape[1]), means, members,
            clustered_graph.features, n_neighbors=2, sigma=1.0,
        )
        assert set(seeds.nodes.tolist()) <= {0, 1, 2}

    def test_ranker_n_probe_parameter(self, clustered_graph):
        from repro.core.index import MogulRanker

        ranker = MogulRanker(clustered_graph, alpha=0.95)
        feature = clustered_graph.features[5] + 0.01
        one = ranker.top_k_out_of_sample(feature, 5, n_probe=1)
        many = ranker.top_k_out_of_sample(feature, 5, n_probe=3)
        assert len(one) == len(many) == 5

    def test_bad_n_probe_rejected(self, clustered_graph):
        from repro.core.index import MogulRanker

        ranker = MogulRanker(clustered_graph, alpha=0.95)
        with pytest.raises(ValueError, match="n_probe"):
            ranker.top_k_out_of_sample(clustered_graph.features[0], 5, n_probe=0)


class TestOutOfSampleSearch:
    def test_database_point_recovers_in_sample_answers(self, clustered_graph):
        """Querying with an existing point's feature vector approximates
        the in-sample answer set (the query's own node will top the list)."""
        ranker = MogulRanker(clustered_graph)
        node = 20
        oos = ranker.top_k_out_of_sample(clustered_graph.features[node], 6)
        assert node in oos.indices  # finds the point itself
        in_sample = ranker.top_k(node, 5).indices
        overlap = p_at_k(
            np.setdiff1d(oos.indices, [node])[:5], in_sample
        )
        assert overlap >= 0.6

    def test_perturbed_query_stays_in_cluster(self, clustered_graph, clustered_labels):
        ranker = MogulRanker(clustered_graph)
        rng = np.random.default_rng(0)
        node = 50
        feature = clustered_graph.features[node] + rng.normal(
            scale=0.05, size=clustered_graph.features.shape[1]
        )
        result = ranker.top_k_out_of_sample(feature, 8)
        assert np.all(clustered_labels[result.indices] == clustered_labels[node])

    def test_breakdown_recorded(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        ranker.top_k_out_of_sample(clustered_graph.features[0], 5)
        breakdown = ranker.last_breakdown
        assert breakdown is not None
        assert set(breakdown) == {"nearest_neighbor", "top_k", "overall"}
        assert breakdown["overall"] == pytest.approx(
            breakdown["nearest_neighbor"] + breakdown["top_k"]
        )

    def test_validation(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        with pytest.raises(ValueError, match="feature"):
            ranker.top_k_out_of_sample(np.zeros(3), 5)
        with pytest.raises(ValueError):
            ranker.top_k_out_of_sample(clustered_graph.features[0], 0)

    def test_works_with_exact_variant(self, clustered_graph):
        ranker = MogulRanker(clustered_graph, exact=True)
        result = ranker.top_k_out_of_sample(clustered_graph.features[1], 5)
        assert len(result) == 5
