"""Tests for metrics, sparsity diagnostics and the experiment harness."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import MogulIndex
from repro.eval import (
    ExperimentTable,
    average_precision_at_k,
    block_structure_stats,
    p_at_k,
    rank_correlation,
    retrieval_precision,
    sample_queries,
    sparsity_raster,
    time_queries,
)


class TestPAtK:
    def test_full_overlap(self):
        assert p_at_k(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_no_overlap(self):
        assert p_at_k(np.array([1, 2]), np.array([3, 4])) == 0.0

    def test_partial(self):
        assert p_at_k(np.array([1, 2, 3, 4]), np.array([1, 2, 9, 8])) == 0.5

    def test_empty_retrieved(self):
        assert p_at_k(np.array([]), np.array([1])) == 0.0

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            p_at_k(np.array([1, 1]), np.array([1, 2]))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_property_bounds(self, seed):
        rng = np.random.default_rng(seed)
        retrieved = rng.choice(50, size=8, replace=False)
        reference = rng.choice(50, size=8, replace=False)
        value = p_at_k(retrieved, reference)
        assert 0.0 <= value <= 1.0
        assert value == p_at_k(retrieved, reference[::-1])  # order-free


class TestRetrievalPrecision:
    def test_all_match(self):
        labels = np.array([7, 7, 7, 3])
        assert retrieval_precision(np.array([0, 1, 2]), labels, 7) == 1.0

    def test_half_match(self):
        labels = np.array([7, 3, 7, 3])
        assert retrieval_precision(np.array([0, 1]), labels, 7) == 0.5

    def test_empty(self):
        assert retrieval_precision(np.array([]), np.array([1]), 1) == 0.0


class TestAveragePrecision:
    def test_prefix_hits_score_higher(self):
        labels = np.array([1, 1, 0, 0])
        early = average_precision_at_k(np.array([0, 1, 2, 3]), labels, 1)
        late = average_precision_at_k(np.array([2, 3, 0, 1]), labels, 1)
        assert early > late

    def test_no_relevant(self):
        assert average_precision_at_k(np.array([0]), np.array([0]), 9) == 0.0

    def test_perfect(self):
        labels = np.array([1, 1])
        assert average_precision_at_k(np.array([0, 1]), labels, 1) == 1.0


class TestRankCorrelation:
    def test_identical_is_one(self):
        scores = np.random.default_rng(0).random(30)
        assert rank_correlation(scores, scores) == pytest.approx(1.0)

    def test_reversed_is_minus_one(self):
        scores = np.arange(10.0)
        assert rank_correlation(scores, -scores) == pytest.approx(-1.0)

    def test_monotone_transform_invariant(self):
        scores = np.random.default_rng(1).random(25)
        assert rank_correlation(scores, np.exp(3 * scores)) == pytest.approx(1.0)

    def test_ties_handled(self):
        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 2.0, 3.0])
        assert rank_correlation(a, b) == pytest.approx(1.0)

    def test_constant_vector_is_zero(self):
        assert rank_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rank_correlation(np.ones(3), np.ones(4))


class TestSparsity:
    def test_raster_dimensions_and_marks(self):
        matrix = sp.identity(10, format="csr")
        raster = sparsity_raster(matrix, size=5)
        assert len(raster) == 5
        assert all(len(line) == 5 for line in raster)
        # identity -> diagonal cells marked
        for i in range(5):
            assert raster[i][i] == "#"

    def test_empty_matrix(self):
        raster = sparsity_raster(sp.csr_matrix((10, 10)), size=4)
        assert all(set(line) == {"."} for line in raster)

    def test_bad_size(self):
        with pytest.raises(ValueError):
            sparsity_raster(sp.identity(3), size=0)

    def test_block_stats_lemma3_zero_off_block(self, bridged_graph):
        index = MogulIndex.build(bridged_graph)
        stats = block_structure_stats(index.factors.lower, index.permutation)
        assert stats["off_block"] == 0.0
        assert stats["nnz"] == index.factors.nnz
        total = stats["within_block"] + stats["border"] + stats["off_block"]
        assert total == pytest.approx(1.0)

    def test_block_stats_empty(self, bridged_graph):
        index = MogulIndex.build(bridged_graph)
        stats = block_structure_stats(
            sp.csr_matrix(index.factors.lower.shape), index.permutation
        )
        assert stats["nnz"] == 0.0


class TestHarness:
    def test_sample_queries_distinct_and_deterministic(self):
        a = sample_queries(100, 10, seed=3)
        b = sample_queries(100, 10, seed=3)
        np.testing.assert_array_equal(a, b)
        assert len(set(a.tolist())) == 10

    def test_sample_queries_too_many(self):
        with pytest.raises(ValueError):
            sample_queries(5, 6)

    def test_time_queries_counts_calls(self):
        calls = []
        mean = time_queries(lambda q: calls.append(q), [1, 2, 3], warmup=1)
        # warmup call on first query + 3 timed calls
        assert len(calls) == 4
        assert mean >= 0.0

    def test_time_queries_empty(self):
        with pytest.raises(ValueError):
            time_queries(lambda q: None, [])

    def test_table_rendering(self):
        table = ExperimentTable(title="T", columns=["a", "b"])
        table.add_row("x", 1.23456)
        table.add_row("long-name", 1e-9)
        table.add_note("a note")
        text = table.to_text()
        assert "T" in text and "a note" in text
        assert "1.2346" in text
        assert "1.000e-09" in text
        md = table.to_markdown()
        assert md.startswith("### T")
        assert "| a | b |" in md

    def test_table_row_length_check(self):
        table = ExperimentTable(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_table_zero_formatting(self):
        assert ExperimentTable._format_cell(0.0) == "0"
        assert ExperimentTable._format_cell(12) == "12"
        assert ExperimentTable._format_cell("s") == "s"


class TestBatchHarness:
    def test_iter_batches_chunks(self):
        from repro.eval import iter_batches

        chunks = list(iter_batches(list(range(10)), 4))
        assert [len(c) for c in chunks] == [4, 4, 2]
        assert [c[0] for c in chunks] == [0, 4, 8]

    def test_iter_batches_rejects_bad_size(self):
        from repro.eval import iter_batches

        with pytest.raises(ValueError, match="batch_size"):
            list(iter_batches([1, 2], 0))

    def test_time_query_batches_counts_calls(self):
        from repro.eval import time_query_batches

        calls = []
        per_query = time_query_batches(
            lambda chunk: calls.append(list(chunk)), [1, 2, 3, 4, 5], 2, warmup=1
        )
        # warmup batch + three timed batches of sizes 2, 2, 1
        assert calls == [[1, 2], [1, 2], [3, 4], [5]]
        assert per_query >= 0.0

    def test_time_query_batches_empty(self):
        from repro.eval import time_query_batches

        with pytest.raises(ValueError, match="non-empty"):
            time_query_batches(lambda chunk: None, [], 4)
