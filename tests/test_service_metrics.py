"""Tests for the metrics sink: histogram ring exactness and thread-safety.

Satellite coverage for the observability PR: the LatencyHistogram ring
buffer must be *exact* at its wraparound boundaries (window percentiles
over precisely the last ``capacity`` observations, lifetime bucket
counts never losing an observation), and ServiceMetrics must add up
under concurrent writers — the event loop, the engine worker and load
generator threads all report into one instance.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.search import SearchStats
from repro.obs.trace import Trace
from repro.service.metrics import DEFAULT_BUCKETS, LatencyHistogram, ServiceMetrics

pytestmark = pytest.mark.timeout(120)


class TestLatencyHistogramWindow:
    """Ring-buffer exactness at the capacity boundaries."""

    def test_exact_below_capacity(self):
        histogram = LatencyHistogram(capacity=8)
        values = [0.010, 0.020, 0.030]
        for value in values:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["max_ms"] == pytest.approx(30.0)
        assert summary["mean_ms"] == pytest.approx(20.0)
        assert summary["p50_ms"] == pytest.approx(
            1e3 * float(np.percentile(values, 50))
        )

    def test_exact_at_capacity(self):
        capacity = 16
        histogram = LatencyHistogram(capacity=capacity)
        values = [(i + 1) / 1e3 for i in range(capacity)]
        for value in values:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == capacity
        assert summary["max_ms"] == pytest.approx(capacity)
        for q in (50, 95, 99):
            assert summary[f"p{q}_ms"] == pytest.approx(
                1e3 * float(np.percentile(values, q))
            )

    def test_wraparound_drops_exactly_the_oldest(self):
        capacity = 8
        histogram = LatencyHistogram(capacity=capacity)
        # One giant outlier, then enough fresh samples to overwrite it.
        histogram.observe(10.0)
        fresh = [(i + 1) / 1e3 for i in range(capacity)]
        for value in fresh:
            histogram.observe(value)
        summary = histogram.summary()
        # The window holds exactly the last `capacity` observations: the
        # outlier was overwritten, so the windowed max decays ...
        assert summary["max_ms"] == pytest.approx(1e3 * max(fresh))
        assert summary["p99_ms"] == pytest.approx(
            1e3 * float(np.percentile(fresh, 99))
        )
        # ... while the lifetime max and total count never decrease.
        assert summary["lifetime_max_ms"] == pytest.approx(10_000.0)
        assert summary["count"] == capacity + 1

    def test_double_wraparound_window_contents(self):
        capacity = 4
        histogram = LatencyHistogram(capacity=capacity)
        for i in range(2 * capacity + 1):  # 9 observations through a 4-ring
            histogram.observe(float(i))
        window_expected = [5.0, 6.0, 7.0, 8.0]
        summary = histogram.summary()
        assert summary["count"] == 2 * capacity + 1
        assert summary["max_ms"] == pytest.approx(1e3 * 8.0)
        assert summary["p50_ms"] == pytest.approx(
            1e3 * float(np.percentile(window_expected, 50))
        )
        # Mean is lifetime (sum/total), not windowed.
        assert summary["mean_ms"] == pytest.approx(1e3 * np.mean(range(9)))

    def test_lifetime_max_survives_any_number_of_wraps(self):
        histogram = LatencyHistogram(capacity=2)
        histogram.observe(5.0)
        for _ in range(10):
            histogram.observe(0.001)
        summary = histogram.summary()
        assert summary["max_ms"] == pytest.approx(1.0)
        assert summary["lifetime_max_ms"] == pytest.approx(5_000.0)

    def test_empty_summary_is_all_zero(self):
        summary = LatencyHistogram().summary()
        assert summary["count"] == 0
        for key in ("mean_ms", "max_ms", "lifetime_max_ms", "p50_ms", "p99_ms"):
            assert summary[key] == 0.0

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            LatencyHistogram(capacity=0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.1, 0.1, 0.2))
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=(0.2, 0.1))


class TestLatencyHistogramBuckets:
    """Lifetime bucket counts: the Prometheus-facing half of the class."""

    def test_bucket_assignment_inclusive_upper_bound(self):
        histogram = LatencyHistogram(capacity=4, buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.001, 0.0011, 0.05, 0.5):
            histogram.observe(value)
        bounds, counts, total, total_sum = histogram.bucket_counts()
        assert bounds == (0.001, 0.01, 0.1)
        # le-buckets: 0.001 catches {0.0005, 0.001}; 0.5 overflows to +Inf.
        assert counts == (2, 1, 1)
        assert total == 5
        assert total_sum == pytest.approx(0.5526)

    def test_buckets_survive_window_wraparound(self):
        capacity = 4
        histogram = LatencyHistogram(capacity=capacity)
        n = 10 * capacity
        for _ in range(n):
            histogram.observe(0.003)
        bounds, counts, total, _ = histogram.bucket_counts()
        assert total == n  # every observation counted, none windowed away
        assert sum(counts) == n
        assert counts[bounds.index(0.005)] == n

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))

    def test_concurrent_observers_lose_nothing(self):
        histogram = LatencyHistogram(capacity=64)
        n_threads, per_thread = 8, 500

        def worker(tid):
            for i in range(per_thread):
                histogram.observe((tid * per_thread + i + 1) / 1e6)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        expected = n_threads * per_thread
        assert histogram.count == expected
        _, counts, total, total_sum = histogram.bucket_counts()
        assert total == expected
        assert sum(counts) == expected  # nothing above 10s
        exact_sum = sum(
            (t * per_thread + i + 1) / 1e6
            for t in range(n_threads)
            for i in range(per_thread)
        )
        assert total_sum == pytest.approx(exact_sum)
        assert histogram.summary()["lifetime_max_ms"] == pytest.approx(
            1e3 * expected / 1e6
        )


class TestServiceMetricsConcurrency:
    """One ServiceMetrics instance written by many threads must add up."""

    def test_concurrent_request_writers(self):
        metrics = ServiceMetrics()
        n_threads, per_thread = 8, 250

        def worker(tid):
            for i in range(per_thread):
                error = (i % 10) == 0
                metrics.record_request("search", 0.001, error=error)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == n_threads * per_thread
        assert snapshot["errors_total"] == n_threads * (per_thread // 10)
        # Errored requests are excluded from the latency histogram.
        assert metrics.latency["search"].count == n_threads * (
            per_thread - per_thread // 10
        )

    def test_concurrent_batch_writers_aggregate_stats(self):
        metrics = ServiceMetrics()
        n_threads, per_thread = 6, 200

        def worker(tid):
            for i in range(per_thread):
                stats = SearchStats(
                    clusters_pruned=1, clusters_scored=2, nodes_scored=3
                )
                metrics.record_batch(tid + 1, stats=stats)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = metrics.snapshot()
        n_batches = n_threads * per_thread
        assert snapshot["batches_total"] == n_batches
        assert snapshot["queries_batched"] == per_thread * sum(
            range(1, n_threads + 1)
        )
        assert snapshot["max_batch_size"] == n_threads
        assert snapshot["engine"]["clusters_pruned"] == n_batches
        assert snapshot["engine"]["clusters_scored"] == 2 * n_batches
        assert snapshot["engine"]["nodes_scored"] == 3 * n_batches
        assert metrics.mean_batch_size == pytest.approx(
            snapshot["queries_batched"] / n_batches
        )

    def test_concurrent_stage_writers_create_one_histogram_each(self):
        metrics = ServiceMetrics()
        stages = [f"stage.{i}" for i in range(4)]
        n_threads, per_thread = 8, 200

        def worker(tid):
            for i in range(per_thread):
                metrics.record_stage(stages[i % len(stages)], 0.001)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        histograms = metrics.stage_histograms()
        assert sorted(histograms) == stages
        per_stage = n_threads * per_thread // len(stages)
        for stage in stages:
            assert histograms[stage].count == per_stage

    def test_mixed_writers_snapshot_is_consistent(self):
        """Snapshots taken *during* writes must stay self-consistent."""
        metrics = ServiceMetrics()
        stop = threading.Event()
        problems = []

        def writer():
            while not stop.is_set():
                metrics.record_request("search", 0.002)
                metrics.record_batch(4)
                metrics.record_stage("scheduler.wait", 0.0005)

        def reader():
            while not stop.is_set():
                snapshot = metrics.snapshot()
                if snapshot["queries_batched"] != 4 * snapshot["batches_total"]:
                    problems.append(snapshot)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.3)
        stop.set()
        for thread in threads:
            thread.join()
        assert not problems
        assert metrics.snapshot()["requests_total"] > 0

    def test_record_trace_feeds_stage_histograms_and_skips_root(self):
        metrics = ServiceMetrics()
        trace = Trace("search")
        trace.root.add_span("scheduler.wait", started=0.0, ended=0.010)
        engine = trace.root.add_span("engine.dispatch", started=0.0, ended=0.050)
        engine.add_span("tier.nominate", started=0.0, ended=0.020)
        trace.finish()
        metrics.record_trace(trace)
        histograms = metrics.stage_histograms()
        assert sorted(histograms) == [
            "engine.dispatch",
            "scheduler.wait",
            "tier.nominate",
        ]
        assert "search" not in histograms  # root excluded: that is the
        assert histograms["scheduler.wait"].count == 1  # endpoint histogram
        assert histograms["tier.nominate"].summary()["max_ms"] == pytest.approx(
            20.0
        )
        # The stage summaries surface in the snapshot for JSON /metrics.
        assert "scheduler.wait" in metrics.snapshot()["stages"]

    def test_unknown_endpoint_counts_without_histogram(self):
        metrics = ServiceMetrics()
        metrics.record_request("debug_slow", 0.001)
        snapshot = metrics.snapshot()
        assert snapshot["requests_total"] == 1
        assert set(snapshot["latency"]) == {"search", "search_oos"}
