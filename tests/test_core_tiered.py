"""Tests for the tiered engine (repro.core.tiered) and its factory wiring.

The properties under test mirror the serving contract: ``m = n`` and
``accuracy="exact"`` answers are bitwise the exact engine's on every
entry point (flat *and* sharded base, multiple graph seeds), the dial
canonicalises and rejects malformed requests, per-tier counters account
for every query, and :func:`repro.core.engine.engine_from_index` raises
a clear error naming the artifact kind for unsupported combinations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import Engine, engine_from_index
from repro.core.index import MogulIndex, MogulRanker
from repro.core.sharded import ShardedMogulIndex, ShardedMogulRanker
from repro.core.spectral import SpectralEngine, SpectralIndex
from repro.core.tiered import (
    ACCURACY_PRESETS,
    TieredEngine,
    preset_candidates,
)
from repro.graph.build import build_knn_graph
from tests.conftest import three_cluster_features

GRAPH_SEEDS = (0, 3)
RANK = 48


def _build_graph(seed: int):
    features, _ = three_cluster_features(per_cluster=50, dim=8, seed=seed)
    return build_knn_graph(features, k=5)


@pytest.fixture(scope="module", params=GRAPH_SEEDS)
def setup(request):
    from repro.clustering.louvain import louvain

    graph = _build_graph(request.param)
    labels = louvain(graph.adjacency)
    base = MogulRanker.from_index(
        graph, MogulIndex.build(graph, cluster_labels=labels)
    )
    spectral = SpectralEngine.from_index(
        graph, SpectralIndex.build(graph, rank=RANK, cluster_labels=labels)
    )
    return graph, base, spectral, labels


@pytest.fixture(scope="module")
def tiered(setup):
    _, base, spectral, _ = setup
    return TieredEngine(base, spectral)


@pytest.fixture(scope="module")
def sharded_tiered(setup):
    graph, _, spectral, labels = setup
    index = ShardedMogulIndex.build(graph, 2, cluster_labels=labels)
    return TieredEngine(ShardedMogulRanker.from_index(graph, index), spectral)


def _assert_bitwise(a, b):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.scores, b.scores)


class TestResolveAccuracy:
    def test_presets_canonicalise(self, tiered):
        for label in ACCURACY_PRESETS:
            resolved, kwargs = tiered.resolve_accuracy(accuracy=label)
            assert resolved == label
            assert kwargs == {"accuracy": label}

    def test_default_when_unspecified(self, tiered):
        label, _ = tiered.resolve_accuracy()
        assert label == tiered.default_accuracy == "balanced"

    def test_explicit_m_labels(self, tiered):
        label, kwargs = tiered.resolve_accuracy(m=64)
        assert label == "m=64"
        assert kwargs == {"m": 64}

    def test_rejects_both(self, tiered):
        with pytest.raises(ValueError, match="not both"):
            tiered.resolve_accuracy(accuracy="fast", m=10)

    def test_rejects_unknown_level(self, tiered):
        with pytest.raises(ValueError, match="unknown accuracy level"):
            tiered.resolve_accuracy(accuracy="turbo")

    def test_rejects_bad_m(self, tiered):
        with pytest.raises(ValueError, match="m must be"):
            tiered.resolve_accuracy(m=0)

    def test_preset_budgets(self):
        assert preset_candidates("fast", 10) == 40
        assert preset_candidates("fast", 2) == 32
        assert preset_candidates("balanced", 10) == 160
        assert preset_candidates("balanced", 4) == 128
        with pytest.raises(ValueError, match="no candidate budget"):
            preset_candidates("exact", 10)

    def test_constructor_rejects_unknown_default(self, setup):
        _, base, spectral, _ = setup
        with pytest.raises(ValueError, match="unknown accuracy level"):
            TieredEngine(base, spectral, default_accuracy="warp")


class TestExactness:
    """Satellite property: the top of the dial is bitwise exact."""

    @pytest.mark.parametrize("engine_fixture", ["tiered", "sharded_tiered"])
    def test_m_equals_n_identical(self, engine_fixture, request, setup):
        engine = request.getfixturevalue(engine_fixture)
        _, base, _, _ = setup
        n = engine.n_nodes
        for query in (0, 37, 101, n - 1):
            _assert_bitwise(
                engine.top_k(query, 8, m=n), base.top_k(query, 8)
            )

    @pytest.mark.parametrize("engine_fixture", ["tiered", "sharded_tiered"])
    def test_exact_dial_identical(self, engine_fixture, request, setup):
        engine = request.getfixturevalue(engine_fixture)
        _, base, _, _ = setup
        for query in (5, 77):
            _assert_bitwise(
                engine.top_k(query, 6, accuracy="exact"), base.top_k(query, 6)
            )

    @pytest.mark.parametrize("engine_fixture", ["tiered", "sharded_tiered"])
    def test_batch_m_equals_n_identical(self, engine_fixture, request, setup):
        engine = request.getfixturevalue(engine_fixture)
        _, base, _, _ = setup
        queries = [1, 40, 90, 120]
        for dialed, exact in zip(
            engine.top_k_batch(queries, 7, m=engine.n_nodes),
            base.top_k_batch(queries, 7),
        ):
            _assert_bitwise(dialed, exact)

    @pytest.mark.parametrize("engine_fixture", ["tiered", "sharded_tiered"])
    def test_out_of_sample_exactness(self, engine_fixture, request, setup):
        engine = request.getfixturevalue(engine_fixture)
        graph, base, _, _ = setup
        features = graph.features[[12, 60]] + 0.03
        for kwargs in ({"accuracy": "exact"}, {"m": engine.n_nodes}):
            for dialed, exact in zip(
                engine.top_k_out_of_sample_batch(features, 5, **kwargs),
                base.top_k_out_of_sample_batch(features, 5),
            ):
                _assert_bitwise(dialed, exact)
            _assert_bitwise(
                engine.top_k_out_of_sample(features[0], 5, **kwargs),
                base.top_k_out_of_sample(features[0], 5),
            )

    def test_include_query_respected(self, tiered, setup):
        _, base, _, _ = setup
        _assert_bitwise(
            tiered.top_k(9, 5, exclude_query=False, m=tiered.n_nodes),
            base.top_k(9, 5, exclude_query=False),
        )
        assert tiered.top_k(9, 5, exclude_query=False, m=50).indices[0] == 9


class TestDialBehaviour:
    def test_answer_scores_are_exact_scores(self, tiered, setup):
        """Approximation can omit answers, never change their scores."""
        _, base, _, _ = setup
        full = base.scores(21)
        answer = tiered.top_k(21, 6, accuracy="fast")
        np.testing.assert_allclose(
            answer.scores, full[answer.indices], rtol=0, atol=1e-12
        )

    def test_budget_clamped_to_k(self, tiered):
        tiered.top_k(2, 5, m=1)
        assert tiered.last_tier_breakdown["candidates"] == 5

    def test_breakdown_shape(self, tiered):
        tiered.top_k(3, 4)
        breakdown = tiered.last_tier_breakdown
        assert breakdown["accuracy"] == "balanced"
        assert breakdown["queries"] == 1
        assert breakdown["spectral_seconds"] >= 0
        assert breakdown["rerank_seconds"] >= 0
        assert breakdown["candidates"] >= 4

    def test_counters_accumulate(self, setup):
        _, base, spectral, _ = setup
        engine = TieredEngine(base, spectral)
        engine.top_k(1, 4)
        engine.top_k(2, 4, accuracy="fast")
        engine.top_k_batch([3, 4], 4, accuracy="fast")
        engine.top_k(5, 4, accuracy="exact")
        counters = engine.tier_counters()
        assert counters["balanced"]["queries"] == 1
        assert counters["fast"]["queries"] == 3
        assert counters["exact"]["queries"] == 1
        assert counters["exact"]["recall_sum"] == 1.0
        assert counters["exact"]["candidates"] == 0
        for entry in counters.values():
            assert 0.0 <= entry["recall_sum"] <= entry["queries"]

    def test_multi_seed_stays_exact(self, tiered, setup):
        _, base, _, _ = setup
        _assert_bitwise(
            tiered.top_k_multi([4, 8], 6), base.top_k_multi([4, 8], 6)
        )

    def test_implements_engine_protocol(self, tiered):
        assert isinstance(tiered, Engine)

    def test_rejects_mismatched_tiers(self, setup):
        graph, base, _, _ = setup
        other = _build_graph(11)
        foreign = SpectralEngine.from_index(
            other, SpectralIndex.build(other, rank=8)
        )
        if foreign.n_nodes == base.n_nodes:
            pytest.skip("graphs coincide in size")
        with pytest.raises(ValueError, match="nodes"):
            TieredEngine(base, foreign)

    def test_rejects_base_without_rerank(self, setup):
        _, _, spectral, _ = setup
        with pytest.raises(ValueError, match="top_k_rerank"):
            TieredEngine(spectral, spectral)


class TestEngineFactory:
    """Satellite: clear errors naming the artifact kind."""

    @pytest.fixture(scope="class")
    def artifacts(self, setup):
        graph, base, spectral, _ = setup
        return graph, base.index, spectral.index

    def test_spectral_artifact_serves_standalone(self, artifacts):
        graph, _, spectral_index = artifacts
        engine = engine_from_index(graph, spectral_index)
        assert isinstance(engine, SpectralEngine)

    def test_flat_plus_spectral_is_tiered(self, artifacts):
        graph, mogul_index, spectral_index = artifacts
        engine = engine_from_index(graph, mogul_index, spectral=spectral_index)
        assert isinstance(engine, TieredEngine)
        assert isinstance(engine.base, MogulRanker)

    def test_spectral_artifact_rejects_live(self, artifacts):
        graph, _, spectral_index = artifacts
        with pytest.raises(ValueError, match="spectral index.*live|live.*spectral"):
            engine_from_index(graph, spectral_index, live=True)

    def test_spectral_artifact_rejects_spectral_tier(self, artifacts):
        graph, _, spectral_index = artifacts
        with pytest.raises(ValueError, match="a spectral index"):
            engine_from_index(graph, spectral_index, spectral=spectral_index)

    def test_spectral_artifact_rejects_search_kwargs(self, artifacts):
        graph, _, spectral_index = artifacts
        with pytest.raises(ValueError, match="use_pruning"):
            engine_from_index(graph, spectral_index, use_pruning=False)

    def test_tiered_rejects_live(self, artifacts):
        graph, mogul_index, spectral_index = artifacts
        with pytest.raises(ValueError, match="live"):
            engine_from_index(
                graph, mogul_index, live=True, spectral=spectral_index
            )

    def test_wrong_spectral_tier_type(self, artifacts):
        graph, mogul_index, _ = artifacts
        with pytest.raises(ValueError, match="flat Mogul index"):
            engine_from_index(graph, mogul_index, spectral=mogul_index)

    def test_unknown_artifact_named(self, artifacts):
        graph, _, _ = artifacts
        with pytest.raises(ValueError, match="unsupported artifact of type dict"):
            engine_from_index(graph, {"not": "an index"})
