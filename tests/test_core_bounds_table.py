"""Tests for the vectorized bound table (repro.core.bounds.BoundsTable).

The table must agree with the per-cluster reference
(`ClusterBoundData.estimate`) to within floating-point summation order
(the SpMV may sum border terms in a different order than ``np.dot``),
and its overflow saturation must keep Lemma 7 intact (an infinite bound
never prunes).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    BoundsTable,
    ClusterBoundData,
    precompute_cluster_bounds,
)
from repro.core.index import MogulRanker
from repro.core.permutation import build_permutation
from repro.linalg.ldl import incomplete_ldl
from repro.ranking.normalize import ranking_matrix


@pytest.fixture(scope="module")
def bound_parts(bridged_graph):
    perm = build_permutation(bridged_graph.adjacency)
    w = perm.permute_matrix(ranking_matrix(bridged_graph.adjacency, 0.95))
    factors = incomplete_ldl(w)
    bounds = precompute_cluster_bounds(factors, perm)
    table = BoundsTable.from_bounds(bounds, perm.border_slice.start, perm.n_nodes)
    return perm, factors, bounds, table


class TestAgreement:
    def test_matches_per_cluster_estimate(self, bound_parts):
        perm, factors, bounds, table = bound_parts
        rng = np.random.default_rng(0)
        border_start = perm.border_slice.start
        n = perm.n_nodes
        for _ in range(5):
            x_abs = np.abs(rng.normal(size=n))
            vectorized = table.estimate_all(x_abs[border_start:])
            for cid, bound in enumerate(bounds):
                reference = bound.estimate(x_abs)
                assert vectorized[cid] == pytest.approx(
                    reference, rel=1e-12
                ), f"cluster {cid}"

    def test_zero_border_scores_give_zero_bounds(self, bound_parts):
        perm, _, bounds, table = bound_parts
        zeros = np.zeros(perm.n_nodes - perm.border_slice.start)
        np.testing.assert_array_equal(
            table.estimate_all(zeros), np.zeros(len(bounds))
        )

    def test_empty_bounds_tuple(self):
        table = BoundsTable.from_bounds((), border_start=3, n=10)
        assert table.estimate_all(np.ones(7)).shape == (0,)


class TestGrowthFactor:
    def test_growth_matches_log_space_definition(self):
        bound = ClusterBoundData(
            border_cols=np.asarray([5]),
            border_maxima=np.asarray([0.5]),
            internal_max=0.3,
            size=10,
        )
        assert bound.growth == pytest.approx(math.exp(9 * math.log1p(0.3)))

    def test_growth_saturates_to_inf(self):
        bound = ClusterBoundData(
            border_cols=np.asarray([0]),
            border_maxima=np.asarray([1.0]),
            internal_max=0.5,
            size=10_000,
        )
        assert bound.growth == math.inf

    def test_inf_growth_never_yields_nan(self):
        bound = ClusterBoundData(
            border_cols=np.asarray([0]),
            border_maxima=np.asarray([1.0]),
            internal_max=0.5,
            size=10_000,
        )
        table = BoundsTable.from_bounds((bound,), border_start=0, n=4)
        # zero border score * inf growth must be 0 (no answer there), not nan
        np.testing.assert_array_equal(table.estimate_all(np.zeros(4)), [0.0])
        # positive border score * inf growth is +inf (prunes nothing)
        assert table.estimate_all(np.ones(4))[0] == math.inf

    @settings(deadline=None, max_examples=30)
    @given(
        internal=st.floats(min_value=0.0, max_value=2.0),
        size=st.integers(min_value=1, max_value=100),
        score=st.floats(min_value=0.0, max_value=10.0),
    )
    def test_bound_upper_bounds_geometric_sum(self, internal, size, score):
        """The closed form X*(1+u)^(N-1) dominates the recursive chain of
        Definition 2 (each node's estimate ≤ the cluster estimate)."""
        bound = ClusterBoundData(
            border_cols=np.asarray([0]),
            border_maxima=np.asarray([1.0]),
            internal_max=internal,
            size=size,
        )
        x = np.asarray([score])
        estimate = bound.estimate(x)
        # chain: e_last = score; e_prev = (1+u) * e_next
        chain = score
        for _ in range(size - 1):
            chain *= 1.0 + internal
            if math.isinf(chain):
                break
        assert estimate >= chain or estimate == pytest.approx(chain, rel=1e-9)


class TestPruningSafety:
    def test_pruned_clusters_contain_no_answer(self, clustered_graph):
        """End-to-end Lemma 7: compare Algorithm 2's pruning decisions
        against the true approximate scores."""
        ranker = MogulRanker(clustered_graph, alpha=0.95)
        for query in (0, 40, 81):
            result = ranker.top_k(query, 5)
            full = ranker.scores(query)
            full[query] = -np.inf
            true_top = np.sort(full)[-5:]
            np.testing.assert_allclose(
                np.sort(result.scores), true_top, atol=1e-12
            )
