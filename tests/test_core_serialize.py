"""Tests for index persistence (repro.core.serialize).

A loaded index must be *behaviourally identical* to the one saved: same
answers, same scores, same pruning statistics — because everything derived
is recomputed from the same primary artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import MogulIndex, MogulRanker
from repro.core.serialize import FORMAT_VERSION, load_index, save_index


@pytest.fixture(scope="module", params=["incomplete", "complete"])
def built_ranker(request, bridged_graph):
    return MogulRanker(
        bridged_graph, alpha=0.95, exact=(request.param == "complete")
    )


class TestRoundTrip:
    def test_top_k_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        loaded = MogulIndex.load(path)
        restored = MogulRanker.from_index(built_ranker.graph, loaded)
        assert restored.name == built_ranker.name
        for query in (0, 7, 42, 80):
            a = built_ranker.top_k(query, 6)
            b = restored.top_k(query, 6)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.scores, b.scores, rtol=0, atol=0)

    def test_scores_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        restored = MogulRanker.from_index(built_ranker.graph, MogulIndex.load(path))
        np.testing.assert_allclose(
            built_ranker.scores(3), restored.scores(3), rtol=0, atol=0
        )

    def test_out_of_sample_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        restored = MogulRanker.from_index(built_ranker.graph, MogulIndex.load(path))
        feature = built_ranker.graph.features.mean(axis=0)
        a = built_ranker.top_k_out_of_sample(feature, 5)
        b = restored.top_k_out_of_sample(feature, 5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_metadata_preserved(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        index = built_ranker.index
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.alpha == index.alpha
        assert loaded.factorization == index.factorization
        assert loaded.n_clusters == index.n_clusters
        assert loaded.factors.nnz == index.factors.nnz
        assert loaded.factors.pivot_perturbations == index.factors.pivot_perturbations
        np.testing.assert_array_equal(loaded.permutation.order, index.permutation.order)
        np.testing.assert_allclose(loaded.cluster_means, index.cluster_means)

    def test_load_does_not_need_graph(self, built_ranker, tmp_path):
        """The file alone suffices: no feature matrix is required to load."""
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        loaded = MogulIndex.load(path)
        assert loaded.n_nodes == built_ranker.n_nodes


class TestValidation:
    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(ValueError, match="missing keys"):
            load_index(path)

    def test_version_mismatch_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_corrupt_boundaries_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["cluster_starts"] = payload["cluster_starts"][:-1]
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="boundaries"):
            load_index(path)

    def test_from_index_checks_node_count(self, built_ranker, small_ring_graph):
        with pytest.raises(ValueError, match="nodes"):
            MogulRanker.from_index(small_ring_graph, built_ranker.index)

    def test_from_index_checks_feature_dim(self, built_ranker, bridged_graph):
        from repro.graph.build import build_knn_graph

        narrow = build_knn_graph(bridged_graph.features[:, :3], k=4)
        with pytest.raises(ValueError, match="dimension"):
            MogulRanker.from_index(narrow, built_ranker.index)
