"""Tests for index persistence (repro.core.serialize).

A loaded index must be *behaviourally identical* to the one saved: same
answers, same scores, same pruning statistics — because everything derived
is recomputed from the same primary artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import MogulIndex, MogulRanker
from repro.core.serialize import FORMAT_VERSION, load_index, save_index


@pytest.fixture(scope="module", params=["incomplete", "complete"])
def built_ranker(request, bridged_graph):
    return MogulRanker(
        bridged_graph, alpha=0.95, exact=(request.param == "complete")
    )


def _payload(path) -> dict:
    """All arrays of a saved index, ready to corrupt and re-save."""
    with np.load(path) as archive:
        return {key: archive[key] for key in archive.files}


class TestRoundTrip:
    def test_top_k_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        loaded = MogulIndex.load(path)
        restored = MogulRanker.from_index(built_ranker.graph, loaded)
        assert restored.name == built_ranker.name
        for query in (0, 7, 42, 80):
            a = built_ranker.top_k(query, 6)
            b = restored.top_k(query, 6)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.scores, b.scores, rtol=0, atol=0)

    def test_scores_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        restored = MogulRanker.from_index(built_ranker.graph, MogulIndex.load(path))
        np.testing.assert_allclose(
            built_ranker.scores(3), restored.scores(3), rtol=0, atol=0
        )

    def test_out_of_sample_identical(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        restored = MogulRanker.from_index(built_ranker.graph, MogulIndex.load(path))
        feature = built_ranker.graph.features.mean(axis=0)
        a = built_ranker.top_k_out_of_sample(feature, 5)
        b = restored.top_k_out_of_sample(feature, 5)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_metadata_preserved(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        index = built_ranker.index
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.alpha == index.alpha
        assert loaded.factorization == index.factorization
        assert loaded.n_clusters == index.n_clusters
        assert loaded.factors.nnz == index.factors.nnz
        assert loaded.factors.pivot_perturbations == index.factors.pivot_perturbations
        np.testing.assert_array_equal(loaded.permutation.order, index.permutation.order)
        np.testing.assert_allclose(loaded.cluster_means, index.cluster_means)

    def test_load_does_not_need_graph(self, built_ranker, tmp_path):
        """The file alone suffices: no feature matrix is required to load."""
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        loaded = MogulIndex.load(path)
        assert loaded.n_nodes == built_ranker.n_nodes


class TestValidation:
    def test_missing_keys_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez(path, unrelated=np.arange(3))
        with pytest.raises(ValueError, match="missing keys"):
            load_index(path)

    def test_version_mismatch_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="format version"):
            load_index(path)

    def test_corrupt_boundaries_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["cluster_starts"] = payload["cluster_starts"][:-1]
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="boundaries"):
            load_index(path)

    def test_not_a_zip_rejected(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(ValueError, match="not a Mogul index file"):
            load_index(path)

    def test_plain_npy_rejected(self, tmp_path):
        """A feature matrix passed where the index belongs -> clear error."""
        path = tmp_path / "features.npy"
        np.save(path, np.zeros((4, 3)))
        with pytest.raises(ValueError, match="plain array"):
            load_index(path)

    def test_non_integer_version_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["format_version"] = np.float64(1.5)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="format_version"):
            load_index(path)

    def test_broken_permutation_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        order = payload["order"].copy()
        order[0] = order[1]  # duplicate id -> not a permutation
        payload["order"] = order
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="not a permutation"):
            load_index(path)

    def test_truncated_factor_data_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["lower_data"] = payload["lower_data"][:-3]
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="indptr declares"):
            load_index(path)

    def test_factor_indices_out_of_range_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        indices = payload["lower_indices"].copy()
        if indices.size == 0:
            pytest.skip("factor has no off-diagonal entries")
        indices[0] = payload["order"].shape[0] + 7
        payload["lower_indices"] = indices
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="column indices"):
            load_index(path)

    def test_wrong_diag_length_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["diag"] = payload["diag"][:-1]
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="diagonal"):
            load_index(path)

    def test_wrong_cluster_means_shape_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["cluster_means"] = payload["cluster_means"][:-1]
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="cluster_means"):
            load_index(path)

    def test_unknown_factorization_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["factorization"] = np.str_("mystery")
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="factorization"):
            load_index(path)

    def test_bad_alpha_rejected(self, built_ranker, tmp_path):
        path = tmp_path / "index.npz"
        built_ranker.index.save(path)
        payload = _payload(path)
        payload["alpha"] = np.float64(1.5)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="alpha"):
            load_index(path)

    def test_from_index_checks_node_count(self, built_ranker, small_ring_graph):
        with pytest.raises(ValueError, match="nodes"):
            MogulRanker.from_index(small_ring_graph, built_ranker.index)

    def test_from_index_checks_feature_dim(self, built_ranker, bridged_graph):
        from repro.graph.build import build_knn_graph

        narrow = build_knn_graph(bridged_graph.features[:, :3], k=4)
        with pytest.raises(ValueError, match="dimension"):
            MogulRanker.from_index(narrow, built_ranker.index)


class TestMmapFallback:
    """The mmap fast path must degrade *visibly*, never silently.

    A compressed archive (or any archive whose members cannot be
    memory-mapped) is read through the ordinary zip reader; the loader
    records that on the profile's ``load_warnings`` so ``repro info`` and
    ``/stats`` surface the degradation — and the loaded index must still
    answer identically.
    """

    def test_compressed_archive_falls_back_with_warning(
        self, built_ranker, tmp_path
    ):
        path = tmp_path / "compressed.npz"
        save_index(built_ranker.index, path, compressed=True)
        loaded = load_index(path)
        assert loaded.profile is not None
        assert loaded.profile.load_warnings
        assert "memory-map fallback" in loaded.profile.load_warnings[0]
        assert "lower_data" in loaded.profile.load_warnings[0]
        restored = MogulRanker.from_index(built_ranker.graph, loaded)
        for query in (0, 13, 55):
            a = built_ranker.top_k(query, 6)
            b = restored.top_k(query, 6)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_uncompressed_archive_has_no_warning(self, built_ranker, tmp_path):
        path = tmp_path / "plain.npz"
        save_index(built_ranker.index, path)
        loaded = load_index(path)
        assert loaded.profile is not None
        assert loaded.profile.load_warnings == []

    def test_warning_survives_profile_roundtrip(self, built_ranker, tmp_path):
        from repro.core.profile import BuildProfile

        path = tmp_path / "compressed.npz"
        save_index(built_ranker.index, path, compressed=True)
        loaded = load_index(path)
        clone = BuildProfile.from_json(loaded.profile.to_json())
        assert clone.load_warnings == loaded.profile.load_warnings

    def test_load_event_fields_not_persisted(self, built_ranker, tmp_path):
        """Re-saving a loaded index must not replay old load warnings."""
        first = tmp_path / "first.npz"
        save_index(built_ranker.index, first, compressed=True)
        loaded = load_index(first)
        assert loaded.profile.load_warnings  # fallback happened
        second = tmp_path / "second.npz"
        save_index(loaded, second)  # uncompressed: mmap works
        reloaded = load_index(second)
        assert reloaded.profile.load_warnings == []
        assert reloaded.profile.load_seconds is not None  # fresh measurement
