"""Structural tests for the paper's Lemmas 3-7.

These are the load-bearing claims behind Mogul's correctness; each gets a
direct test on graphs with a guaranteed non-empty border, plus
hypothesis-driven variants over random graphs and arbitrary clusterings
(the lemmas hold for *any* clustering fed to Algorithm 1).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import node_estimate, precompute_cluster_bounds
from repro.core.index import MogulIndex
from repro.core.permutation import build_permutation
from repro.linalg import complete_ldl, incomplete_ldl
from repro.linalg.triangular import (
    back_substitute,
    back_substitute_rows,
    forward_substitute,
    forward_substitute_rows,
)
from repro.ranking.normalize import ranking_matrix
from tests.conftest import graph_from_adjacency, random_symmetric_adjacency
from tests.test_core_permutation import random_labels


def build_factors(adjacency, labels=None, alpha=0.9, factorization="incomplete"):
    perm = build_permutation(adjacency, cluster_labels=labels)
    w = perm.permute_matrix(ranking_matrix(adjacency, alpha))
    factorize = incomplete_ldl if factorization == "incomplete" else complete_ldl
    return perm, factorize(w)


class TestLemma3:
    """L_ij = 0 between distinct interior clusters."""

    @pytest.mark.parametrize("factorization", ["incomplete", "complete"])
    def test_bordered_block_diagonal(self, bridged_graph, factorization):
        perm, factors = build_factors(
            bridged_graph.adjacency, factorization=factorization
        )
        cluster_of = perm.cluster_of_position
        border = perm.border_cluster
        rows, cols = factors.lower.nonzero()
        for i, j in zip(rows, cols):
            ci, cj = cluster_of[i], cluster_of[j]
            if ci != border and cj != border:
                assert ci == cj, f"factor entry ({i},{j}) crosses clusters"

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=30),
        n_clusters=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=300),
        factorization=st.sampled_from(["incomplete", "complete"]),
    )
    def test_property_any_clustering(self, n, n_clusters, seed, factorization):
        adjacency = random_symmetric_adjacency(n, seed=seed)
        labels = random_labels(n, n_clusters, seed)
        perm, factors = build_factors(
            adjacency, labels=labels, factorization=factorization
        )
        cluster_of = perm.cluster_of_position
        border = perm.border_cluster
        rows, cols = factors.lower.nonzero()
        crossing = [
            (i, j)
            for i, j in zip(rows, cols)
            if cluster_of[i] != border
            and cluster_of[j] != border
            and cluster_of[i] != cluster_of[j]
        ]
        assert not crossing


class TestLemma4:
    """y is zero outside C_Q union C_N."""

    @pytest.mark.parametrize("factorization", ["incomplete", "complete"])
    def test_forward_pattern(self, bridged_graph, factorization):
        perm, factors = build_factors(
            bridged_graph.adjacency, factorization=factorization
        )
        n = perm.n_nodes
        border = perm.border_slice
        for query_node in (0, 41, perm.order[border.start] if border.start < border.stop else 0):
            qp = int(perm.inverse[query_node])
            q_cluster = int(perm.cluster_of_position[qp])
            q_vec = np.zeros(n)
            q_vec[qp] = 0.1
            y_full = forward_substitute(factors, q_vec)
            allowed = set(range(border.start, border.stop))
            sl = perm.cluster_slices[q_cluster]
            allowed |= set(range(sl.start, sl.stop))
            for pos in range(n):
                if pos not in allowed:
                    assert y_full[pos] == pytest.approx(0.0, abs=1e-14)

    def test_restricted_forward_equals_full(self, bridged_graph):
        """Computing only the allowed rows reproduces the full result —
        the substitution really can skip everything else."""
        perm, factors = build_factors(bridged_graph.adjacency)
        n = perm.n_nodes
        qp = int(perm.inverse[3])
        q_cluster = int(perm.cluster_of_position[qp])
        q_vec = np.zeros(n)
        q_vec[qp] = 0.1
        border = perm.border_slice
        sl = perm.cluster_slices[q_cluster]
        rows = list(range(sl.start, sl.stop)) + list(range(border.start, border.stop))
        restricted = forward_substitute_rows(factors, q_vec, rows)
        full = forward_substitute(factors, q_vec)
        np.testing.assert_allclose(restricted, full, atol=1e-12)


class TestLemma5:
    """Any cluster's scores can be computed from the border scores alone."""

    def test_cluster_scores_independent(self, bridged_graph):
        perm, factors = build_factors(bridged_graph.adjacency)
        n = perm.n_nodes
        qp = int(perm.inverse[0])
        q_vec = np.zeros(n)
        q_vec[qp] = 0.1
        y = forward_substitute(factors, q_vec)
        full = back_substitute(factors, y)

        border = perm.border_slice
        for cid, sl in enumerate(perm.cluster_slices[:-1]):
            out = np.zeros(n)
            back_substitute_rows(factors, y, range(border.start, border.stop), out=out)
            # compute ONLY this cluster, never touching other interiors
            back_substitute_rows(factors, y, range(sl.start, sl.stop), out=out)
            np.testing.assert_allclose(out[sl], full[sl], atol=1e-12)


class TestLemmas6And7:
    """Node and cluster estimates upper-bound the approximate scores."""

    def _scores_and_bounds(self, adjacency, labels, query_node, alpha=0.9):
        perm, factors = build_factors(adjacency, labels=labels, alpha=alpha)
        n = perm.n_nodes
        qp = int(perm.inverse[query_node])
        q_vec = np.zeros(n)
        q_vec[qp] = 1 - alpha
        y = forward_substitute(factors, q_vec)
        x = back_substitute(factors, y)
        bounds = precompute_cluster_bounds(factors, perm)
        return perm, factors, bounds, x, qp

    def test_cluster_bound_dominates_members(self, bridged_graph):
        perm, factors, bounds, x, qp = self._scores_and_bounds(
            bridged_graph.adjacency, None, query_node=2
        )
        x_abs = np.abs(x)
        q_cluster = perm.cluster_of_position[qp]
        for cid, sl in enumerate(perm.cluster_slices[:-1]):
            if cid == q_cluster:
                continue
            estimate = bounds[cid].estimate(x_abs)
            assert np.all(x[sl] <= estimate + 1e-12)

    def test_node_estimates_dominate(self, bridged_graph):
        perm, factors, bounds, x, qp = self._scores_and_bounds(
            bridged_graph.adjacency, None, query_node=2
        )
        x_abs = np.abs(x)
        q_cluster = perm.cluster_of_position[qp]
        for cid, sl in enumerate(perm.cluster_slices[:-1]):
            if cid == q_cluster:
                continue
            for pos in range(sl.start, sl.stop):
                est = node_estimate(factors, perm, bounds[cid], pos, x_abs)
                assert x[pos] <= est + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        n_clusters=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=300),
        alpha=st.floats(min_value=0.1, max_value=0.99),
    )
    def test_property_bound_soundness(self, n, n_clusters, seed, alpha):
        """Lemma 7 over random graphs, arbitrary clusterings, any query."""
        adjacency = random_symmetric_adjacency(n, seed=seed)
        labels = random_labels(n, n_clusters, seed)
        query = seed % n
        perm, factors, bounds, x, qp = self._scores_and_bounds(
            adjacency, labels, query, alpha=alpha
        )
        x_abs = np.abs(x)
        q_cluster = perm.cluster_of_position[qp]
        for cid, sl in enumerate(perm.cluster_slices[:-1]):
            if cid == q_cluster:
                continue
            estimate = bounds[cid].estimate(x_abs)
            assert np.all(x[sl] <= estimate + 1e-9)

    def test_bound_overflow_saturates(self):
        """Gigantic clusters with strong couplings saturate to +inf rather
        than overflowing — pruning is merely disabled, never unsound."""
        from repro.core.bounds import ClusterBoundData

        data = ClusterBoundData(
            border_cols=np.array([0]),
            border_maxima=np.array([1.0]),
            internal_max=1.0,
            size=10_000,
        )
        assert data.estimate(np.array([2.0])) == np.inf

    def test_bound_zero_when_no_border_coupling(self):
        from repro.core.bounds import ClusterBoundData

        data = ClusterBoundData(
            border_cols=np.array([], dtype=np.int64),
            border_maxima=np.array([]),
            internal_max=0.5,
            size=4,
        )
        assert data.estimate(np.zeros(1)) == 0.0
