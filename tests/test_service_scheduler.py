"""Tests for the micro-batching scheduler (repro.service.scheduler).

The scheduler is an execution layer, not an approximation layer: every
answer it serves must be bitwise identical to a direct ``top_k`` call,
under any coalescing policy, any arrival pattern and any mix of ``k``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import MicroBatchScheduler, ReadOnlyEngineError

#: Event-loop + worker-thread machinery: deadlocks must fail fast.
pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


def run(coroutine):
    return asyncio.run(coroutine)


async def _gather_searches(scheduler, requests):
    return await asyncio.gather(
        *(scheduler.search(node, k) for node, k in requests)
    )


class TestCorrectness:
    def test_burst_identical_to_direct_top_k(self, ranker):
        """A concurrent burst coalesces, and every answer is exact."""
        requests = [(node, 5) for node in range(20)]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=8, max_wait_ms=5.0
            ) as scheduler:
                return await _gather_searches(scheduler, requests)

        served = run(main())
        for (node, k), scheduled in zip(requests, served):
            direct = ranker.top_k(node, k)
            np.testing.assert_array_equal(scheduled.result.indices, direct.indices)
            np.testing.assert_allclose(
                scheduled.result.scores, direct.scores, rtol=0, atol=0
            )

    def test_mixed_k_coalesces_exactly(self, ranker):
        """Different k in one batch: solve for max k, truncate per query."""
        requests = [(1, 3), (2, 9), (3, 1), (4, 6), (5, 9), (6, 2)]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=16, max_wait_ms=10.0
            ) as scheduler:
                served = await _gather_searches(scheduler, requests)
                return served

        served = run(main())
        # All six landed in one dispatch (the window was generous).
        assert {scheduled.batch_size for scheduled in served} == {6}
        for (node, k), scheduled in zip(requests, served):
            direct = ranker.top_k(node, k)
            assert len(scheduled.result) == len(direct)
            np.testing.assert_array_equal(scheduled.result.indices, direct.indices)
            np.testing.assert_allclose(
                scheduled.result.scores, direct.scores, rtol=0, atol=0
            )

    def test_out_of_sample_identical(self, ranker):
        features = [
            ranker.graph.features[i] + 0.01 * (i + 1) for i in range(6)
        ]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=8, max_wait_ms=10.0
            ) as scheduler:
                return await asyncio.gather(
                    *(
                        scheduler.search_out_of_sample(feature, 4)
                        for feature in features
                    )
                )

        served = run(main())
        for feature, scheduled in zip(features, served):
            direct = ranker.top_k_out_of_sample(feature, 4)
            np.testing.assert_array_equal(scheduled.result.indices, direct.indices)
            np.testing.assert_allclose(
                scheduled.result.scores, direct.scores, rtol=0, atol=0
            )

    def test_sequential_requests_still_exact(self, ranker):
        """No concurrency: each request is a singleton batch."""

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=8, max_wait_ms=0.0
            ) as scheduler:
                out = []
                for node in (0, 7, 42):
                    out.append(await scheduler.search(node, 5))
                return out

        served = run(main())
        assert all(scheduled.batch_size == 1 for scheduled in served)
        for node, scheduled in zip((0, 7, 42), served):
            direct = ranker.top_k(node, 5)
            np.testing.assert_array_equal(scheduled.result.indices, direct.indices)


class TestCoalescingPolicy:
    def test_max_batch_size_respected(self, ranker):
        requests = [(node, 4) for node in range(30)]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=8, max_wait_ms=20.0
            ) as scheduler:
                served = await _gather_searches(scheduler, requests)
                return served, scheduler.batches_dispatched

        served, batches = run(main())
        assert all(1 <= scheduled.batch_size <= 8 for scheduled in served)
        # 30 requests at cap 8 need at least ceil(30/8) = 4 dispatches.
        assert batches >= 4

    def test_deadline_flushes_partial_batch(self, ranker):
        """A lone request departs at the deadline, not at batch-full."""

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=64, max_wait_ms=5.0
            ) as scheduler:
                loop = asyncio.get_running_loop()
                started = loop.time()
                scheduled = await scheduler.search(3, 5)
                return scheduled, loop.time() - started

        scheduled, elapsed = run(main())
        assert scheduled.batch_size == 1
        # Departed after the 5 ms window but far before any infinite wait.
        assert 0.004 <= elapsed < 5.0

    def test_batch_size_one_disables_coalescing(self, ranker):
        requests = [(node, 4) for node in range(12)]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=1, max_wait_ms=5.0
            ) as scheduler:
                return await _gather_searches(scheduler, requests)

        served = run(main())
        assert all(scheduled.batch_size == 1 for scheduled in served)

    def test_fairness_under_bursty_arrivals(self, ranker):
        """FIFO dispatch: an early request never waits on a later batch.

        Two bursts arrive back to back; every request of the first burst
        must be answered by a dispatch no later than any dispatch
        answering the second burst.
        """
        order: list[int] = []

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=4, max_wait_ms=1.0
            ) as scheduler:

                async def tracked(node, tag):
                    await scheduler.search(node, 3)
                    order.append(tag)

                first = [
                    asyncio.create_task(tracked(node, 0)) for node in range(8)
                ]
                await asyncio.sleep(0)  # first burst fully enqueued
                second = [
                    asyncio.create_task(tracked(node, 1))
                    for node in range(20, 28)
                ]
                await asyncio.gather(*first, *second)

        run(main())
        assert len(order) == 16
        # Completion tags must be non-decreasing burst-wise: once a
        # second-burst answer lands, no first-burst answer may follow.
        first_done = order.index(1) if 1 in order else len(order)
        assert all(tag == 1 for tag in order[first_done:])

    def test_stats_and_counters(self, ranker):
        metrics = ServiceMetrics()
        requests = [(node, 4) for node in range(10)]

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=8, max_wait_ms=5.0, metrics=metrics
            ) as scheduler:
                served = await _gather_searches(scheduler, requests)
                snapshot = scheduler.snapshot()
                return served, snapshot

        served, snapshot = run(main())
        assert snapshot["queries_dispatched"] == 10
        assert snapshot["batches_dispatched"] >= 2
        assert metrics.snapshot()["queries_batched"] == 10
        # Per-query pruning stats ride along with each answer.
        assert all(
            scheduled.stats is not None and scheduled.stats.clusters_total > 0
            for scheduled in served
        )


class TestValidationAndLifecycle:
    def test_invalid_node_rejected_before_enqueue(self, ranker):
        async def main():
            async with MicroBatchScheduler(ranker) as scheduler:
                with pytest.raises(ValueError, match="out of range"):
                    await scheduler.search(ranker.n_nodes + 5, 3)
                with pytest.raises(ValueError, match="k must be positive"):
                    await scheduler.search(0, 0)
                with pytest.raises(ValueError, match="shape"):
                    await scheduler.search_out_of_sample(np.zeros(3), 3)

        run(main())

    def test_not_running_raises(self, ranker):
        scheduler = MicroBatchScheduler(ranker)

        async def main():
            with pytest.raises(RuntimeError, match="not running"):
                await scheduler.search(0, 3)

        run(main())

    def test_bad_policy_rejected(self, ranker):
        with pytest.raises(ValueError, match="max_batch_size"):
            MicroBatchScheduler(ranker, max_batch_size=0)
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatchScheduler(ranker, max_wait_ms=-1.0)

    def test_huge_k_is_capped_not_allocated(self, ranker):
        """A client k beyond the database size must not size an allocation."""

        async def main():
            async with MicroBatchScheduler(ranker, max_wait_ms=0.0) as scheduler:
                return await scheduler.search(0, 10**12)

        scheduled = run(main())
        direct = ranker.top_k(0, ranker.n_nodes)
        np.testing.assert_array_equal(scheduled.result.indices, direct.indices)

    def test_cache_integration(self, ranker):
        cache = ResultCache(capacity=32)

        async def main():
            async with MicroBatchScheduler(
                ranker, max_wait_ms=0.0, cache=cache
            ) as scheduler:
                cold = await scheduler.search(5, 4)
                warm = await scheduler.search(5, 4)
                return cold, warm

        cold, warm = run(main())
        assert not cold.cached and warm.cached
        np.testing.assert_array_equal(cold.result.indices, warm.result.indices)
        assert cache.hits == 1 and cache.misses == 1


class TestMutationLanes:
    """Write entry points route through the engine worker (ISSUE 5)."""

    def _live(self, bridged_graph):
        from repro.core.live import LiveEngine

        return LiveEngine(
            bridged_graph.features.copy(), auto_rebuild_fraction=None
        )

    def test_insert_delete_rebuild_round_trip(self, bridged_graph):
        live = self._live(bridged_graph)
        feature = bridged_graph.features[2] + 0.01

        async def main():
            async with MicroBatchScheduler(live, max_wait_ms=0.0) as scheduler:
                new_id = await scheduler.insert(feature)
                served = await scheduler.search(2, 8)
                await scheduler.delete(new_id)
                ticket = await scheduler.trigger_rebuild(wait=True)
                after = await scheduler.search(2, 8)
                return new_id, served, ticket, after, scheduler.snapshot()

        new_id, served, ticket, after, snapshot = run(main())
        assert new_id == bridged_graph.n_nodes
        assert new_id in served.result.indices  # pending estimate, no rebuild
        assert ticket.done and ticket.error is None
        assert new_id not in after.result.indices
        assert live.epoch == 1
        assert snapshot["mutations_dispatched"] == 3
        live.close()

    def test_insert_validates_dimension(self, bridged_graph):
        live = self._live(bridged_graph)

        async def main():
            async with MicroBatchScheduler(live, max_wait_ms=0.0) as scheduler:
                await scheduler.insert(np.zeros(3))

        with pytest.raises(ValueError, match="shape"):
            run(main())
        live.close()

    def test_read_only_engine_refuses_writes(self, ranker):
        async def main():
            async with MicroBatchScheduler(ranker, max_wait_ms=0.0) as scheduler:
                await scheduler.insert(np.zeros(6))

        with pytest.raises(ReadOnlyEngineError, match="read-only"):
            run(main())

    def test_queries_keep_flowing_while_rebuild_waits(self, bridged_graph):
        """trigger_rebuild(wait=True) must not occupy the engine worker."""
        import threading

        live = self._live(bridged_graph)
        gate = threading.Event()
        entered = threading.Event()
        real = live._build_epoch

        def gated(indexed_ids, number):
            entered.set()
            assert gate.wait(30)
            return real(indexed_ids, number)

        live._build_epoch = gated

        async def main():
            async with MicroBatchScheduler(live, max_wait_ms=0.0) as scheduler:
                waiter = asyncio.create_task(scheduler.trigger_rebuild(wait=True))
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait, 30
                )
                # The rebuild is deterministically stuck; queries still run.
                served = await scheduler.search(0, 5)
                assert not waiter.done()
                gate.set()
                ticket = await waiter
                return served, ticket

        served, ticket = run(main())
        assert served.result.indices.shape[0] == 5
        assert ticket.error is None and live.epoch == 1
        live.close()
