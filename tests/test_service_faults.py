"""The chaos harness (repro.service.faults) and its serving-stack wiring.

A disarmed injector must be a no-op; an armed one must fail the stack
through the *same* paths as real faults (InjectedFault is a plain
RuntimeError → 500, queue stalls back pressure into admission control),
with reproducible draws and visible counters.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.index import MogulRanker
from repro.service.client import RequestFailedError, RetrievalClient
from repro.service.faults import (
    FAULTS_ENV_VAR,
    FaultInjector,
    FaultRule,
    InjectedFault,
    parse_fault_spec,
)
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import MicroBatchScheduler
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


def run(coroutine):
    return asyncio.run(coroutine)


class TestSpecParsing:
    def test_minimal_spec_defaults(self):
        (rule,) = parse_fault_spec("engine.solve:error")
        assert rule == FaultRule(
            site="engine.solve", kind="error", value_ms=0.0, probability=1.0
        )

    def test_full_spec_and_comma_list(self):
        rules = parse_fault_spec(
            "engine.solve:latency:25:0.5, server.response:error:0:0.1,"
        )
        assert len(rules) == 2
        assert rules[0].value_ms == 25.0 and rules[0].probability == 0.5
        assert rules[1].site == "server.response"

    @pytest.mark.parametrize(
        "spec",
        [
            "engine.solve",  # missing kind
            "a:b:c:d:e",  # too many fields
            "engine.solve:latency:abc",  # non-numeric value
            "engine.solve:latency:10:oops",  # non-numeric probability
            "engine.solve:explode",  # unknown kind
            "engine.solve:stall",  # kind not honored at site
            "scheduler.queue:error",  # kind not honored at site
            "engine.solve:latency:-5",  # negative duration
            "engine.solve:error:0:1.5",  # probability out of range
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_unknown_site_allowed_but_inert(self):
        # Forward compatibility: an unknown site parses (FAULT_SITES only
        # constrains known ones) and simply never fires.
        injector = FaultInjector.parse("future.site:error")
        assert injector.armed
        injector.maybe("engine.solve")  # no rules here: no-op


class TestInjector:
    def test_disarmed_is_inert(self):
        injector = FaultInjector()
        assert not injector.armed
        injector.maybe("engine.solve")
        assert injector.stall_seconds("scheduler.queue") == 0.0
        assert injector.counters() == {}

    def test_error_rule_raises_and_counts(self):
        injector = FaultInjector.parse("engine.solve:error")
        fired = []
        injector.on_inject = lambda: fired.append(1)
        with pytest.raises(InjectedFault) as excinfo:
            injector.maybe("engine.solve")
        assert excinfo.value.site == "engine.solve"
        assert injector.counters() == {"engine.solve:error": 1}
        assert fired == [1]

    def test_latency_rule_sleeps(self):
        injector = FaultInjector.parse("engine.solve:latency:40")
        started = time.perf_counter()
        injector.maybe("engine.solve")
        assert time.perf_counter() - started >= 0.035

    def test_stall_rule_returns_duration_without_blocking(self):
        injector = FaultInjector.parse("scheduler.queue:stall:75")
        started = time.perf_counter()
        stall = injector.stall_seconds("scheduler.queue")
        assert time.perf_counter() - started < 0.05  # asked, not slept
        assert stall == pytest.approx(0.075)

    def test_zero_probability_never_fires(self):
        injector = FaultInjector.parse("engine.solve:error:0:0")
        for _ in range(50):
            injector.maybe("engine.solve")
        assert injector.counters() == {}

    def test_probability_draws_reproducible(self):
        a = FaultInjector.parse("engine.solve:error:0:0.5", seed=7)
        b = FaultInjector.parse("engine.solve:error:0:0.5", seed=7)

        def pattern(injector):
            fired = []
            for _ in range(20):
                try:
                    injector.maybe("engine.solve")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        first, second = pattern(a), pattern(b)
        assert first == second
        assert any(first) and not all(first)

    def test_from_env(self):
        assert FaultInjector.from_env({}) is None
        assert FaultInjector.from_env({FAULTS_ENV_VAR: "  "}) is None
        injector = FaultInjector.from_env(
            {FAULTS_ENV_VAR: "engine.solve:latency:5"}
        )
        assert injector is not None and injector.armed

    def test_snapshot_lists_rules_and_counts(self):
        injector = FaultInjector.parse("engine.solve:error")
        with pytest.raises(InjectedFault):
            injector.maybe("engine.solve")
        snapshot = injector.snapshot()
        assert snapshot["armed"] is True
        assert snapshot["rules"] == [
            {
                "site": "engine.solve",
                "kind": "error",
                "value_ms": 0.0,
                "probability": 1.0,
            }
        ]
        assert snapshot["injected"] == {"engine.solve:error": 1}


class TestSchedulerIntegration:
    def test_engine_fault_fails_batch_scheduler_survives(self, ranker):
        faults = FaultInjector.parse("engine.solve:error:0:0.5")
        metrics = ServiceMetrics()

        async def main():
            async with MicroBatchScheduler(
                ranker, max_batch_size=1, max_wait_ms=0.0,
                metrics=metrics, faults=faults,
            ) as scheduler:
                outcomes = []
                for node in range(12):
                    try:
                        outcomes.append(await scheduler.search(node, 5))
                    except InjectedFault as fault:
                        outcomes.append(fault)
                return outcomes

        outcomes = run(main())
        failures = [o for o in outcomes if isinstance(o, InjectedFault)]
        answers = [o for o in outcomes if not isinstance(o, Exception)]
        assert failures and answers  # chaos fired, and the stack survived
        # Answers that did come back are still exact.
        for node, outcome in enumerate(outcomes):
            if not isinstance(outcome, Exception):
                direct = ranker.top_k(node, 5)
                assert list(outcome.result.indices) == list(direct.indices)


class TestServerIntegration:
    def test_response_fault_is_500_server_keeps_serving(self, ranker):
        faults = FaultInjector.parse("server.response:error")
        with BackgroundServer(
            ranker, port=0, cache_capacity=0, faults=faults
        ) as server:
            with RetrievalClient(port=server.port) as client:
                with pytest.raises(RequestFailedError) as excinfo:
                    client.search(1, k=5)
                assert excinfo.value.status == 500
                assert "injected fault" in str(excinfo.value)
                # Liveness endpoints don't consult the chaos site.
                assert client.healthz()["status"] == "ok"
                metrics = client.metrics()
                assert metrics["admission"]["faults_injected_total"] >= 1
                assert "repro_faults_injected_total" in (
                    client.prometheus_metrics()
                )
                stats = client.stats()
                assert stats["scheduler"]["faults"]["armed"] is True

    def test_engine_fault_maps_to_500_and_recovers(self, ranker):
        faults = FaultInjector.parse("engine.solve:error:0:0.5")
        with BackgroundServer(
            ranker, port=0, cache_capacity=0, faults=faults
        ) as server:
            with RetrievalClient(port=server.port) as client:
                statuses = []
                for node in range(12):
                    try:
                        client.search(node, k=5)
                        statuses.append(200)
                    except RequestFailedError as fail:
                        statuses.append(fail.status)
                assert 500 in statuses and 200 in statuses

    def test_client_retries_ride_out_response_faults(self, ranker):
        faults = FaultInjector.parse("server.response:error:0:0.5")
        with BackgroundServer(
            ranker, port=0, cache_capacity=0, faults=faults
        ) as server:
            with RetrievalClient(
                port=server.port, retries=8, backoff_ms=1.0, backoff_cap_ms=5.0
            ) as client:
                # With 8 budgeted retries against p=0.5 faults, every
                # search should eventually land.
                for node in range(10):
                    payload = client.search(node, k=5)
                    assert payload["indices"]
                assert client.counters["retries"] >= 1
