"""Tests for the RCM ordering and bandwidth/profile diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.ordering import (
    apply_order,
    bandwidth,
    profile,
    reverse_cuthill_mckee,
)
from tests.conftest import random_symmetric_adjacency


def path_graph(n: int) -> sp.csr_matrix:
    rows = np.arange(n - 1)
    data = np.ones(n - 1)
    upper = sp.csr_matrix((data, (rows, rows + 1)), shape=(n, n))
    return (upper + upper.T).tocsr()


class TestRcm:
    def test_is_a_permutation(self):
        adjacency = random_symmetric_adjacency(40, seed=1)
        order = reverse_cuthill_mckee(adjacency)
        np.testing.assert_array_equal(np.sort(order), np.arange(40))

    def test_path_graph_is_optimal(self):
        """A path admits bandwidth 1; RCM must find it."""
        adjacency = path_graph(25)
        # scramble first so the input order carries no hint
        rng = np.random.default_rng(3)
        scramble = rng.permutation(25)
        scrambled = apply_order(adjacency, scramble)
        order = reverse_cuthill_mckee(scrambled)
        assert bandwidth(apply_order(scrambled, order)) == 1

    def test_reduces_bandwidth_vs_random(self):
        adjacency = random_symmetric_adjacency(60, density=0.05, seed=5)
        rng = np.random.default_rng(0)
        random_order = rng.permutation(60)
        rcm_order = reverse_cuthill_mckee(adjacency)
        bw_random = bandwidth(apply_order(adjacency, random_order))
        bw_rcm = bandwidth(apply_order(adjacency, rcm_order))
        assert bw_rcm <= bw_random

    def test_handles_disconnected_components(self):
        a = path_graph(6)
        blocks = sp.block_diag([a, a, a]).tocsr()
        order = reverse_cuthill_mckee(blocks)
        np.testing.assert_array_equal(np.sort(order), np.arange(18))
        assert bandwidth(apply_order(blocks, order)) == 1

    def test_single_node(self):
        order = reverse_cuthill_mckee(sp.csr_matrix((1, 1)))
        np.testing.assert_array_equal(order, [0])

    def test_edgeless_graph(self):
        order = reverse_cuthill_mckee(sp.csr_matrix((5, 5)))
        np.testing.assert_array_equal(np.sort(order), np.arange(5))

    def test_deterministic(self):
        adjacency = random_symmetric_adjacency(30, seed=9)
        a = reverse_cuthill_mckee(adjacency)
        b = reverse_cuthill_mckee(adjacency)
        np.testing.assert_array_equal(a, b)

    @settings(deadline=None, max_examples=30)
    @given(
        n=st.integers(min_value=2, max_value=40),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_valid_permutation(self, n, seed):
        adjacency = random_symmetric_adjacency(n, seed=seed)
        order = reverse_cuthill_mckee(adjacency)
        np.testing.assert_array_equal(np.sort(order), np.arange(n))


class TestDiagnostics:
    def test_bandwidth_of_diagonal_is_zero(self):
        assert bandwidth(sp.identity(5, format="csr")) == 0

    def test_bandwidth_of_empty_is_zero(self):
        assert bandwidth(sp.csr_matrix((4, 4))) == 0

    def test_bandwidth_of_path(self):
        assert bandwidth(path_graph(10)) == 1

    def test_profile_of_path(self):
        # each row i>0 reaches back exactly one column
        assert profile(path_graph(10)) == 9

    def test_profile_monotone_under_rcm(self):
        adjacency = random_symmetric_adjacency(50, density=0.06, seed=2)
        rng = np.random.default_rng(1)
        random_order = rng.permutation(50)
        p_random = profile(apply_order(adjacency, random_order))
        p_rcm = profile(apply_order(adjacency, reverse_cuthill_mckee(adjacency)))
        assert p_rcm <= p_random
