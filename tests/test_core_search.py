"""Tests for Algorithm 2 (top_k_search) and the MogulRanker facade.

The central correctness property (paper §4.3): with pruning enabled the
returned answers are **exactly** the top-k of the full approximate score
vector — the bounds may only skip clusters that provably contain no
answer.  We verify it by brute force across graphs, queries, and k.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import MogulIndex, MogulRanker
from repro.ranking import ExactRanker
from repro.ranking.base import rank_scores
from tests.conftest import graph_from_adjacency, random_symmetric_adjacency
from tests.test_core_permutation import random_labels


def assert_same_answers(result, reference):
    """Tie-tolerant top-k comparison: score sequences must match exactly;
    indices must match wherever the score is unique."""
    np.testing.assert_allclose(result.scores, reference.scores, atol=1e-12)
    for pos, (i, j) in enumerate(zip(result.indices, reference.indices)):
        if i != j:
            assert result.scores[pos] == pytest.approx(reference.scores[pos])


class TestAlgorithmTwoEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_matches_bruteforce_of_approx_scores(self, bridged_graph, k):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        for query in (0, 17, 44, 80):
            full = ranker.scores(query)
            reference = rank_scores(full, k, exclude=query)
            result = ranker.top_k(query, k)
            assert_same_answers(result, reference)

    def test_include_query(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.9)
        query = 12
        full = ranker.scores(query)
        reference = rank_scores(full, 5)
        result = ranker.top_k(query, 5, exclude_query=False)
        assert_same_answers(result, reference)

    def test_ablations_agree_on_answers(self, bridged_graph):
        """All three Figure 5 configurations return the same answer set —
        they only differ in how much work they do."""
        query, k = 7, 6
        full = MogulRanker(bridged_graph, alpha=0.95)
        no_est = MogulRanker(bridged_graph, alpha=0.95, use_pruning=False)
        plain = MogulRanker(bridged_graph, alpha=0.95, use_sparsity=False)
        r_full = full.top_k(query, k)
        r_no_est = no_est.top_k(query, k)
        r_plain = plain.top_k(query, k)
        assert_same_answers(r_no_est, r_full)
        assert_same_answers(r_plain, r_full)

    def test_bound_desc_order_agrees(self, bridged_graph):
        query, k = 31, 5
        index_order = MogulRanker(bridged_graph, alpha=0.95)
        bound_order = MogulRanker(bridged_graph, alpha=0.95, cluster_order="bound_desc")
        assert_same_answers(
            bound_order.top_k(query, k), index_order.top_k(query, k)
        )

    def test_stats_populated(self, bridged_graph):
        ranker = MogulRanker(bridged_graph)
        ranker.top_k(0, 5)
        stats = ranker.last_stats
        assert stats is not None
        assert stats.clusters_total == ranker.index.n_clusters
        assert stats.nodes_scored > 0
        assert 0.0 <= stats.prune_fraction <= 1.0

    def test_pruning_skips_clusters_on_clustered_data(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        ranker.top_k(0, 5)
        assert ranker.last_stats.clusters_pruned > 0

    def test_invalid_inputs(self, bridged_graph):
        ranker = MogulRanker(bridged_graph)
        with pytest.raises(ValueError):
            ranker.top_k(0, 0)
        with pytest.raises(ValueError):
            ranker.top_k(bridged_graph.n_nodes, 5)
        with pytest.raises(ValueError, match="cluster_order"):
            MogulRanker(bridged_graph, cluster_order="typo").top_k(0, 5)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        n_clusters=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=300),
        k=st.integers(min_value=1, max_value=8),
        alpha=st.floats(min_value=0.1, max_value=0.99),
    )
    def test_property_equivalence(self, n, n_clusters, seed, k, alpha):
        """Algorithm 2 == brute force over random graphs, clusterings,
        queries, k and alpha."""
        adjacency = random_symmetric_adjacency(n, seed=seed)
        graph = graph_from_adjacency(adjacency)
        labels = random_labels(n, n_clusters, seed)
        ranker = MogulRanker(graph, alpha=alpha, cluster_labels=labels)
        query = seed % n
        full = ranker.scores(query)
        reference = rank_scores(full, k, exclude=query)
        # negative approximate scores rank below the dummy floor of 0: the
        # algorithm may legitimately return fewer answers, matching only
        # the non-negative prefix.
        non_negative = reference.scores >= 0
        result = ranker.top_k(query, k)
        assert len(result) >= int(non_negative.sum())
        prefix = int(non_negative.sum())
        np.testing.assert_allclose(
            result.scores[:prefix], reference.scores[:prefix], atol=1e-12
        )


class TestMogulE:
    def test_matches_inverse_exactly(self, bridged_graph):
        exact = ExactRanker(bridged_graph, alpha=0.99)
        mogul_e = MogulRanker(bridged_graph, alpha=0.99, exact=True)
        for query in (0, 40, 83):
            np.testing.assert_allclose(
                mogul_e.scores(query), exact.scores(query), atol=1e-10
            )

    def test_top_k_matches_inverse(self, bridged_graph):
        exact = ExactRanker(bridged_graph, alpha=0.99)
        mogul_e = MogulRanker(bridged_graph, alpha=0.99, exact=True)
        for query in (5, 50):
            ref = exact.top_k(query, 8)
            got = mogul_e.top_k(query, 8)
            assert_same_answers(got, ref)

    def test_denser_factor_than_incomplete(self, clustered_graph):
        approx = MogulRanker(clustered_graph)
        exact = MogulRanker(clustered_graph, exact=True)
        assert exact.index.factors.nnz >= approx.index.factors.nnz

    def test_name_reflects_variant(self, clustered_graph):
        assert MogulRanker(clustered_graph).name == "Mogul"
        assert MogulRanker(clustered_graph, exact=True).name == "MogulE"


class TestMogulIndex:
    def test_build_validation(self, clustered_graph):
        with pytest.raises(ValueError, match="factorization"):
            MogulIndex.build(clustered_graph, factorization="cholmod")
        with pytest.raises(ValueError, match="alpha"):
            MogulIndex.build(clustered_graph, alpha=1.5)

    def test_cluster_members_partition_nodes(self, clustered_graph):
        index = MogulIndex.build(clustered_graph)
        all_nodes = np.concatenate(index.cluster_members)
        np.testing.assert_array_equal(
            np.sort(all_nodes), np.arange(clustered_graph.n_nodes)
        )

    def test_cluster_means_match_members(self, clustered_graph):
        index = MogulIndex.build(clustered_graph)
        for cid, members in enumerate(index.cluster_members):
            if members.size:
                np.testing.assert_allclose(
                    index.cluster_means[cid],
                    clustered_graph.features[members].mean(axis=0),
                    atol=1e-12,
                )

    def test_bounds_one_per_interior_cluster(self, clustered_graph):
        index = MogulIndex.build(clustered_graph)
        assert len(index.bounds) == index.n_clusters - 1

    def test_n_nodes(self, clustered_graph):
        index = MogulIndex.build(clustered_graph)
        assert index.n_nodes == clustered_graph.n_nodes
