"""Tests for the dynamic (buffered-write) layer over the Mogul index.

Key guarantees:

* ids are stable across rebuilds; deleted ids never reappear;
* queries against a fresh database with zero pending points behave
  exactly like a plain MogulRanker;
* pending points are findable immediately after insertion and their
  buffered estimates approach the post-rebuild scores;
* tombstoned points never appear in answers, as query or answer;
* the automatic rebuild policy fires at the configured buffer fraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicMogulRanker, rank_scores_by_pairs
from repro.core.index import MogulRanker
from repro.graph.build import build_knn_graph
from tests.conftest import three_cluster_features


@pytest.fixture()
def db():
    features, labels = three_cluster_features(per_cluster=40)
    return (
        DynamicMogulRanker(features, alpha=0.95, auto_rebuild_fraction=None),
        features,
        labels,
    )


class TestStaticEquivalence:
    def test_matches_plain_ranker_when_no_writes(self, db):
        dynamic, features, _ = db
        plain = MogulRanker(build_knn_graph(features, k=5), alpha=0.95)
        for query in (0, 17, 80):
            a = dynamic.top_k(query, 6)
            b = plain.top_k(query, 6)
            np.testing.assert_array_equal(a.indices, b.indices)
            np.testing.assert_allclose(a.scores, b.scores, atol=1e-12)

    def test_out_of_sample_matches_plain(self, db):
        dynamic, features, _ = db
        plain = MogulRanker(build_knn_graph(features, k=5), alpha=0.95)
        feature = features[3] + 0.01
        a = dynamic.top_k_out_of_sample(feature, 5)
        b = plain.top_k_out_of_sample(feature, 5)
        np.testing.assert_array_equal(a.indices, b.indices)


class TestInsertion:
    def test_new_point_is_findable_immediately(self, db):
        dynamic, features, labels = db
        # A point in the middle of cluster 1 (nodes 40-79).
        new_feature = features[labels == 1].mean(axis=0)
        new_id = dynamic.add(new_feature)
        assert new_id == features.shape[0]
        assert dynamic.n_pending == 1
        result = dynamic.top_k(45, 10)
        assert new_id in result.indices.tolist()

    def test_pending_query_works(self, db):
        dynamic, features, labels = db
        new_id = dynamic.add(features[labels == 2].mean(axis=0))
        result = dynamic.top_k(new_id, 8)
        assert new_id not in result.indices  # excluded as the query
        answer_labels = labels[result.indices[result.indices < len(labels)]]
        assert np.mean(answer_labels == 2) >= 0.75

    def test_estimate_approaches_rebuilt_score(self, db):
        dynamic, features, labels = db
        anchor = int(np.flatnonzero(labels == 0)[5])
        new_id = dynamic.add(features[labels == 0].mean(axis=0))
        before = dynamic.top_k(anchor, 15)
        position_before = before.indices.tolist().index(new_id)
        dynamic.rebuild()
        after = dynamic.top_k(anchor, 15)
        assert new_id in after.indices.tolist()
        position_after = after.indices.tolist().index(new_id)
        # The buffered estimate put the point in roughly the right region
        # of the ranking (within a handful of positions of its true rank).
        assert abs(position_before - position_after) <= 8

    def test_ids_stable_across_rebuilds(self, db):
        dynamic, features, _ = db
        ids = [dynamic.add(features[i] + 0.01) for i in range(5)]
        dynamic.rebuild()
        more = [dynamic.add(features[i] - 0.01) for i in range(3)]
        assert ids == list(range(120, 125))
        assert more == list(range(125, 128))
        assert dynamic.n_indexed == 125
        assert dynamic.n_pending == 3

    def test_wrong_dimension_rejected(self, db):
        dynamic, _, _ = db
        with pytest.raises(ValueError, match="shape"):
            dynamic.add(np.zeros(3))


class TestDeletion:
    def test_removed_point_never_answers(self, db):
        dynamic, features, _ = db
        victim = int(dynamic.top_k(0, 1).indices[0])
        dynamic.remove(victim)
        result = dynamic.top_k(0, 20)
        assert victim not in result.indices.tolist()

    def test_removed_point_cannot_query(self, db):
        dynamic, _, _ = db
        dynamic.remove(7)
        with pytest.raises(ValueError, match="removed"):
            dynamic.top_k(7, 5)

    def test_double_remove_rejected(self, db):
        dynamic, _, _ = db
        dynamic.remove(7)
        with pytest.raises(ValueError, match="already"):
            dynamic.remove(7)

    def test_removed_leaves_graph_at_rebuild(self, db):
        dynamic, _, _ = db
        dynamic.remove(7)
        assert dynamic.n_indexed == 120  # still in the graph
        dynamic.rebuild()
        assert dynamic.n_indexed == 119  # gone after rebuild
        result = dynamic.top_k(0, 20)
        assert 7 not in result.indices.tolist()

    def test_pending_point_can_be_removed(self, db):
        dynamic, features, _ = db
        new_id = dynamic.add(features[0] + 0.005)
        dynamic.remove(new_id)
        result = dynamic.top_k(0, 20)
        assert new_id not in result.indices.tolist()

    def test_live_count(self, db):
        dynamic, features, _ = db
        assert dynamic.n_live == 120
        dynamic.add(features[0] + 0.01)
        assert dynamic.n_live == 121
        dynamic.remove(0)
        assert dynamic.n_live == 120


class TestRebuildPolicy:
    def test_auto_rebuild_fires(self):
        features, _ = three_cluster_features(per_cluster=20)
        dynamic = DynamicMogulRanker(
            features, alpha=0.95, auto_rebuild_fraction=0.1
        )
        rng = np.random.default_rng(0)
        for _ in range(7):  # 10% of 60 = 6 pending triggers at the 7th
            dynamic.add(features[0] + rng.normal(scale=0.01, size=features.shape[1]))
        assert dynamic.rebuild_count >= 1
        assert dynamic.n_pending < 7

    def test_manual_only_when_disabled(self, db):
        dynamic, features, _ = db
        for i in range(30):
            dynamic.add(features[i % 120] + 0.01)
        assert dynamic.rebuild_count == 0
        assert dynamic.n_pending == 30
        dynamic.rebuild()
        assert dynamic.rebuild_count == 1
        assert dynamic.n_pending == 0

    def test_validation(self):
        features, _ = three_cluster_features(per_cluster=10)
        with pytest.raises(ValueError, match="auto_rebuild_fraction"):
            DynamicMogulRanker(features, auto_rebuild_fraction=0.0)
        with pytest.raises(ValueError, match="pending_penalty"):
            DynamicMogulRanker(features, pending_penalty=0.0)
        with pytest.raises(ValueError, match="2 rows"):
            DynamicMogulRanker(features[:1])


class TestPairRanking:
    def test_orders_and_dedups(self):
        result = rank_scores_by_pairs(
            np.asarray([5, 3, 5, 9]), np.asarray([0.1, 0.5, 0.4, 0.4])
        )
        np.testing.assert_array_equal(result.indices, [3, 5, 9])
        np.testing.assert_allclose(result.scores, [0.5, 0.4, 0.4])


class TestBatchedInterleaved:
    """Batched answers must match sequential after any mutation burst.

    Property-style sweep: random interleavings of inserts, deletes and
    rebuilds, then `top_k_batch` over a mixed (indexed + pending) query
    set, compared per-query against sequential `top_k` — on both the
    single-index and the sharded base engine.
    """

    @pytest.mark.parametrize("n_shards", [1, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batch_matches_sequential_after_mutations(self, n_shards, seed):
        rng = np.random.default_rng(seed)
        features, _ = three_cluster_features(per_cluster=30)
        dynamic = DynamicMogulRanker(
            features,
            alpha=0.95,
            auto_rebuild_fraction=None,
            n_shards=n_shards,
        )
        live = set(range(dynamic.n_total))
        for _ in range(25):
            action = rng.random()
            if action < 0.55:
                base = features[int(rng.integers(0, features.shape[0]))]
                new_id = dynamic.add(base + rng.normal(scale=0.05, size=8))
                live.add(new_id)
            elif action < 0.8 and len(live) > 10:
                victim = int(rng.choice(sorted(live)))
                dynamic.remove(victim)
                live.discard(victim)
            else:
                dynamic.rebuild()
        queries = rng.choice(sorted(live), size=12, replace=False)
        batched = dynamic.top_k_batch(queries, 7)
        for query, batch_answer in zip(queries, batched):
            sequential = dynamic.top_k(int(query), 7)
            np.testing.assert_array_equal(
                batch_answer.indices, sequential.indices
            )
            np.testing.assert_array_equal(
                batch_answer.scores, sequential.scores
            )

    def test_batch_rejects_tombstoned_query(self):
        features, _ = three_cluster_features(per_cluster=20)
        dynamic = DynamicMogulRanker(features, auto_rebuild_fraction=None)
        dynamic.remove(3)
        with pytest.raises(ValueError, match="removed"):
            dynamic.top_k_batch([0, 3], 5)

    def test_sharded_engine_exposed(self):
        features, _ = three_cluster_features(per_cluster=20)
        dynamic = DynamicMogulRanker(
            features, auto_rebuild_fraction=None, n_shards=2
        )
        assert dynamic.engine.index.n_shards == 2
        assert dynamic.top_k(0, 5).indices.shape[0] == 5
