"""Tests for the per-cluster packed substitution engine (repro.core.solver).

The :class:`ClusterSolver` is the production tier of Lemmas 4/5; every
result must agree with the readable per-row reference functions in
:mod:`repro.linalg.triangular` to machine precision, for both
factorizations, and the structural preconditions must be enforced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.permutation import build_permutation
from repro.core.solver import ClusterSolver
from repro.linalg.ldl import complete_ldl, incomplete_ldl
from repro.linalg.packed import HAVE_SUPERLU_GSTRS
from repro.linalg.triangular import (
    back_substitute,
    forward_substitute,
    forward_substitute_rows,
    ldl_solve,
)
from repro.ranking.normalize import ranking_matrix


def build_parts(graph, alpha=0.95, factorize=incomplete_ldl):
    permutation = build_permutation(graph.adjacency)
    w = permutation.permute_matrix(ranking_matrix(graph.adjacency, alpha))
    factors = factorize(w)
    return permutation, factors


@pytest.fixture(scope="module", params=["incomplete", "complete"])
def solver_parts(request, bridged_graph):
    factorize = incomplete_ldl if request.param == "incomplete" else complete_ldl
    permutation, factors = build_parts(bridged_graph, factorize=factorize)
    return permutation, factors, ClusterSolver(factors, permutation)


class TestFullSolves:
    def test_solve_matches_ldl_solve(self, solver_parts):
        permutation, factors, solver = solver_parts
        rng = np.random.default_rng(0)
        for _ in range(3):
            q = rng.normal(size=factors.n)
            np.testing.assert_allclose(
                solver.solve(q), ldl_solve(factors, q), atol=1e-10
            )

    def test_forward_full_matches_reference(self, solver_parts):
        permutation, factors, solver = solver_parts
        q = np.random.default_rng(1).normal(size=factors.n)
        np.testing.assert_allclose(
            solver.forward_full(q), forward_substitute(factors, q), atol=1e-10
        )

    def test_back_full_matches_reference(self, solver_parts):
        permutation, factors, solver = solver_parts
        y = np.random.default_rng(2).normal(size=factors.n)
        np.testing.assert_allclose(
            solver.back_full(y), back_substitute(factors, y), atol=1e-10
        )


class TestRestrictedSolves:
    def test_forward_restricted_matches_rows_reference(self, solver_parts):
        permutation, factors, solver = solver_parts
        border = permutation.border_slice
        for cid in range(permutation.n_clusters - 1):
            sl = permutation.cluster_slices[cid]
            q = np.zeros(factors.n)
            q[sl.start] = 1.0  # seed inside cluster cid
            rows = list(range(sl.start, sl.stop)) + list(
                range(border.start, border.stop)
            )
            expected = forward_substitute_rows(factors, q, rows)
            np.testing.assert_allclose(
                solver.forward(q, [cid]), expected, atol=1e-10
            )

    def test_restricted_scores_match_full_solve(self, solver_parts):
        """Lemmas 4+5 chained: any cluster's scores from the restricted
        path equal the same positions of the full solve."""
        permutation, factors, solver = solver_parts
        border = permutation.border_slice
        q = np.zeros(factors.n)
        seed_cluster = 0
        q[permutation.cluster_slices[seed_cluster].start] = 0.01
        full = solver.solve(q)
        for cid in range(permutation.n_clusters):
            restricted = solver.solve_restricted(q, [seed_cluster], [cid])
            sl = permutation.cluster_slices[cid]
            np.testing.assert_allclose(
                restricted[sl], full[sl], atol=1e-10,
                err_msg=f"cluster {cid} scores diverge",
            )
            np.testing.assert_allclose(
                restricted[border], full[border], atol=1e-10
            )

    def test_multi_seed_forward(self, solver_parts):
        permutation, factors, solver = solver_parts
        q = np.zeros(factors.n)
        first = permutation.cluster_slices[0]
        second = permutation.cluster_slices[1]
        q[first.start] = 0.6
        q[second.start] = 0.4
        reference = forward_substitute(factors, q)
        y = solver.forward(q, [0, 1])
        border = permutation.border_slice
        for sl in (first, second, border):
            np.testing.assert_allclose(y[sl], reference[sl], atol=1e-10)

    def test_border_seed_cluster(self, solver_parts):
        """A query living in the border cluster is a valid seed set."""
        permutation, factors, solver = solver_parts
        border = permutation.border_slice
        if border.stop == border.start:
            pytest.skip("graph produced an empty border")
        q = np.zeros(factors.n)
        q[border.start] = 1.0
        y = solver.forward(q, [permutation.border_cluster])
        expected = forward_substitute(factors, q)
        np.testing.assert_allclose(y[border], expected[border], atol=1e-10)


class TestValidation:
    def test_size_mismatch_raises(self, bridged_graph, small_ring_graph):
        perm_small = build_permutation(small_ring_graph.adjacency)
        _, factors_big = build_parts(bridged_graph)
        with pytest.raises(ValueError, match="permutation"):
            ClusterSolver(factors_big, perm_small)

    def test_structure_mismatch_raises(self, bridged_graph):
        """Factors computed under a different permutation violate the
        bordered-block-diagonal precondition and must be rejected."""
        permutation = build_permutation(bridged_graph.adjacency)
        w_unpermuted = ranking_matrix(bridged_graph.adjacency, 0.95)
        factors_wrong = incomplete_ldl(w_unpermuted)  # no permutation applied
        if permutation.n_clusters < 3:
            pytest.skip("graph too small to expose a structure mismatch")
        with pytest.raises(ValueError, match="do not match this permutation"):
            ClusterSolver(factors_wrong, permutation)

    @pytest.mark.skipif(not HAVE_SUPERLU_GSTRS, reason="no SuperLU kernel")
    def test_fallback_tier_agrees(self, bridged_graph):
        permutation, factors = build_parts(bridged_graph)
        fast = ClusterSolver(factors, permutation, use_superlu=True)
        slow = ClusterSolver(factors, permutation, use_superlu=False)
        q = np.zeros(factors.n)
        q[0] = 1.0
        np.testing.assert_allclose(fast.solve(q), slow.solve(q), atol=1e-12)
        y_fast = fast.forward(q, [int(permutation.cluster_of_position[0])])
        y_slow = slow.forward(q, [int(permutation.cluster_of_position[0])])
        np.testing.assert_allclose(y_fast, y_slow, atol=1e-12)


class TestMultiRHS:
    """Every ClusterSolver method on (n, b) right-hand sides must equal
    the per-column single-RHS calls bitwise — the property the batched
    engine's exactness rests on."""

    def test_full_solves_match_columns(self, solver_parts):
        _, factors, solver = solver_parts
        b = np.random.default_rng(7).normal(size=(factors.n, 5))
        forward = solver.forward_full(b)
        back = solver.back_full(b)
        full = solver.solve(b)
        for j in range(5):
            np.testing.assert_array_equal(forward[:, j], solver.forward_full(b[:, j]))
            np.testing.assert_array_equal(back[:, j], solver.back_full(b[:, j]))
            np.testing.assert_array_equal(full[:, j], solver.solve(b[:, j]))

    def test_restricted_passes_match_columns(self, solver_parts):
        permutation, factors, solver = solver_parts
        rng = np.random.default_rng(8)
        seed_cluster = 0
        sl = permutation.cluster_slices[seed_cluster]
        q = np.zeros((factors.n, 3))
        q[sl.start : sl.stop] = rng.normal(size=(sl.stop - sl.start, 3))
        y = solver.forward(q, [seed_cluster])
        x = np.zeros((factors.n, 3))
        solver.back_border(y, x)
        solver.back_cluster(seed_cluster, y, x)
        other = 1 if permutation.n_clusters > 2 else seed_cluster
        solver.back_cluster(other, y, x)
        for j in range(3):
            y_ref = solver.forward(q[:, j], [seed_cluster])
            np.testing.assert_array_equal(y[:, j], y_ref)
            x_ref = np.zeros(factors.n)
            solver.back_border(y_ref, x_ref)
            solver.back_cluster(seed_cluster, y_ref, x_ref)
            solver.back_cluster(other, y_ref, x_ref)
            np.testing.assert_array_equal(x[:, j], x_ref)

    def test_column_subset_touches_only_those_columns(self, solver_parts):
        permutation, factors, solver = solver_parts
        rng = np.random.default_rng(9)
        sl = permutation.cluster_slices[0]
        q = np.zeros((factors.n, 4))
        q[sl.start : sl.stop] = rng.normal(size=(sl.stop - sl.start, 4))
        z = np.zeros((factors.n, 4))
        y = np.zeros((factors.n, 4))
        cols = np.asarray([1, 3])
        solver.forward_seed_block(0, q, z, y, cols=cols)
        assert np.all(y[:, [0, 2]] == 0.0)
        solver.forward_border(q, z, y)
        x = np.zeros((factors.n, 4))
        solver.back_border(y, x)
        solver.back_cluster(0, y, x, cols=cols)
        for j in cols:
            y_ref = solver.forward(q[:, j], [0])
            np.testing.assert_array_equal(y[:, j], y_ref)
            x_ref = np.zeros(factors.n)
            solver.back_border(y_ref, x_ref)
            solver.back_cluster(0, y_ref, x_ref)
            np.testing.assert_array_equal(x[:, j], x_ref)
        assert np.all(x[: permutation.border_slice.start, [0, 2]] == 0.0)

    def test_back_all_interior_matrix_rhs(self, solver_parts):
        permutation, factors, solver = solver_parts
        rng = np.random.default_rng(10)
        y = rng.normal(size=(factors.n, 3))
        x = np.zeros((factors.n, 3))
        solver.back_border(y, x)
        solver.back_all_interior(y, x)
        for j in range(3):
            x_ref = np.zeros(factors.n)
            solver.back_border(y[:, j], x_ref)
            solver.back_all_interior(y[:, j], x_ref)
            np.testing.assert_array_equal(x[:, j], x_ref)
