"""Regression: ambient engine stats must not tear across threads.

Engines publish the counters of the most recent call through ambient
attributes (``last_stats``, ``last_batch_stats``, ``last_shard_stats``).
Those used to be plain instance attributes — two concurrent solves on
one engine could each read back the *other* call's counters (or a torn
mix).  They are per-thread now (:class:`repro.ranking.base.
AmbientStatsMixin`); these tests hammer one engine from two threads and
assert every reader observes exactly its own call's stats.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.index import MogulIndex, MogulRanker
from repro.core.sharded import ShardedMogulIndex, ShardedMogulRanker
from repro.graph.build import build_knn_graph

pytestmark = pytest.mark.timeout(120)

ITERATIONS = 150


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(7)
    a = rng.normal(scale=0.6, size=(60, 8))
    b = rng.normal(scale=0.6, size=(60, 8)) + 4.0
    c = rng.normal(scale=0.6, size=(60, 8)) - 4.0
    return build_knn_graph(np.vstack([a, b, c]), k=5)


def _stat_key(stats):
    return (
        stats.clusters_pruned,
        stats.clusters_scored,
        stats.nodes_scored,
        stats.bound_evaluations,
    )


def _distinct_queries(ranker, k: int = 10) -> tuple[int, int]:
    """Two queries whose pruning counters differ (so mixing is visible)."""
    baseline = None
    first = None
    for query in range(ranker.n_nodes):
        ranker.top_k(query, k)
        key = _stat_key(ranker.last_stats)
        if baseline is None:
            baseline, first = key, query
        elif key != baseline:
            return first, query
    pytest.skip("no query pair with distinct stats on this graph")


def _hammer(ranker, calls, n_threads: int = 2):
    """Run ``calls[i]()`` in its own thread, collecting assertion failures."""
    barrier = threading.Barrier(len(calls))
    failures: list[BaseException] = []

    def runner(call):
        barrier.wait()
        try:
            for _ in range(ITERATIONS):
                call()
        except BaseException as error:  # noqa: BLE001 - reported below
            failures.append(error)

    threads = [threading.Thread(target=runner, args=(c,)) for c in calls]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestSingleQueryStats:
    @pytest.mark.parametrize("engine_kind", ["flat", "sharded"])
    def test_two_threads_never_mix_last_stats(self, graph, engine_kind):
        if engine_kind == "flat":
            ranker = MogulRanker.from_index(graph, MogulIndex.build(graph))
        else:
            ranker = ShardedMogulRanker.from_index(
                graph, ShardedMogulIndex.build(graph, 3)
            )
        qa, qb = _distinct_queries(ranker)
        ranker.top_k(qa, 10)
        expected_a = _stat_key(ranker.last_stats)
        ranker.top_k(qb, 10)
        expected_b = _stat_key(ranker.last_stats)
        assert expected_a != expected_b

        def call_for(query, expected):
            def call():
                result, stats = ranker.top_k_with_stats(query, 10)
                assert _stat_key(stats) == expected
                # The ambient read on this thread sees this thread's call.
                assert _stat_key(ranker.last_stats) == expected

            return call

        _hammer(ranker, [call_for(qa, expected_a), call_for(qb, expected_b)])


class TestBatchAndShardStats:
    def test_two_threads_never_mix_batch_or_shard_stats(self, graph):
        ranker = ShardedMogulRanker.from_index(
            graph, ShardedMogulIndex.build(graph, 3)
        )
        batch_a = np.arange(0, 40, dtype=np.int64)
        batch_b = np.arange(100, 110, dtype=np.int64)

        def expectations(batch):
            ranker.top_k_batch(batch, 10)
            per_query = tuple(
                _stat_key(s) for s in ranker.last_batch_stats.per_query
            )
            shard = tuple(_stat_key(s) for s in ranker.last_shard_stats)
            return per_query, shard

        expected_a = expectations(batch_a)
        expected_b = expectations(batch_b)
        assert expected_a != expected_b  # different sizes at minimum

        def call_for(batch, expected):
            per_query_expected, shard_expected = expected

            def call():
                results, batch_stats = ranker.top_k_batch_with_stats(batch, 10)
                assert len(results) == len(batch)
                observed = tuple(
                    _stat_key(s) for s in batch_stats.per_query
                )
                assert observed == per_query_expected
                # Ambient reads on this thread: both the batch stats and
                # the per-shard aggregates belong to this thread's call.
                assert (
                    tuple(
                        _stat_key(s)
                        for s in ranker.last_batch_stats.per_query
                    )
                    == per_query_expected
                )
                assert (
                    tuple(_stat_key(s) for s in ranker.last_shard_stats)
                    == shard_expected
                )

            return call

        _hammer(
            ranker, [call_for(batch_a, expected_a), call_for(batch_b, expected_b)]
        )

    def test_concurrent_answers_bitwise_identical(self, graph):
        """Not just the stats: concurrent answers equal sequential ones."""
        ranker = ShardedMogulRanker.from_index(
            graph, ShardedMogulIndex.build(graph, 3), query_jobs=2
        )
        queries = [0, 45, 90, 135]
        baselines = {q: ranker.top_k(q, 10) for q in queries}

        def call_for(query):
            expected = baselines[query]

            def call():
                result = ranker.top_k(query, 10)
                np.testing.assert_array_equal(result.indices, expected.indices)
                np.testing.assert_array_equal(result.scores, expected.scores)

            return call

        _hammer(ranker, [call_for(q) for q in queries])
