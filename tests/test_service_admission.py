"""Admission control and deadlines (repro.service.admission + scheduler).

The contract under test: expired requests are answered 504 *without*
touching the engine (pre-enqueue or at batch assembly, attested by the
``admission.expired`` trace span and the dispatch counters), overload
sheds with 429 + ``Retry-After`` or degrades dialable requests to the
fast tier (flagged ``degraded``), and a stopping scheduler fails queued
requests with 503 instead of hanging or surfacing a raw cancellation.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.core.index import MogulRanker
from repro.core.spectral import SpectralEngine, SpectralIndex
from repro.core.tiered import TieredEngine
from repro.obs.trace import Trace
from repro.service.admission import (
    ADMIT,
    DEGRADE,
    SHED,
    AdmissionController,
    DeadlineExceededError,
    SchedulerStoppedError,
    ShedLoadError,
)
from repro.service.cache import ResultCache
from repro.service.client import RequestFailedError, RetrievalClient
from repro.service.faults import FaultInjector
from repro.service.metrics import ServiceMetrics
from repro.service.scheduler import MicroBatchScheduler
from repro.service.server import BackgroundServer

#: Event-loop + worker-thread machinery: deadlocks must fail fast.
pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


@pytest.fixture(scope="module")
def tiered(bridged_graph, ranker):
    spectral = SpectralEngine.from_index(
        bridged_graph, SpectralIndex.build(bridged_graph, rank=16)
    )
    return TieredEngine(ranker, spectral)


def run(coroutine):
    return asyncio.run(coroutine)


class _StubMetrics:
    """Just enough surface for the controller's delay estimate."""

    class _Hist:
        def __init__(self, count, mean_seconds):
            self.count = count
            self.mean_seconds = mean_seconds

    def __init__(self, dispatch_mean_s=0.1, dispatch_count=10, batch=2.0):
        self._dispatch = self._Hist(dispatch_count, dispatch_mean_s)
        self.mean_batch_size = batch

    def stage_histograms(self):
        return {"engine.dispatch": self._dispatch}


class TestAdmissionController:
    def test_disabled_always_admits(self):
        controller = AdmissionController(max_queue_depth=None)
        assert not controller.enabled
        assert controller.hard_limit is None
        for depth in (0, 10, 10**6):
            assert controller.decide(depth, can_degrade=True) == ADMIT
        assert controller.snapshot()["admitted_total"] == 3

    def test_shed_policy_sheds_at_threshold(self):
        controller = AdmissionController(max_queue_depth=4, policy="shed")
        assert controller.decide(3, can_degrade=True) == ADMIT
        assert controller.decide(4, can_degrade=True) == SHED
        assert controller.decide(400, can_degrade=True) == SHED

    def test_degrade_then_shed_prefers_degrade(self):
        controller = AdmissionController(
            max_queue_depth=4, policy="degrade-then-shed"
        )
        assert controller.decide(4, can_degrade=True) == DEGRADE
        # No cheaper tier to fall to: shed rather than grow the queue.
        assert controller.decide(4, can_degrade=False) == SHED

    def test_degrade_policy_admits_undialable_until_hard_limit(self):
        controller = AdmissionController(
            max_queue_depth=4, policy="degrade", hard_limit_factor=2.0
        )
        assert controller.decide(4, can_degrade=False) == ADMIT
        assert controller.decide(7, can_degrade=False) == ADMIT
        assert controller.hard_limit == 8
        assert controller.decide(8, can_degrade=False) == SHED

    def test_hard_limit_sheds_even_degradable(self):
        controller = AdmissionController(
            max_queue_depth=2, policy="degrade-then-shed", hard_limit_factor=2.0
        )
        assert controller.decide(3, can_degrade=True) == DEGRADE
        assert controller.decide(4, can_degrade=True) == SHED

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionController(max_queue_depth=4, policy="panic")
        with pytest.raises(ValueError, match="max_queue_depth"):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError, match="hard_limit_factor"):
            AdmissionController(max_queue_depth=4, hard_limit_factor=0.5)

    def test_queue_delay_signal_triggers_before_depth(self):
        # 6 queued / batch 2 = 3 dispatches x 100 ms = 300 ms estimate,
        # over the 200 ms budget although well below the depth threshold.
        controller = AdmissionController(
            max_queue_depth=1000,
            policy="shed",
            max_queue_delay_ms=200.0,
            metrics=_StubMetrics(dispatch_mean_s=0.1, batch=2.0),
        )
        assert not controller.overloaded(2)
        assert controller.overloaded(6)
        assert controller.decide(6, can_degrade=False) == SHED

    def test_delay_estimate_needs_observations(self):
        controller = AdmissionController(
            max_queue_depth=10, metrics=_StubMetrics(dispatch_count=0)
        )
        assert controller.estimated_queue_delay_seconds(5) is None
        controller_bare = AdmissionController(max_queue_depth=10)
        assert controller_bare.estimated_queue_delay_seconds(5) is None

    def test_retry_after_clamped_to_1_10_seconds(self):
        bare = AdmissionController(max_queue_depth=4)
        assert bare.retry_after_seconds(100) == 1.0
        slow = AdmissionController(
            max_queue_depth=4, metrics=_StubMetrics(dispatch_mean_s=5.0, batch=1.0)
        )
        assert slow.retry_after_seconds(100) == 10.0
        fast = AdmissionController(
            max_queue_depth=4,
            metrics=_StubMetrics(dispatch_mean_s=0.001, batch=8.0),
        )
        assert fast.retry_after_seconds(4) == 1.0

    def test_snapshot_counts_decisions(self):
        controller = AdmissionController(max_queue_depth=2, policy="shed")
        controller.decide(0, can_degrade=False)
        controller.decide(2, can_degrade=False)
        snapshot = controller.snapshot()
        assert snapshot["enabled"] is True
        assert snapshot["policy"] == "shed"
        assert snapshot["admitted_total"] == 1
        assert snapshot["shed_total"] == 1


class TestSchedulerDeadlines:
    def test_already_expired_request_never_queued(self, ranker):
        metrics = ServiceMetrics()

        async def main():
            async with MicroBatchScheduler(ranker, metrics=metrics) as scheduler:
                with pytest.raises(DeadlineExceededError):
                    await scheduler.search(
                        1, 5, deadline_at=time.perf_counter() - 1.0
                    )
                return scheduler.queries_dispatched

        dispatched = run(main())
        assert dispatched == 0
        snapshot = metrics.snapshot()["admission"]
        assert snapshot["deadline_timeouts_total"] == 1
        assert snapshot["expired_in_queue_total"] == 0

    def test_expired_in_queue_504_without_dispatch(self, ranker):
        """A queue stall outlives the deadline: 504, span, no engine time."""
        metrics = ServiceMetrics()
        faults = FaultInjector.parse("scheduler.queue:stall:150")

        async def main():
            async with MicroBatchScheduler(
                ranker, max_wait_ms=0.0, metrics=metrics, faults=faults
            ) as scheduler:
                trace = Trace("search")
                with pytest.raises(DeadlineExceededError) as excinfo:
                    await scheduler.search(
                        2,
                        5,
                        trace=trace,
                        deadline_at=time.perf_counter() + 0.03,
                    )
                return scheduler.queries_dispatched, trace, excinfo.value

        dispatched, trace, error = run(main())
        assert dispatched == 0
        assert error.queued_ms is not None and error.queued_ms > 0
        names = {span.name for span in trace.root.walk()}
        assert "admission.expired" in names
        assert "engine.dispatch" not in names
        snapshot = metrics.snapshot()["admission"]
        assert snapshot["deadline_timeouts_total"] == 1
        assert snapshot["expired_in_queue_total"] == 1

    def test_live_members_survive_expired_batchmates(self, ranker):
        """Only the expired member of a batch is dropped; the rest solve."""
        faults = FaultInjector.parse("scheduler.queue:stall:80")

        async def main():
            async with MicroBatchScheduler(
                ranker, max_wait_ms=5.0, faults=faults
            ) as scheduler:
                doomed = scheduler.search(
                    1, 5, deadline_at=time.perf_counter() + 0.02
                )
                healthy = scheduler.search(2, 5)
                return await asyncio.gather(
                    doomed, healthy, return_exceptions=True
                )

        doomed, healthy = run(main())
        assert isinstance(doomed, DeadlineExceededError)
        assert healthy.result.indices is not None
        assert len(healthy.result) == 5


class TestSchedulerOverload:
    def test_shed_raises_with_retry_guidance(self, ranker):
        metrics = ServiceMetrics()
        admission = AdmissionController(
            max_queue_depth=1, policy="shed", metrics=metrics
        )
        faults = FaultInjector.parse("engine.solve:latency:50")

        async def main():
            async with MicroBatchScheduler(
                ranker,
                max_batch_size=1,
                max_wait_ms=0.0,
                metrics=metrics,
                admission=admission,
                faults=faults,
            ) as scheduler:
                return await asyncio.gather(
                    *(scheduler.search(node, 5) for node in range(8)),
                    return_exceptions=True,
                )

        outcomes = run(main())
        sheds = [o for o in outcomes if isinstance(o, ShedLoadError)]
        served = [o for o in outcomes if not isinstance(o, Exception)]
        assert sheds and served
        assert all(shed.retry_after_seconds >= 1.0 for shed in sheds)
        assert metrics.snapshot()["admission"]["sheds_total"] == len(sheds)
        assert admission.snapshot()["shed_total"] == len(sheds)

    def test_degrade_reroutes_to_fast_tier(self, tiered):
        metrics = ServiceMetrics()
        admission = AdmissionController(
            max_queue_depth=1,
            policy="degrade-then-shed",
            hard_limit_factor=100.0,
            metrics=metrics,
        )
        faults = FaultInjector.parse("engine.solve:latency:30")

        async def main():
            async with MicroBatchScheduler(
                tiered,
                max_batch_size=1,
                max_wait_ms=0.0,
                metrics=metrics,
                admission=admission,
                faults=faults,
            ) as scheduler:
                return await asyncio.gather(
                    *(
                        scheduler.search(node, 5, accuracy="exact")
                        for node in range(6)
                    )
                )

        served = run(main())
        degraded = [s for s in served if s.degraded]
        exact = [s for s in served if not s.degraded]
        assert degraded and exact
        fast_label, _ = tiered.resolve_accuracy(accuracy="fast")
        assert all(s.accuracy == fast_label for s in degraded)
        assert all(s.accuracy == "exact" for s in exact)
        assert metrics.snapshot()["admission"]["degraded_total"] == len(degraded)

    def test_floor_tier_requests_shed_not_degraded(self, tiered):
        """A request already at `fast` has nowhere to fall: it sheds."""
        admission = AdmissionController(
            max_queue_depth=1, policy="degrade-then-shed"
        )
        faults = FaultInjector.parse("engine.solve:latency:30")

        async def main():
            async with MicroBatchScheduler(
                tiered,
                max_batch_size=1,
                max_wait_ms=0.0,
                admission=admission,
                faults=faults,
            ) as scheduler:
                return await asyncio.gather(
                    *(
                        scheduler.search(node, 5, accuracy="fast")
                        for node in range(6)
                    ),
                    return_exceptions=True,
                )

        outcomes = run(main())
        assert any(isinstance(o, ShedLoadError) for o in outcomes)
        assert not any(
            getattr(o, "degraded", False)
            for o in outcomes
            if not isinstance(o, Exception)
        )

    def test_cache_hits_served_during_overload(self, ranker):
        """Admission runs after the cache probe: hits are free, never shed."""
        admission = AdmissionController(max_queue_depth=1, policy="shed")
        faults = FaultInjector.parse("engine.solve:latency:50")

        async def main():
            cache = ResultCache(64)
            async with MicroBatchScheduler(
                ranker, max_wait_ms=0.0, cache=cache
            ) as warm:
                await warm.search(3, 5)
            async with MicroBatchScheduler(
                ranker,
                max_batch_size=1,
                max_wait_ms=0.0,
                cache=cache,
                admission=admission,
                faults=faults,
            ) as scheduler:
                # Saturate the queue with uncached work, then probe the
                # cached entry: it must be served despite the overload.
                background = [
                    asyncio.ensure_future(scheduler.search(node, 5))
                    for node in range(10, 16)
                ]
                await asyncio.sleep(0)
                hit = await scheduler.search(3, 5)
                results = await asyncio.gather(
                    *background, return_exceptions=True
                )
                return hit, results

        hit, _ = run(main())
        assert hit.cached


class TestSchedulerShutdown:
    def test_stop_fails_assembled_batch_with_503_error(self, ranker):
        """Requests in a half-assembled batch get SchedulerStoppedError."""
        faults = FaultInjector.parse("scheduler.queue:stall:5000")

        async def main():
            scheduler = MicroBatchScheduler(
                ranker, max_wait_ms=0.0, faults=faults
            )
            await scheduler.start()
            request = asyncio.ensure_future(scheduler.search(1, 5))
            await asyncio.sleep(0.05)  # batch assembled, stalling
            await scheduler.stop()
            with pytest.raises(SchedulerStoppedError):
                await request

        run(main())

    def test_stop_fails_queued_requests(self, ranker):
        faults = FaultInjector.parse("engine.solve:latency:200")

        async def main():
            scheduler = MicroBatchScheduler(
                ranker, max_batch_size=1, max_wait_ms=0.0, faults=faults
            )
            await scheduler.start()
            requests = [
                asyncio.ensure_future(scheduler.search(node, 5))
                for node in range(4)
            ]
            await asyncio.sleep(0.05)  # first dispatched, rest queued
            await scheduler.stop()
            return await asyncio.gather(*requests, return_exceptions=True)

        outcomes = run(main())
        assert any(isinstance(o, SchedulerStoppedError) for o in outcomes)
        # Nothing hangs and nothing surfaces as a raw CancelledError.
        assert not any(isinstance(o, asyncio.CancelledError) for o in outcomes)


class TestServerDeadlinesAndOverload:
    @pytest.fixture(scope="class")
    def background(self, ranker):
        with BackgroundServer(
            ranker, port=0, max_batch_size=16, max_wait_ms=1.0, cache_capacity=0
        ) as server:
            yield server

    @pytest.fixture()
    def client(self, background):
        with RetrievalClient(port=background.port) as connection:
            yield connection

    def test_tiny_deadline_504(self, client):
        with pytest.raises(RuntimeError, match="504"):
            client.search(1, k=5, deadline_ms=1e-6)
        assert client.counters["timeouts_seen"] == 1

    def test_deadline_zero_opts_out(self, client):
        payload = client.search(1, k=5, deadline_ms=0)
        assert payload["indices"]

    def test_query_param_beats_header(self, client, background):
        # Header says "expired", query param rescinds the deadline.
        status, _, _ = client._raw(
            "POST",
            "/search?deadline_ms=0",
            {"query": 1, "k": 5},
            extra_headers={"X-Repro-Deadline-Ms": "0.000001"},
        )
        assert status == 200

    def test_invalid_deadline_400(self, client):
        status, _, text = client._raw(
            "POST", "/search?deadline_ms=abc", {"query": 1, "k": 5}
        )
        assert status == 400
        assert "deadline_ms" in text
        for bad in ("-5", "inf", "nan"):
            status, _, _ = client._raw(
                "POST", f"/search?deadline_ms={bad}", {"query": 1, "k": 5}
            )
            assert status == 400

    def test_degraded_flag_in_http_payload(self, tiered):
        faults = FaultInjector.parse("engine.solve:latency:30")
        with BackgroundServer(
            tiered,
            port=0,
            max_batch_size=1,
            max_wait_ms=0.0,
            cache_capacity=0,
            max_queue_depth=1,
            overload_policy="degrade-then-shed",
            faults=faults,
        ) as server:
            import concurrent.futures

            def one_search(worker):
                # Past the hard limit even dialable requests shed (429);
                # the point here is the degraded ones that got through.
                with RetrievalClient(port=server.port) as worker_client:
                    try:
                        return worker_client.search(worker, k=5)
                    except RequestFailedError as fail:
                        assert fail.status == 429
                        return {}

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                payloads = list(pool.map(one_search, range(8)))
            degraded = [p for p in payloads if p.get("degraded")]
            assert degraded
            fast_label, _ = tiered.resolve_accuracy(accuracy="fast")
            assert all(p["accuracy"] == fast_label for p in degraded)
            with RetrievalClient(port=server.port) as probe:
                metrics = probe.metrics()
            assert metrics["admission"]["degraded_total"] >= len(degraded)

    def test_shed_is_429_with_retry_after(self, ranker):
        faults = FaultInjector.parse("engine.solve:latency:60")
        with BackgroundServer(
            ranker,
            port=0,
            max_batch_size=1,
            max_wait_ms=0.0,
            cache_capacity=0,
            max_queue_depth=1,
            overload_policy="shed",
            faults=faults,
        ) as server:
            import concurrent.futures

            def one_search(worker):
                with RetrievalClient(port=server.port) as worker_client:
                    return worker_client._raw(
                        "POST", "/search", {"query": worker, "k": 5}
                    )

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                responses = list(pool.map(one_search, range(8)))
            sheds = [r for r in responses if r[0] == 429]
            assert sheds
            for _, headers, text in sheds:
                retry_after = {k.lower(): v for k, v in headers.items()}[
                    "retry-after"
                ]
                assert int(retry_after) >= 1
                assert "shed" in text
            with RetrievalClient(port=server.port) as probe:
                exposition = probe.prometheus_metrics()
            assert "repro_sheds_total" in exposition

    def test_stats_surface_admission_config(self, client):
        stats = client.stats()
        admission = stats["scheduler"]["admission"]
        assert admission["enabled"] is True
        assert admission["policy"] == "degrade-then-shed"
        assert admission["max_queue_depth"] == 1024
