"""Tests for the elimination tree, ereach and the Woodbury helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    complete_ldl,
    elimination_tree,
    ereach,
    low_rank_regularized_apply,
    woodbury_solve,
)
from repro.ranking.normalize import ranking_matrix
from tests.conftest import random_symmetric_adjacency


class TestEliminationTree:
    def test_parent_indices_increase(self):
        w = ranking_matrix(random_symmetric_adjacency(30, seed=0), 0.9)
        parent = elimination_tree(w)
        for j, p in enumerate(parent):
            assert p == -1 or p > j

    def test_chain_structure(self):
        """A path graph 0-1-2-3 yields parent[i] = i+1."""
        adj = sp.diags([np.ones(3)], offsets=[1], shape=(4, 4))
        adj = (adj + adj.T).tocsr()
        parent = elimination_tree(ranking_matrix(adj, 0.5))
        np.testing.assert_array_equal(parent, [1, 2, 3, -1])

    def test_star_structure(self):
        """A star centred at the last node: every leaf's parent is the hub."""
        n = 6
        rows = np.arange(n - 1)
        cols = np.full(n - 1, n - 1)
        adj = sp.csr_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        parent = elimination_tree(ranking_matrix(adj, 0.5))
        np.testing.assert_array_equal(parent[:-1], np.full(n - 1, n - 1))
        assert parent[-1] == -1

    def test_ereach_predicts_factor_pattern(self):
        """The union of ereach(k) over k equals the strict-lower pattern of
        the complete factor (no over- or under-prediction up to exact
        numerical cancellation, which SPD W does not produce)."""
        w = ranking_matrix(random_symmetric_adjacency(25, seed=3), 0.9)
        parent = elimination_tree(w)
        marks = np.full(25, -1, dtype=np.int64)
        predicted = set()
        for k in range(25):
            for j in ereach(w, k, parent, marks):
                predicted.add((k, j))
        factors = complete_ldl(w)
        actual = set(zip(*factors.lower.nonzero()))
        assert actual == predicted

    def test_ereach_sorted(self):
        w = ranking_matrix(random_symmetric_adjacency(20, seed=4), 0.9)
        parent = elimination_tree(w)
        marks = np.full(20, -1, dtype=np.int64)
        for k in range(20):
            reach = ereach(w, k, parent, marks)
            assert reach == sorted(reach)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            elimination_tree(sp.csr_matrix(np.ones((2, 3))))


class TestWoodbury:
    def test_matches_dense_inverse(self):
        rng = np.random.default_rng(0)
        n, r = 12, 3
        a_diag = rng.random(n) + 1.0
        u = rng.normal(size=(n, r))
        c = np.diag(rng.random(r) + 0.5)
        v = rng.normal(size=(r, n))
        b = rng.random(n)
        full = np.diag(a_diag) + u @ c @ v
        expected = np.linalg.solve(full, b)
        got = woodbury_solve(lambda x: (x.T / a_diag).T, u, c, v, b)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="incompatible"):
            woodbury_solve(
                lambda x: x,
                np.ones((4, 2)),
                np.eye(2),
                np.ones((3, 4)),
                np.ones(4),
            )

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=15),
        d=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=100),
        alpha=st.floats(min_value=0.1, max_value=0.95),
    )
    def test_low_rank_regularized_apply(self, n, d, seed, alpha):
        """(I - alpha H^T H)^{-1} q via Woodbury equals the dense solve,
        whenever the system is well posed (||H||^2 alpha < 1 suffices)."""
        rng = np.random.default_rng(seed)
        h = rng.normal(size=(d, n))
        h /= np.linalg.norm(h, 2) + 1e-9  # spectral norm <= 1
        q = rng.random(n)
        dense = np.eye(n) - alpha * h.T @ h
        expected = np.linalg.solve(dense, q)
        got = low_rank_regularized_apply(h, q, alpha)
        np.testing.assert_allclose(got, expected, atol=1e-8)

    def test_low_rank_apply_sparse_h(self):
        rng = np.random.default_rng(1)
        h = sp.random(3, 20, density=0.4, random_state=2, format="csr")
        h = h / (sp.linalg.norm(h) + 1e-9)
        q = rng.random(20)
        dense = np.eye(20) - 0.9 * (h.T @ h).toarray()
        np.testing.assert_allclose(
            low_rank_regularized_apply(h, q, 0.9),
            np.linalg.solve(dense, q),
            atol=1e-8,
        )
