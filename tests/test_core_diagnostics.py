"""Tests for the index health diagnostics (repro.core.diagnostics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.diagnostics import diagnose_index, expected_prune_rate
from repro.core.index import MogulRanker


@pytest.fixture(scope="module")
def ranker(clustered_graph):
    return MogulRanker(clustered_graph, alpha=0.95)


class TestReport:
    def test_basic_fields(self, ranker):
        report = diagnose_index(ranker.index)
        assert report.n_nodes == ranker.n_nodes
        assert report.n_clusters == ranker.index.n_clusters
        assert report.factor_nnz == ranker.index.factors.nnz
        assert report.interior_min <= report.interior_median <= report.interior_max
        assert report.nnz_per_node == pytest.approx(
            report.factor_nnz / report.n_nodes
        )
        assert 0.0 <= report.border_fraction <= 1.0

    def test_healthy_index_has_no_warnings(self, ranker):
        report = diagnose_index(ranker.index)
        assert report.warnings == ()

    def test_to_text_mentions_key_numbers(self, ranker):
        text = diagnose_index(ranker.index).to_text()
        assert str(ranker.n_nodes) in text
        assert "border" in text
        assert "saturated" in text

    def test_saturation_counted(self, ranker):
        """An index whose interior bounds saturate (cluster far beyond the
        overflow threshold) must be counted and warned about.  Saturation
        needs clusters of thousands of nodes, so the bound table is
        substituted directly instead of building such a graph."""
        from dataclasses import replace

        from repro.core.bounds import ClusterBoundData

        saturated = tuple(
            ClusterBoundData(
                border_cols=bound.border_cols,
                border_maxima=bound.border_maxima,
                internal_max=0.5,
                size=10_000,  # growth overflows -> inf
            )
            for bound in ranker.index.bounds
        )
        index = replace(ranker.index, bounds=saturated)
        report = diagnose_index(index)
        assert report.saturated_bounds == len(saturated)
        assert any("saturated" in warning for warning in report.warnings)

    def test_border_warning(self, clustered_graph):
        """Alternating labels put every node on a cross-cluster edge, so
        everything lands in the border."""
        labels = np.arange(clustered_graph.n_nodes, dtype=np.int64) % 2
        ranker = MogulRanker(clustered_graph, alpha=0.95, cluster_labels=labels)
        report = diagnose_index(ranker.index)
        assert report.border_fraction > 0.25
        assert any("border" in warning for warning in report.warnings)


class TestPruneRate:
    def test_matches_last_stats(self, ranker):
        queries = np.asarray([0, 40, 80])
        rate = expected_prune_rate(ranker, queries, k=5)
        assert 0.0 <= rate <= 1.0
        # The clustered fixture prunes aggressively.
        assert rate > 0.3

    def test_empty_queries(self, ranker):
        assert expected_prune_rate(ranker, []) == 0.0
