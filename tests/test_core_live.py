"""LiveEngine: background rebuilds, atomic epoch swap, persistence.

The load-bearing property (ISSUE 5): a background rebuild is **bitwise
identical** to a blocking ``rebuild()`` taken from the same buffer
snapshot — on both the flat and the sharded base — and queries issued
while a rebuild is in flight never block on it (they drain against the
epoch they started on).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.dynamic import DynamicMogulRanker
from repro.core.engine import Engine, engine_from_index
from repro.core.index import MogulRanker
from repro.core.live import LiveEngine
from repro.core.serialize import (
    live_state_path,
    load_any_index,
    load_live_state,
    save_live_state,
)
from repro.graph.build import build_knn_graph

pytestmark = pytest.mark.timeout(120)


def two_cluster_features(seed: int, n_per: int = 40, dim: int = 6) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(scale=0.6, size=(n_per, dim))
    b = rng.normal(scale=0.6, size=(n_per, dim)) + 4.0
    return np.vstack([a, b])


def apply_mutations(engine, seed: int, n_adds: int = 10) -> list[int]:
    """The same deterministic write sequence against any engine."""
    rng = np.random.default_rng(1000 + seed)
    added = []
    for i in range(n_adds):
        feature = rng.normal(scale=0.6, size=engine._dim) + (4.0 if i % 2 else 0.0)
        added.append(engine.add(feature))
    engine.remove(3)
    engine.remove(added[1])
    return added


def assert_bitwise_equal(a, b) -> None:
    assert np.array_equal(a.indices, b.indices), (a.indices, b.indices)
    assert np.array_equal(a.scores, b.scores)


class TestBackgroundEqualsBlocking:
    """Satellite: background rebuild == blocking rebuild, bitwise."""

    @pytest.mark.parametrize("n_shards", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_rebuild_bitwise_identical(self, n_shards, seed):
        features = two_cluster_features(seed)
        blocking = DynamicMogulRanker(
            features, auto_rebuild_fraction=None, n_shards=n_shards
        )
        live = LiveEngine(
            features, auto_rebuild_fraction=None, n_shards=n_shards
        )
        apply_mutations(blocking, seed)
        added = apply_mutations(live, seed)

        blocking.rebuild()
        ticket = live.rebuild_async()
        assert ticket.result(60) == 1
        assert live.epoch == 1
        assert live.n_pending == 0

        queries = [0, 17, 55, added[0], added[-1]]
        for query in queries:
            assert_bitwise_equal(blocking.top_k(query, 10), live.top_k(query, 10))
        for ra, rb in zip(
            blocking.top_k_batch(queries, 8), live.top_k_batch(queries, 8)
        ):
            assert_bitwise_equal(ra, rb)
        probe = features.mean(axis=0)
        assert_bitwise_equal(
            blocking.top_k_out_of_sample(probe, 7),
            live.top_k_out_of_sample(probe, 7),
        )

    def test_factors_bitwise_identical_flat(self):
        features = two_cluster_features(7)
        blocking = DynamicMogulRanker(features, auto_rebuild_fraction=None)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        apply_mutations(blocking, 7)
        apply_mutations(live, 7)
        blocking.rebuild()
        live.rebuild()  # the blocking wrapper over rebuild_async
        a = blocking.index.factors
        b = live.index.factors
        assert np.array_equal(a.lower.toarray(), b.lower.toarray())
        assert np.array_equal(a.diag, b.diag)

    def test_stop_the_world_baseline_identical(self):
        """The benchmark baseline produces the same index too."""
        features = two_cluster_features(3)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        baseline = LiveEngine(features, auto_rebuild_fraction=None)
        apply_mutations(live, 3)
        apply_mutations(baseline, 3)
        live.rebuild()
        seconds = baseline.rebuild_stop_the_world()
        assert seconds > 0
        for query in (0, 41, 79):
            assert_bitwise_equal(live.top_k(query, 9), baseline.top_k(query, 9))


class TestNonBlockingQueries:
    def test_queries_drain_against_old_epoch_while_rebuilding(self, monkeypatch):
        features = two_cluster_features(11)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        before = live.top_k(0, 5)

        gate = threading.Event()
        entered = threading.Event()
        real = live._build_epoch

        def gated(indexed_ids, number):
            entered.set()
            assert gate.wait(30), "test gate never opened"
            return real(indexed_ids, number)

        monkeypatch.setattr(live, "_build_epoch", gated)
        new_id = live.add(features[0] + 0.01)
        ticket = live.rebuild_async()
        assert entered.wait(30)
        assert not ticket.done

        # Queries complete while the rebuild is (deterministically) stuck.
        during = live.top_k(0, 5)
        assert live.epoch == 0
        assert not ticket.done
        # The freshly inserted near-duplicate surfaces via its pending
        # estimate, before any rebuild completed.
        assert new_id in during.indices
        assert before.indices.shape[0] == during.indices.shape[0]

        gate.set()
        assert ticket.result(60) == 1
        after = live.top_k(0, 5)
        assert new_id in after.indices
        assert live.n_pending == 0

    def test_single_rebuild_in_flight(self, monkeypatch):
        features = two_cluster_features(5)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        gate = threading.Event()
        real = live._build_epoch

        def gated(indexed_ids, number):
            assert gate.wait(30)
            return real(indexed_ids, number)

        monkeypatch.setattr(live, "_build_epoch", gated)
        live.add(features[1] + 0.01)
        first = live.rebuild_async()
        second = live.rebuild_async()
        assert second is first
        gate.set()
        first.result(60)
        assert live.epoch == 1

    def test_auto_rebuild_runs_in_background(self):
        features = two_cluster_features(9, n_per=20)
        live = LiveEngine(features, auto_rebuild_fraction=0.1)
        rng = np.random.default_rng(2)
        for _ in range(6):
            live.add(rng.normal(scale=0.6, size=6))
        deadline = threading.Event()
        for _ in range(200):
            if live.rebuild_count >= 1 and not live.rebuild_in_flight:
                break
            deadline.wait(0.05)
        live.close()
        assert live.rebuild_count >= 1
        assert live.n_pending < 6

    def test_failed_rebuild_keeps_serving_old_epoch(self, monkeypatch):
        features = two_cluster_features(13)
        live = LiveEngine(features, auto_rebuild_fraction=None)

        def broken(indexed_ids, number):
            raise RuntimeError("synthetic build failure")

        monkeypatch.setattr(live, "_build_epoch", broken)
        ticket = live.rebuild_async()
        assert ticket.wait(30)
        with pytest.raises(RuntimeError, match="synthetic"):
            ticket.result()
        assert live.epoch == 0
        assert live.top_k(0, 5).indices.shape[0] == 5
        # Fire-and-forget callers (auto-rebuilds) never hold the ticket:
        # the failure must be observable through the counters.
        counts = live.mutation_counts()
        assert counts["failed_rebuilds"] == 1
        assert "synthetic" in counts["last_rebuild_error"]

    def test_closed_engine_refuses_rebuilds(self):
        features = two_cluster_features(15, n_per=10)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        live.close()
        live.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            live.rebuild_async()


class TestStallInstrumentation:
    def test_swap_and_stall_counters(self):
        features = two_cluster_features(17, n_per=15)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        live.top_k(0, 5)
        assert live.stall.samples >= 1
        live.add(features[0] + 0.02)
        ticket = live.rebuild_async()
        ticket.result(60)
        assert live.last_swap_seconds is not None
        assert ticket.swap_seconds <= ticket.build_seconds
        counts = live.mutation_counts()
        assert counts["last_swap_seconds"] == live.last_swap_seconds
        assert counts["rebuilds"] == 1


class TestAdoption:
    """engine_from_index(live=True) must wrap both artifact kinds."""

    @pytest.mark.parametrize("shards", [None, 2])
    def test_adopts_loaded_artifact(self, tmp_path, shards):
        features = two_cluster_features(21)
        graph = build_knn_graph(features, k=4)
        if shards is None:
            base = MogulRanker(graph)
            path = str(tmp_path / "flat.idx.npz")
        else:
            from repro.core.sharded import ShardedMogulRanker

            base = ShardedMogulRanker(graph, shards)
            path = str(tmp_path / "dir.shards")
        base.index.save(path)
        loaded = load_any_index(path)
        live = engine_from_index(
            graph, loaded, live=True, live_kwargs=dict(k=4)
        )
        assert isinstance(live, LiveEngine)
        assert isinstance(live, Engine)
        assert live.epoch == 0
        assert live.n_shards == (1 if shards is None else shards)
        for query in (0, 44, 79):
            assert_bitwise_equal(base.top_k(query, 8), live.top_k(query, 8))
        # Mutate + rebuild: the adopted engine rebuilds with its own kind.
        live.add(features[5] + 0.01)
        live.rebuild()
        assert live.epoch == 1
        assert live.n_indexed == features.shape[0] + 1
        live.close()

    def test_rebuild_replays_search_configuration(self, tmp_path):
        """An adopted engine's search switches survive the first rebuild."""
        features = two_cluster_features(33, n_per=20)
        graph = build_knn_graph(features, k=4)
        base = MogulRanker(graph)
        path = str(tmp_path / "cfg.idx.npz")
        base.index.save(path)
        live = engine_from_index(
            graph,
            load_any_index(path),
            live=True,
            live_kwargs=dict(k=4),
            use_pruning=False,
            cluster_order="bound_desc",
        )
        assert live.engine.use_pruning is False
        live.add(features[0] + 0.01)
        live.rebuild()
        assert live.epoch == 1
        assert live.engine.use_pruning is False
        assert live.engine.cluster_order == "bound_desc"
        live.close()


class TestLiveStatePersistence:
    def _adopted(self, tmp_path, features, name="live.idx.npz"):
        graph = build_knn_graph(features, k=4)
        base = MogulRanker(graph)
        path = str(tmp_path / name)
        base.index.save(path)
        loaded = load_any_index(path)
        return path, graph, engine_from_index(
            graph, loaded, live=True, live_kwargs=dict(k=4)
        )

    def test_round_trip_without_rebuild_is_bitwise(self, tmp_path):
        features = two_cluster_features(23)
        path, graph, live = self._adopted(tmp_path, features)
        added = apply_mutations(live, 23)
        sidecar = save_live_state(path, live.mutable_state())
        assert sidecar == live_state_path(path)

        _, _, restored = self._adopted(tmp_path, features)
        state = load_live_state(path)
        assert state is not None
        restored.restore_mutable_state(state)
        assert restored.n_total == live.n_total
        assert restored.n_pending == live.n_pending
        assert restored.epoch == live.epoch
        for query in (0, 50, added[0]):
            assert_bitwise_equal(live.top_k(query, 10), restored.top_k(query, 10))

    def test_round_trip_after_rebuild_replays_as_pending(self, tmp_path):
        features = two_cluster_features(25)
        path, graph, live = self._adopted(tmp_path, features)
        added = apply_mutations(live, 25)
        live.rebuild()
        save_live_state(path, live.mutable_state())

        _, _, restored = self._adopted(tmp_path, features)
        state = load_live_state(path)
        # The rebuilt-in points persist relative to the on-disk artifact:
        # they come back as pending (write-ahead semantics).
        live_added = [g for g in added if g != added[1]]
        assert sorted(int(g) for g in state.pending_ids) == live_added
        restored.restore_mutable_state(state)
        assert restored.n_live == live.n_live
        assert restored.epoch == live.epoch
        # After folding the buffer in, the restored engine serves the
        # exact same database as the original's rebuilt epoch.
        restored.rebuild()
        for query in (0, 50, added[0]):
            assert_bitwise_equal(live.top_k(query, 10), restored.top_k(query, 10))

    def test_missing_sidecar_returns_none(self, tmp_path):
        assert load_live_state(str(tmp_path / "absent.idx.npz")) is None

    def test_dimension_mismatch_rejected(self, tmp_path):
        features = two_cluster_features(27, n_per=12)
        path, graph, live = self._adopted(tmp_path, features)
        live.add(features[0] + 0.1)
        state = live.mutable_state()
        state.feature_dim = 9
        _, _, restored = self._adopted(tmp_path, features, name="other.idx.npz")
        with pytest.raises(ValueError, match="dimension"):
            restored.restore_mutable_state(state)

    def test_restore_requires_fresh_engine(self, tmp_path):
        features = two_cluster_features(29, n_per=12)
        path, graph, live = self._adopted(tmp_path, features)
        state = live.mutable_state()
        live.add(features[0] + 0.1)
        with pytest.raises(RuntimeError, match="freshly adopted"):
            live.restore_mutable_state(state)

    def test_corrupt_pending_shape_rejected(self, tmp_path):
        features = two_cluster_features(31, n_per=12)
        path, graph, live = self._adopted(tmp_path, features)
        live.add(features[0] + 0.1)
        save_live_state(path, live.mutable_state())
        import zipfile

        sidecar = live_state_path(path)
        with np.load(sidecar) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["pending_features"] = payload["pending_features"][:, :3]
        np.savez(sidecar, **payload)
        assert zipfile.is_zipfile(sidecar)
        with pytest.raises(ValueError, match="pending_features"):
            load_live_state(path)

    def test_sharded_sidecar_lives_inside_directory(self, tmp_path):
        target = str(tmp_path / "index.shards")
        import os

        os.makedirs(target)
        assert live_state_path(target) == os.path.join(target, "live_state.npz")
