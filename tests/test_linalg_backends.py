"""Equivalence of the LDL backends and the parallel block schedule.

The contracts under test (see repro.linalg.ldl):

* ``backend="csr"`` and ``backend="reference"`` produce factors with the
  *identical* sparsity pattern and allclose values (they accumulate the
  same sums in different orders) for every variant — incomplete at any
  fill level, and complete;
* factoring with ``blocks=`` (the bordered-block layout) and any
  ``jobs`` value is **bitwise identical** to the plain sequential csr
  run — parallelism is an execution schedule, not an approximation;
* downstream top-k answers agree across backends (indices exactly,
  scores to float tolerance) and are bitwise identical across ``jobs``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.clustering.louvain import louvain_reference
from repro.core.index import MogulIndex, MogulRanker
from repro.core.permutation import build_permutation
from repro.linalg.ldl import complete_ldl, incomplete_ldl
from repro.ranking.normalize import ranking_matrix
from tests.conftest import random_symmetric_adjacency


def _ranking_w(n: int, seed: int, alpha: float = 0.95) -> sp.csr_matrix:
    return ranking_matrix(random_symmetric_adjacency(n, seed=seed), alpha)


def _assert_equivalent(reference, other, rtol=1e-9, atol=1e-13):
    assert np.array_equal(reference.lower.indptr, other.lower.indptr)
    assert np.array_equal(reference.lower.indices, other.lower.indices)
    np.testing.assert_allclose(
        reference.lower.data, other.lower.data, rtol=rtol, atol=atol
    )
    np.testing.assert_allclose(reference.diag, other.diag, rtol=rtol)
    assert reference.pivot_perturbations == other.pivot_perturbations


def _assert_bitwise(a, b):
    assert np.array_equal(a.lower.indptr, b.lower.indptr)
    assert np.array_equal(a.lower.indices, b.lower.indices)
    assert np.array_equal(a.lower.data, b.lower.data)
    assert np.array_equal(a.diag, b.diag)
    assert a.pivot_perturbations == b.pivot_perturbations


class TestBackendEquivalence:
    @pytest.mark.parametrize("n,seed", [(12, 0), (40, 1), (90, 2), (150, 3)])
    def test_incomplete_matches_reference(self, n, seed):
        w = _ranking_w(n, seed)
        _assert_equivalent(
            incomplete_ldl(w, backend="reference"), incomplete_ldl(w, backend="csr")
        )

    @pytest.mark.parametrize("fill_level", [1, 2, 4])
    def test_fill_levels_match_reference(self, fill_level):
        w = _ranking_w(60, 5)
        _assert_equivalent(
            incomplete_ldl(w, fill_level=fill_level, backend="reference"),
            incomplete_ldl(w, fill_level=fill_level, backend="csr"),
        )

    @pytest.mark.parametrize("n,seed", [(12, 0), (40, 1), (90, 2)])
    def test_complete_matches_reference(self, n, seed):
        w = _ranking_w(n, seed)
        _assert_equivalent(
            complete_ldl(w, backend="reference"), complete_ldl(w, backend="csr")
        )

    def test_complete_still_reconstructs(self):
        w = _ranking_w(50, 7)
        factors = complete_ldl(w, backend="csr")
        np.testing.assert_allclose(
            factors.reconstruct().toarray(), w.toarray(), atol=1e-10
        )

    def test_unknown_backend_rejected(self):
        w = _ranking_w(10, 0)
        with pytest.raises(ValueError, match="backend"):
            incomplete_ldl(w, backend="fortran")
        with pytest.raises(ValueError, match="backend"):
            complete_ldl(w, backend="fortran")


class TestBlocksAndJobs:
    @pytest.fixture(scope="class")
    def permuted(self, bridged_graph):
        permutation = build_permutation(bridged_graph.adjacency)
        w = permutation.permute_matrix(
            ranking_matrix(bridged_graph.adjacency, 0.99)
        )
        return w, permutation

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_blocks_and_jobs_bitwise_incomplete(self, permuted, jobs):
        w, permutation = permuted
        plain = incomplete_ldl(w)
        blocked = incomplete_ldl(
            w, blocks=permutation.cluster_slices, jobs=jobs
        )
        _assert_bitwise(plain, blocked)

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_blocks_and_jobs_bitwise_complete(self, permuted, jobs):
        w, permutation = permuted
        plain = complete_ldl(w)
        blocked = complete_ldl(w, blocks=permutation.cluster_slices, jobs=jobs)
        _assert_bitwise(plain, blocked)

    def test_fill_level_with_blocks_matches_reference(self, permuted):
        w, permutation = permuted
        _assert_equivalent(
            incomplete_ldl(w, fill_level=2, backend="reference"),
            incomplete_ldl(
                w, fill_level=2, blocks=permutation.cluster_slices, jobs=2
            ),
        )

    def test_non_bordered_matrix_rejected(self):
        # A dense-ish random W is not block diagonal w.r.t. an arbitrary
        # split, and the numeric phase must refuse rather than mis-factor.
        w = _ranking_w(30, 11)
        blocks = [slice(0, 10), slice(10, 20), slice(20, 30)]
        with pytest.raises(ValueError, match="bordered block diagonal"):
            incomplete_ldl(w, blocks=blocks)

    def test_malformed_blocks_rejected(self, permuted):
        w, _ = permuted
        n = w.shape[0]
        with pytest.raises(ValueError, match="contiguous"):
            incomplete_ldl(w, blocks=[slice(0, 10), slice(12, n)])
        with pytest.raises(ValueError, match="blocks cover"):
            incomplete_ldl(w, blocks=[slice(0, n - 1)])

    def test_bad_jobs_rejected(self, permuted):
        w, _ = permuted
        with pytest.raises(ValueError, match="jobs"):
            incomplete_ldl(w, jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            complete_ldl(w, jobs=-2)


class TestDownstreamAnswers:
    """Backend/jobs choices must never change what a query returns."""

    @pytest.fixture(scope="class")
    def rankers(self, bridged_graph):
        reference = MogulRanker(
            bridged_graph,
            factor_backend="reference",
            clusterer=louvain_reference,
        )
        csr = MogulRanker(bridged_graph, factor_backend="csr", jobs=2)
        return reference, csr

    def test_top_k_matches_across_backends(self, rankers, bridged_graph):
        reference, csr = rankers
        for query in range(0, bridged_graph.n_nodes, 7):
            expected = reference.top_k(query, 10)
            actual = csr.top_k(query, 10)
            assert np.array_equal(expected.indices, actual.indices)
            np.testing.assert_allclose(
                expected.scores, actual.scores, rtol=1e-9
            )

    def test_exact_ranker_matches_across_backends(self, bridged_graph):
        reference = MogulRanker(
            bridged_graph, exact=True, factor_backend="reference"
        )
        csr = MogulRanker(bridged_graph, exact=True, jobs=3)
        for query in (0, 17, 80):
            expected = reference.top_k(query, 8)
            actual = csr.top_k(query, 8)
            assert np.array_equal(expected.indices, actual.indices)
            np.testing.assert_allclose(
                expected.scores, actual.scores, rtol=1e-9
            )

    def test_parallel_build_answers_bitwise(self, bridged_graph):
        sequential = MogulIndex.build(bridged_graph, jobs=1)
        parallel = MogulIndex.build(bridged_graph, jobs=4)
        ranker_seq = MogulRanker.from_index(bridged_graph, sequential)
        ranker_par = MogulRanker.from_index(bridged_graph, parallel)
        for query in (0, 21, 42, 84):
            expected = ranker_seq.top_k(query, 10)
            actual = ranker_par.top_k(query, 10)
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.scores, actual.scores)
