"""Tests for louvain_refined (recursive splitting of oversized communities)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.clustering.louvain import louvain, louvain_refined
from repro.graph.build import build_knn_graph


def multimode_features(n_modes=8, per_mode=40, dim=12, seed=0):
    """One giant 'concept': well-separated modes inside a common region."""
    rng = np.random.default_rng(seed)
    blocks = []
    for _ in range(n_modes):
        center = rng.normal(scale=4.0, size=dim)
        blocks.append(center + rng.normal(scale=0.3, size=(per_mode, dim)))
    return np.vstack(blocks)


class TestRefinement:
    def test_splits_oversized_structured_community(self):
        features = multimode_features()
        graph = build_knn_graph(features, k=5)
        labels = louvain_refined(graph.adjacency, max_cluster_size=60)
        counts = np.bincount(labels)
        # Every cluster with substructure got split under the cap.
        assert counts.max() <= 60

    def test_noop_when_communities_fit(self, clustered_graph):
        plain = louvain(clustered_graph.adjacency)
        refined = louvain_refined(
            clustered_graph.adjacency,
            max_cluster_size=int(np.bincount(plain).max()),
        )
        # Same partition (labels may be renamed): compare co-membership.
        assert _same_partition(plain, refined)

    def test_dense_blob_left_alone(self):
        """A single dense community with no substructure must not be split."""
        rng = np.random.default_rng(1)
        features = rng.normal(scale=0.5, size=(120, 6))
        graph = build_knn_graph(features, k=6)
        plain = louvain(graph.adjacency)
        refined = louvain_refined(graph.adjacency, max_cluster_size=10)
        # Refinement may find incidental substructure in noise, but it must
        # never produce singleton dust: pieces keep a sensible minimum mass.
        counts = np.bincount(refined)
        assert counts.min() >= 1
        assert refined.shape == plain.shape

    def test_labels_contiguous(self):
        features = multimode_features(n_modes=4, per_mode=30)
        graph = build_knn_graph(features, k=4)
        labels = louvain_refined(graph.adjacency, max_cluster_size=40)
        unique = np.unique(labels)
        np.testing.assert_array_equal(unique, np.arange(unique.size))

    def test_automatic_cap_is_parameter_free(self):
        features = multimode_features(n_modes=6, per_mode=50)
        graph = build_knn_graph(features, k=5)
        labels = louvain_refined(graph.adjacency)  # no cap supplied
        assert labels.shape == (graph.n_nodes,)

    def test_deterministic(self):
        features = multimode_features(n_modes=5, per_mode=30, seed=3)
        graph = build_knn_graph(features, k=5)
        a = louvain_refined(graph.adjacency, max_cluster_size=50)
        b = louvain_refined(graph.adjacency, max_cluster_size=50)
        np.testing.assert_array_equal(a, b)

    def test_bad_cap_rejected(self, clustered_graph):
        with pytest.raises(ValueError, match="max_cluster_size"):
            louvain_refined(clustered_graph.adjacency, max_cluster_size=0)

    def test_empty_graph(self):
        labels = louvain_refined(sp.csr_matrix((0, 0)))
        assert labels.shape == (0,)


def _same_partition(a: np.ndarray, b: np.ndarray) -> bool:
    """True when two labelings induce the same partition."""
    mapping: dict[int, int] = {}
    for la, lb in zip(a.tolist(), b.tolist()):
        if la in mapping:
            if mapping[la] != lb:
                return False
        else:
            mapping[la] = lb
    return len(set(mapping.values())) == len(mapping)


class TestRefinedParallel:
    def test_jobs_identical_labels(self):
        graph = build_knn_graph(multimode_features(), k=5)
        sequential = louvain_refined(graph.adjacency, max_cluster_size=40, jobs=1)
        parallel = louvain_refined(graph.adjacency, max_cluster_size=40, jobs=4)
        np.testing.assert_array_equal(sequential, parallel)

    def test_impl_identical_labels(self):
        graph = build_knn_graph(multimode_features(n_modes=4), k=5)
        fast = louvain_refined(graph.adjacency, max_cluster_size=30)
        reference = louvain_refined(
            graph.adjacency, max_cluster_size=30, impl="reference"
        )
        np.testing.assert_array_equal(fast, reference)

    def test_bad_jobs_rejected(self):
        graph = build_knn_graph(multimode_features(n_modes=2, per_mode=12), k=4)
        with pytest.raises(ValueError, match="jobs"):
            louvain_refined(graph.adjacency, jobs=0)
