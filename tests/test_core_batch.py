"""Tests for the batched multi-query execution engine (repro.core.batch).

The engine's contract is strict: batching is an *execution strategy*, so
every answer must be identical to the sequential single-query path —
indices exactly, scores to 1e-8 — across dataset seeds, both
factorizations (Mogul / MogulE) and both Figure-5 ablation switches.
Under the default ``"index"`` cluster order even the per-query
``SearchStats`` must match the sequential run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchQuery, BatchStats, top_k_batch_search
from repro.core.index import MogulIndex, MogulRanker
from repro.core.out_of_sample import build_query_seeds, build_query_seeds_batch
from repro.core.search import SearchStats, top_k_search
from repro.graph.build import build_knn_graph

SEEDS = (0, 1, 2)


def _clustered_features(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.vstack(
        [rng.normal(size=(40, 8)) + 6.0 * cls for cls in range(4)]
    )


@pytest.fixture(scope="module", params=SEEDS)
def graph(request):
    return build_knn_graph(_clustered_features(request.param), k=5)


_INDEX_CACHE: dict = {}


def _ranker(graph, exact=False, use_pruning=True, use_sparsity=True, **kwargs):
    """Rankers sharing one index build per (graph, factorization)."""
    key = (id(graph), exact)
    if key not in _INDEX_CACHE:
        _INDEX_CACHE[key] = MogulIndex.build(
            graph, factorization="complete" if exact else "incomplete"
        )
    return MogulRanker.from_index(
        graph,
        _INDEX_CACHE[key],
        use_pruning=use_pruning,
        use_sparsity=use_sparsity,
        **kwargs,
    )


class TestBatchMatchesSequential:
    @pytest.mark.parametrize("exact", [False, True])
    @pytest.mark.parametrize("use_pruning", [True, False])
    @pytest.mark.parametrize("use_sparsity", [True, False])
    def test_answers_and_stats_identical(
        self, graph, exact, use_pruning, use_sparsity
    ):
        """The property the engine is built around (all ablations)."""
        ranker = _ranker(graph, exact, use_pruning, use_sparsity)
        rng = np.random.default_rng(7)
        queries = rng.choice(graph.n_nodes, size=16, replace=False)
        batched = ranker.top_k_batch(queries, 8)
        batch_stats = ranker.last_batch_stats
        assert len(batched) == queries.size
        assert len(batch_stats.per_query) == queries.size
        for j, query in enumerate(queries):
            reference = ranker.top_k(int(query), 8)
            sequential = ranker.last_stats
            np.testing.assert_array_equal(batched[j].indices, reference.indices)
            np.testing.assert_allclose(
                batched[j].scores, reference.scores, atol=1e-8
            )
            per_query = batch_stats.per_query[j]
            assert per_query.clusters_total == sequential.clusters_total
            assert per_query.clusters_pruned == sequential.clusters_pruned
            assert per_query.clusters_scored == sequential.clusters_scored
            assert per_query.nodes_scored == sequential.nodes_scored
            assert per_query.bound_evaluations == sequential.bound_evaluations
            assert per_query.pruned_nodes == sequential.pruned_nodes

    def test_bound_desc_order_answers_identical(self, graph):
        """bound_desc shares one scan order batch-wide; answers still match
        (pruning is conservative under any visit order), though stats may
        legitimately differ from the per-query sort."""
        ranker = _ranker(graph, cluster_order="bound_desc")
        rng = np.random.default_rng(11)
        queries = rng.choice(graph.n_nodes, size=12, replace=False)
        batched = ranker.top_k_batch(queries, 6)
        for j, query in enumerate(queries):
            reference = ranker.top_k(int(query), 6)
            np.testing.assert_array_equal(batched[j].indices, reference.indices)
            np.testing.assert_allclose(
                batched[j].scores, reference.scores, atol=1e-8
            )

    def test_include_query_variant(self, graph):
        ranker = _ranker(graph)
        queries = np.asarray([3, 50, 90])
        batched = ranker.top_k_batch(queries, 5, exclude_query=False)
        for j, query in enumerate(queries):
            reference = ranker.top_k(int(query), 5, exclude_query=False)
            np.testing.assert_array_equal(batched[j].indices, reference.indices)
            # The query node itself must rank first.
            assert batched[j].indices[0] == query

    def test_duplicate_queries_allowed(self, graph):
        """A batch of *independent* queries may repeat a node."""
        ranker = _ranker(graph)
        batched = ranker.top_k_batch(np.asarray([5, 5, 17]), 4)
        np.testing.assert_array_equal(batched[0].indices, batched[1].indices)
        np.testing.assert_allclose(batched[0].scores, batched[1].scores)

    def test_multi_seed_batch_queries(self, graph):
        """Grouping handles queries whose seeds span several clusters."""
        index = _ranker(graph).index
        perm = index.permutation
        rng = np.random.default_rng(23)
        batch = []
        for _ in range(6):
            nodes = rng.choice(graph.n_nodes, size=3, replace=False)
            positions = perm.inverse[nodes]
            weights = np.full(3, (1.0 - 0.99) / 3.0)
            batch.append(
                BatchQuery(
                    seed_positions=positions,
                    seed_weights=weights,
                    exclude_positions=tuple(int(p) for p in positions),
                )
            )
        answers, stats = top_k_batch_search(
            index.factors,
            perm,
            index.bounds,
            batch,
            5,
            solver=index.solver,
            bounds_table=index.bounds_table,
        )
        for query, batched in zip(batch, answers):
            reference, _ = top_k_search(
                index.factors,
                perm,
                index.bounds,
                seed_positions=query.seed_positions,
                seed_weights=query.seed_weights,
                k=5,
                exclude_positions=query.exclude_positions,
                solver=index.solver,
                bounds_table=index.bounds_table,
            )
            assert [p for p, _ in batched] == [p for p, _ in reference]
            for (_, a), (_, b) in zip(batched, reference):
                assert a == pytest.approx(b, abs=1e-8)


class TestOutOfSampleBatch:
    @pytest.mark.parametrize("n_probe", [1, 2])
    def test_matches_sequential(self, graph, n_probe):
        ranker = _ranker(graph)
        rng = np.random.default_rng(13)
        picks = rng.choice(graph.n_nodes, size=6, replace=False)
        features = graph.features[picks] + rng.normal(
            scale=0.05, size=(picks.size, graph.features.shape[1])
        )
        batched = ranker.top_k_out_of_sample_batch(features, 5, n_probe=n_probe)
        for feature, result in zip(features, batched):
            reference = ranker.top_k_out_of_sample(feature, 5, n_probe=n_probe)
            np.testing.assert_array_equal(result.indices, reference.indices)
            np.testing.assert_allclose(result.scores, reference.scores, atol=1e-8)

    def test_seed_builder_matches_single(self, graph):
        index = _ranker(graph).index
        rng = np.random.default_rng(17)
        features = rng.normal(size=(5, graph.features.shape[1])) + 6.0
        batched = build_query_seeds_batch(
            features,
            index.cluster_means,
            index.cluster_members,
            graph.features,
            n_neighbors=graph.k,
            sigma=graph.sigma,
        )
        assert len(batched) == 5
        for feature, seeds in zip(features, batched):
            single = build_query_seeds(
                feature,
                index.cluster_means,
                index.cluster_members,
                graph.features,
                n_neighbors=graph.k,
                sigma=graph.sigma,
            )
            np.testing.assert_array_equal(seeds.nodes, single.nodes)
            np.testing.assert_allclose(seeds.weights, single.weights)
            assert seeds.cluster == single.cluster

    def test_feature_matrix_validated(self, graph):
        ranker = _ranker(graph)
        with pytest.raises(ValueError, match="shape"):
            ranker.top_k_out_of_sample_batch(
                np.zeros((2, graph.features.shape[1] + 1)), 3
            )


class TestBatchStats:
    def test_aggregate_sums_counters(self):
        first = SearchStats(
            clusters_total=5,
            clusters_pruned=2,
            clusters_scored=3,
            nodes_scored=30,
            bound_evaluations=4,
            pruned_nodes=20,
        )
        second = SearchStats(
            clusters_total=5,
            clusters_pruned=4,
            clusters_scored=1,
            nodes_scored=10,
            bound_evaluations=4,
            pruned_nodes=40,
        )
        totals = SearchStats.aggregate([first, second])
        assert totals.clusters_total == 10
        assert totals.clusters_pruned == 6
        assert totals.clusters_scored == 4
        assert totals.nodes_scored == 40
        assert totals.bound_evaluations == 8
        assert totals.pruned_nodes == 60
        batch = BatchStats(per_query=(first, second))
        assert len(batch) == 2
        assert batch.prune_fraction == pytest.approx(6 / 10)

    def test_ranker_records_batch_stats(self, graph):
        ranker = _ranker(graph)
        assert ranker.last_batch_stats is None
        ranker.top_k_batch(np.asarray([1, 2, 3]), 4)
        assert len(ranker.last_batch_stats) == 3
        totals = ranker.last_batch_stats.totals
        assert totals.clusters_total == 3 * ranker.index.n_clusters


class TestValidation:
    def test_empty_batch(self, graph):
        ranker = _ranker(graph)
        assert ranker.top_k_batch(np.asarray([], dtype=np.int64), 5) == []

    def test_bad_node_rejected(self, graph):
        ranker = _ranker(graph)
        with pytest.raises(ValueError, match="out of range"):
            ranker.top_k_batch(np.asarray([0, graph.n_nodes]), 5)

    def test_bad_k_rejected(self, graph):
        ranker = _ranker(graph)
        with pytest.raises(ValueError, match="positive"):
            ranker.top_k_batch(np.asarray([0]), 0)

    def test_engine_rejects_bad_cluster_order(self, graph):
        index = _ranker(graph).index
        with pytest.raises(ValueError, match="cluster_order"):
            top_k_batch_search(
                index.factors,
                index.permutation,
                index.bounds,
                [],
                5,
                cluster_order="sideways",
            )
