"""Smoke + shape tests for the experiment modules (tiny scale).

Each exhibit module must run end to end at a small scale and produce
tables with the right structure; where the paper's qualitative shape is
cheap to check (e.g. Lemma 3's zero off-block fraction, MogulE's P@k = 1),
we assert it here too.  Full-size shape comparisons live in the benchmark
harness and EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import ExperimentTable
from repro.experiments import ExperimentConfig, clear_caches
from repro.experiments import ablations, fig1, fig2_3_4, fig5, fig6, fig7_table2, fig8, fig9, scaling
from repro.experiments.__main__ import EXHIBITS, build_parser, main


@pytest.fixture(scope="module")
def tiny_config():
    clear_caches()
    return ExperimentConfig(
        scale=0.12,
        n_queries=3,
        k=5,
        seed=0,
        extra={"anchor_counts": (5, 20)},
    )


class TestFig1:
    def test_structure(self, tiny_config):
        tables = fig1.run(tiny_config)
        assert len(tables) == 1
        table = tables[0]
        assert len(table.rows) == 4  # four datasets
        assert table.columns[0] == "dataset"
        for row in table.rows:
            # every timing cell is a positive float or a skip marker
            for cell in row[2:]:
                assert (isinstance(cell, float) and cell > 0) or "skip" in str(cell)

    def test_mogul_constant_in_k(self, tiny_config):
        """Mogul's cost is independent of k (its theoretical selling
        point); allow generous wiggle for timing noise at tiny scale."""
        table = fig1.run(tiny_config)[0]
        for row in table.rows:
            mogul_times = [c for c in row[2:6] if isinstance(c, float)]
            assert max(mogul_times) < 25 * min(mogul_times) + 1e-3


class TestFig234:
    def test_structure_and_shapes(self, tiny_config):
        fig2, fig3, fig4 = fig2_3_4.run(tiny_config)
        for table in (fig2, fig3, fig4):
            assert [int(r[0]) for r in table.rows] == [5, 20]
        # MogulE is exact: P@k exactly 1.0 in every row of Figure 2
        for row in fig2.rows:
            assert row[3] == pytest.approx(1.0)
        # Mogul's columns are constant across the sweep (anchor-free)
        assert len({row[2] for row in fig2.rows}) == 1
        assert len({row[2] for row in fig3.rows}) == 1

    def test_metrics_in_unit_interval(self, tiny_config):
        fig2, fig3, _ = fig2_3_4.run(tiny_config)
        for table in (fig2, fig3):
            for row in table.rows:
                for cell in row[1:]:
                    assert 0.0 <= cell <= 1.0


class TestFig5:
    def test_structure(self, tiny_config):
        table = fig5.run(tiny_config)[0]
        assert len(table.rows) == 4
        for row in table.rows:
            assert all(isinstance(c, float) and c > 0 for c in row[2:])


class TestFig6:
    def test_lemma3_shape(self, tiny_config):
        stats_table, raster_table = fig6.run(tiny_config)
        mogul_rows = [r for r in stats_table.rows if r[1] == "Mogul"]
        random_rows = [r for r in stats_table.rows if r[1] == "Random"]
        assert len(mogul_rows) == 4 and len(random_rows) == 4
        for row in mogul_rows:
            assert row[5] == 0.0  # off_block fraction: Lemma 3
        # the incomplete factor's cluster fractions are permutation
        # invariant; the Figure 6 scatter shows up as band distance — the
        # random order scatters entries far from the diagonal
        for mogul_row, random_row in zip(mogul_rows, random_rows):
            assert random_row[6] >= mogul_row[6] - 1e-12
        assert any(
            random_row[6] > 1.5 * mogul_row[6]
            for mogul_row, random_row in zip(mogul_rows, random_rows)
            if mogul_row[6] > 0
        )
        assert len(raster_table.rows) > 0


class TestFig7Table2:
    def test_structure(self, tiny_config):
        fig7, table2 = fig7_table2.run(tiny_config)
        assert len(fig7.rows) == 4
        assert len(table2.rows) == 4
        for row in table2.rows:
            nn, topk, overall = row[1], row[2], row[3]
            assert overall == pytest.approx(nn + topk, rel=1e-6)


class TestFig8:
    def test_structure(self, tiny_config):
        table = fig8.run(tiny_config)[0]
        assert len(table.rows) == 4
        for row in table.rows:
            assert row[2] > 0 and row[3] > 0


class TestFig9:
    def test_structure(self, tiny_config):
        table = fig9.run(tiny_config)[0]
        assert 1 <= len(table.rows) <= 4
        for row in table.rows:
            assert 0.0 <= row[5] <= 1.0
            assert 0.0 <= row[6] <= 1.0


class TestAblations:
    def test_structure(self, tiny_config):
        tables = ablations.run(tiny_config)
        assert len(tables) == 5
        titles = " | ".join(table.title for table in tables)
        for token in ("ordering", "fill level", "alpha", "graph degree", "multi-seed"):
            assert token in titles
        for table in tables:
            assert table.rows, f"{table.title} produced no rows"

    def test_ordering_quality_in_unit_interval(self, tiny_config):
        table = ablations.ordering_quality(tiny_config)
        for row in table.rows:
            for cell in row[1:]:
                assert 0.0 <= float(cell) <= 1.0

    def test_multi_seed_costs_are_positive(self, tiny_config):
        table = ablations.multi_seed_sweep(tiny_config)
        times = [row[1] for row in table.rows]
        assert all(t > 0 for t in times)


class TestScaling:
    def test_structure(self, tiny_config):
        tables = scaling.run(tiny_config)
        assert len(tables) == 2
        query_table, pre_table = tables
        assert len(query_table.rows) == len(scaling.SWEEP_FACTORS)
        sizes = [row[0] for row in query_table.rows]
        assert sizes == sorted(sizes)
        # exponent note present
        assert any("exponent" in note for note in query_table.notes)

    def test_doubling_exponent_of_linear_data(self):
        import numpy as np

        sizes = np.asarray([1000, 2000, 4000])
        times = np.asarray([1.0, 2.0, 4.0])
        assert scaling._doubling_exponent(sizes, times) == pytest.approx(1.0)

    def test_doubling_exponent_degenerate(self):
        import numpy as np

        assert np.isnan(
            scaling._doubling_exponent(np.asarray([10]), np.asarray([0.0]))
        )


class TestCLI:
    def test_every_exhibit_registered(self):
        for name in ("fig1", "fig2-4", "fig5", "fig6", "fig7", "fig8", "fig9", "table2"):
            assert name in EXHIBITS

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.scale == 1.0
        assert args.exhibit == "fig1"

    def test_main_runs_one_exhibit(self, capsys, tmp_path):
        out_file = tmp_path / "results.md"
        code = main(
            [
                "fig9",
                "--scale",
                "0.12",
                "--queries",
                "2",
                "--out",
                str(out_file),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "Figure 9" in captured.out
        assert out_file.exists()
        assert "### Figure 9" in out_file.read_text()
