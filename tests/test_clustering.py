"""Tests for modularity, Louvain, k-means and spectral clustering."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import (
    kmeans,
    louvain,
    louvain_reference,
    modularity,
    spectral_clustering,
)
from tests.conftest import random_symmetric_adjacency, three_cluster_features


def two_clique_graph(size: int = 6, bridge: bool = True) -> sp.csr_matrix:
    """Two cliques optionally joined by a single bridge edge."""
    n = 2 * size
    dense = np.zeros((n, n))
    dense[:size, :size] = 1.0
    dense[size:, size:] = 1.0
    np.fill_diagonal(dense, 0.0)
    if bridge:
        dense[0, size] = dense[size, 0] = 1.0
    return sp.csr_matrix(dense)


class TestModularity:
    def test_two_cliques_partition_beats_trivial(self):
        adj = two_clique_graph()
        labels_good = np.array([0] * 6 + [1] * 6)
        labels_trivial = np.zeros(12, dtype=np.int64)
        assert modularity(adj, labels_good) > modularity(adj, labels_trivial)

    def test_single_community_is_zero(self):
        adj = two_clique_graph(bridge=False)
        assert modularity(adj, np.zeros(12, dtype=np.int64)) == pytest.approx(0.0)

    def test_range_bounds(self):
        adj = two_clique_graph()
        for labels in (np.zeros(12, dtype=int), np.arange(12)):
            q = modularity(adj, labels)
            assert -0.5 <= q <= 1.0

    def test_empty_graph(self):
        assert modularity(sp.csr_matrix((3, 3)), np.arange(3)) == 0.0

    def test_label_length_mismatch(self):
        with pytest.raises(ValueError, match="labels"):
            modularity(two_clique_graph(), np.zeros(5, dtype=int))

    def test_invariant_under_label_renaming(self):
        adj = random_symmetric_adjacency(20, seed=1)
        labels = np.random.default_rng(0).integers(0, 4, size=20)
        renamed = (labels + 7) % 11  # injective on 0..3 -> still a labelling
        # re-densify ids
        _, renamed = np.unique(renamed, return_inverse=True)
        assert modularity(adj, labels) == pytest.approx(modularity(adj, renamed))


class TestLouvain:
    def test_separates_cliques(self):
        adj = two_clique_graph()
        labels = louvain(adj)
        assert labels[0] == labels[5]
        assert labels[6] == labels[11]
        assert labels[0] != labels[6]

    def test_disconnected_components_stay_separate(self):
        adj = two_clique_graph(bridge=False)
        labels = louvain(adj)
        assert len(np.unique(labels)) == 2

    def test_labels_contiguous(self):
        adj = random_symmetric_adjacency(40, seed=2)
        labels = louvain(adj)
        uniq = np.unique(labels)
        np.testing.assert_array_equal(uniq, np.arange(uniq.size))

    def test_improves_over_singletons(self):
        adj = random_symmetric_adjacency(50, seed=3, density=0.1)
        labels = louvain(adj)
        q_louvain = modularity(adj, labels)
        q_singletons = modularity(adj, np.arange(50))
        assert q_louvain >= q_singletons

    def test_deterministic_without_shuffle(self):
        adj = random_symmetric_adjacency(40, seed=4)
        np.testing.assert_array_equal(louvain(adj), louvain(adj))

    def test_empty_graph(self):
        assert louvain(sp.csr_matrix((0, 0))).size == 0

    def test_edgeless_graph(self):
        labels = louvain(sp.csr_matrix((5, 5)))
        assert len(np.unique(labels)) == 5

    def test_resolution_validation(self):
        with pytest.raises(ValueError, match="resolution"):
            louvain(two_clique_graph(), resolution=0.0)

    def test_high_resolution_gives_more_clusters(self):
        features, _ = three_cluster_features(per_cluster=25)
        from repro.graph import build_knn_graph

        adj = build_knn_graph(features, k=5).adjacency
        low = len(np.unique(louvain(adj, resolution=0.5)))
        high = len(np.unique(louvain(adj, resolution=3.0)))
        assert high >= low

    def test_knn_graph_recovers_ground_truth(self, clustered_graph, clustered_labels):
        labels = louvain(clustered_graph.adjacency)
        # Louvain clusters must refine or match the three true clusters:
        # every Louvain community lies inside one ground-truth cluster.
        for community in np.unique(labels):
            members = clustered_labels[labels == community]
            assert len(np.unique(members)) == 1


class TestKMeans:
    def test_recovers_separated_clusters(self):
        features, labels = three_cluster_features(per_cluster=30)
        result = kmeans(features, 3, seed=0, n_init=3)
        # same-cluster points share a centroid; map labels via majority
        for c in range(3):
            assigned = result.labels[labels == c]
            values, counts = np.unique(assigned, return_counts=True)
            assert counts.max() / counts.sum() == pytest.approx(1.0)

    def test_inertia_zero_when_k_equals_n(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(6, 2))
        result = kmeans(points, 6, seed=1)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_is_mean(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(20, 3))
        result = kmeans(points, 1, seed=0)
        np.testing.assert_allclose(result.centroids[0], points.mean(axis=0), atol=1e-9)

    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(30, 2))
        a = kmeans(points, 4, seed=9)
        b = kmeans(points, 4, seed=9)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_n_init_improves_or_ties(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(50, 2))
        single = kmeans(points, 5, seed=4, n_init=1)
        multi = kmeans(points, 5, seed=4, n_init=5)
        assert multi.inertia <= single.inertia + 1e-9

    def test_validation(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError, match="exceeds"):
            kmeans(points, 4)
        with pytest.raises(ValueError, match="non-empty"):
            kmeans(np.zeros((0, 2)), 1)

    def test_duplicate_points(self):
        points = np.ones((10, 2))
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=30),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_labels_valid_and_inertia_consistent(self, n, k, seed):
        if k > n:
            k = n
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 3))
        result = kmeans(points, k, seed=seed)
        assert result.labels.shape == (n,)
        assert result.labels.min() >= 0 and result.labels.max() < k
        recomputed = sum(
            np.sum((points[i] - result.centroids[result.labels[i]]) ** 2)
            for i in range(n)
        )
        assert result.inertia == pytest.approx(recomputed, rel=1e-9, abs=1e-9)


class TestSpectral:
    def test_separates_cliques(self):
        adj = two_clique_graph()
        labels = spectral_clustering(adj, 2, seed=0)
        assert labels[0] == labels[5]
        assert labels[6] == labels[11]
        assert labels[0] != labels[6]

    def test_three_gaussian_clusters(self, clustered_graph, clustered_labels):
        labels = spectral_clustering(clustered_graph.adjacency, 3, seed=0)
        for c in np.unique(labels):
            members = clustered_labels[labels == c]
            values, counts = np.unique(members, return_counts=True)
            assert counts.max() / counts.sum() >= 0.95

    def test_single_cluster(self):
        adj = two_clique_graph()
        labels = spectral_clustering(adj, 1)
        assert np.all(labels == 0)

    def test_validation(self):
        adj = two_clique_graph()
        with pytest.raises(ValueError, match="exceeds"):
            spectral_clustering(adj, 13)

    def test_isolated_nodes_handled(self):
        adj = sp.lil_matrix((8, 8))
        adj[0, 1] = adj[1, 0] = 1.0
        adj[2, 3] = adj[3, 2] = 1.0
        labels = spectral_clustering(adj.tocsr(), 2, seed=1)
        assert labels.shape == (8,)


class TestLouvainImplementations:
    """The fast and reference local-move sweeps are the same algorithm."""

    @pytest.mark.parametrize("n,seed", [(30, 0), (80, 1), (150, 2)])
    def test_labels_bitwise_identical(self, n, seed):
        adj = random_symmetric_adjacency(n, seed=seed)
        fast = louvain(adj, impl="fast")
        reference = louvain(adj, impl="reference")
        np.testing.assert_array_equal(fast, reference)

    def test_identical_on_knn_graph(self, clustered_graph):
        fast = louvain(clustered_graph.adjacency)
        reference = louvain_reference(clustered_graph.adjacency)
        np.testing.assert_array_equal(fast, reference)

    def test_shuffled_order_identical(self):
        adj = random_symmetric_adjacency(60, seed=3)
        fast = louvain(adj, shuffle=True, seed=42, impl="fast")
        reference = louvain(adj, shuffle=True, seed=42, impl="reference")
        np.testing.assert_array_equal(fast, reference)

    def test_unknown_impl_rejected(self):
        adj = random_symmetric_adjacency(10, seed=0)
        with pytest.raises(ValueError, match="impl"):
            louvain(adj, impl="gpu")

    def test_nonpositive_weights_fall_back(self):
        # Explicit zero-weight edge: the scatter accumulator would be
        # unsound, so the fast path must route through the reference
        # sweep — and still agree with it.
        adj = random_symmetric_adjacency(40, seed=4).tolil()
        adj[0, 1] = adj[1, 0] = 0.0
        adj = adj.tocsr()
        np.testing.assert_array_equal(
            louvain(adj, impl="fast"), louvain(adj, impl="reference")
        )
