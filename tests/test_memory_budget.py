"""Tests for memory-budgeted serving (LRU shard residency + compact bounds).

The contract is exacting on purpose: under ANY memory budget and ANY
bound-table representation, the sharded engine's answers — indices,
scores, tie-breaks — and its per-query :class:`SearchStats` are bitwise
identical to the unbudgeted float64 engine.  Eviction and quantization
may change *when* bytes are resident and *how* bounds are evaluated,
never *what* is answered.  Alongside the identity property this module
regression-tests the three bugfixes that rode along: the lazy-load race
(per-shard once locks), the mmap fd leak (loaders own a close path,
exercised across 100 evict/reload cycles), and the cold-server
``Retry-After`` divide-by-zero (the delay estimate clamps before the
first batch completes).
"""

from __future__ import annotations

import concurrent.futures
import os
import threading

import numpy as np
import pytest
import scipy.sparse as sp

import repro.core.bounds as bounds_module
from repro.core.bounds import (
    BOUND_TABLE_DTYPES,
    BoundsTable,
    CompactBoundsTable,
)
from repro.core.engine import engine_from_index
from repro.core.index import MogulIndex
from repro.core.serialize import (
    load_sharded_index,
    save_index,
    save_sharded_index,
)
from repro.core.sharded import (
    ShardedMogulIndex,
    ShardedMogulRanker,
    ShardResidencyManager,
)
from repro.core.spectral import SpectralIndex
from repro.graph.build import build_knn_graph
from tests.conftest import three_cluster_features

QUERY_SET = (0, 7, 45, 90, 131, 170)
TOP_K = 10


@pytest.fixture(scope="module")
def graph():
    features, _ = three_cluster_features(per_cluster=60, dim=8)
    return build_knn_graph(features, k=5)


@pytest.fixture(scope="module")
def saved_index(graph, tmp_path_factory):
    index = ShardedMogulIndex.build(graph, 4)
    path = tmp_path_factory.mktemp("budget") / "idx.shards"
    save_sharded_index(index, path)
    return path


@pytest.fixture(scope="module")
def reference(graph, saved_index):
    """Unbudgeted float64 answers + stats for the whole query set."""
    ranker = ShardedMogulRanker.from_index(
        graph, load_sharded_index(saved_index)
    )
    answers = {}
    for query in QUERY_SET:
        result = ranker.top_k(query, TOP_K)
        answers[query] = (result, ranker.last_stats)
    return answers


def _random_table(rng, n_clusters=12, n_border=30, density=0.3, scale=1.0):
    mask = rng.random((n_clusters, n_border)) < density
    values = rng.random((n_clusters, n_border)) * scale * mask
    matrix = sp.csr_matrix(values)
    growth = 1.0 + rng.random(n_clusters) * 3.0
    growth[rng.random(n_clusters) < 0.1] = np.inf  # saturated rows
    return BoundsTable(matrix=matrix, growth=growth)


class TestCompactBoundsTable:
    """The quantized tables must *certify* the exact float64 bound."""

    @pytest.mark.parametrize("dtype", ("float32", "int8"))
    def test_bands_bracket_exact_bound(self, dtype):
        rng = np.random.default_rng(11)
        for trial in range(60):
            table = _random_table(rng, scale=10.0 ** rng.integers(-3, 4))
            compact = CompactBoundsTable.from_table(table, dtype)
            x = rng.random(table.matrix.shape[1]) * 2.0
            exact = table.estimate_all(x)
            lo, hi = compact.estimate_bands(x)
            assert np.all(lo <= exact), (dtype, trial)
            assert np.all(exact <= hi), (dtype, trial)

    @pytest.mark.parametrize("dtype", ("float32", "int8"))
    def test_bands_bracket_batched_queries(self, dtype):
        rng = np.random.default_rng(5)
        table = _random_table(rng)
        compact = CompactBoundsTable.from_table(table, dtype)
        x = rng.random((table.matrix.shape[1], 7))
        exact = table.estimate_all(x)
        lo, hi = compact.estimate_bands(x)
        assert lo.shape == hi.shape == exact.shape
        assert np.all(lo <= exact)
        assert np.all(exact <= hi)

    def test_zero_base_is_exactly_zero(self):
        # estimate_all clamps base <= 0 rows to a hard 0.0; the compact
        # band must reproduce that exactly (0.0 * inf growth is the case
        # where "approximately zero" would poison the bound with NaN).
        matrix = sp.csr_matrix(np.array([[0.0, 0.0], [0.5, 0.0]]))
        table = BoundsTable(matrix=matrix, growth=np.array([np.inf, 2.0]))
        for dtype in ("float32", "int8"):
            lo, hi = CompactBoundsTable.from_table(
                table, dtype
            ).estimate_bands(np.array([0.0, 1.0]))
            assert lo[0] == 0.0 and hi[0] == 0.0

    def test_float32_underflow_row_is_always_ambiguous(self):
        # An entry too small for float32 cannot be widened multiplicatively;
        # the whole row must degrade to the (0, inf) never-certain band.
        tiny = float(np.finfo(np.float64).tiny)
        matrix = sp.csr_matrix(np.array([[tiny, 0.0], [0.5, 0.25]]))
        table = BoundsTable(matrix=matrix, growth=np.array([2.0, 2.0]))
        compact = CompactBoundsTable.from_table(table, "float32")
        lo, hi = compact.estimate_bands(np.array([1.0, 1.0]))
        assert lo[0] == 0.0 and hi[0] == np.inf
        exact = table.estimate_all(np.array([1.0, 1.0]))
        assert lo[1] <= exact[1] <= hi[1] < np.inf

    def test_compact_tables_are_smaller(self):
        table = _random_table(np.random.default_rng(2), n_clusters=40)
        exact_bytes = (
            table.matrix.data.nbytes
            + table.matrix.indices.nbytes
            + table.matrix.indptr.nbytes
            + table.growth.nbytes
        )
        f32 = CompactBoundsTable.from_table(table, "float32").nbytes
        i8 = CompactBoundsTable.from_table(table, "int8").nbytes
        assert i8 < f32 < exact_bytes

    def test_unknown_dtype_rejected(self):
        table = _random_table(np.random.default_rng(0))
        with pytest.raises(ValueError, match="dtype"):
            CompactBoundsTable.from_table(table, "int4")
        assert "float64" in BOUND_TABLE_DTYPES


class TestShardResidencyManager:
    def test_accounting_and_lru_victim(self):
        mgr = ShardResidencyManager(budget_bytes=250, n_shards=3)
        mgr.on_materialize(0, 100)
        mgr.on_materialize(1, 100)
        assert mgr.resident_bytes == 200
        assert mgr.pick_victim() is None  # under budget
        mgr.on_materialize(2, 100)
        mgr.touch(0)  # 1 is now least recently used
        assert mgr.pick_victim() == 1
        assert mgr.begin_evict(1)
        assert mgr.resident_bytes == 200
        assert mgr.evictions_total == 1

    def test_pins_block_eviction(self):
        mgr = ShardResidencyManager(budget_bytes=50, n_shards=2)
        mgr.on_materialize(0, 100)
        mgr.pin(0)
        assert mgr.pick_victim() is None
        assert not mgr.begin_evict(0)
        mgr.unpin(0)
        assert mgr.pick_victim() == 0
        mgr.unpin(0)  # over-unpin clamps, never goes negative
        assert mgr.snapshot()["shards"][0]["pins"] == 0

    def test_refault_counts_as_fault(self):
        mgr = ShardResidencyManager(budget_bytes=None, n_shards=1)
        mgr.on_materialize(0, 10)
        mgr.on_materialize(0, 10)  # idempotent while resident
        assert mgr.loads_total == 1 and mgr.faults_total == 0
        assert mgr.begin_evict(0)
        mgr.on_materialize(0, 10)
        assert mgr.loads_total == 2 and mgr.faults_total == 1

    def test_unbudgeted_never_picks_a_victim(self):
        mgr = ShardResidencyManager(budget_bytes=None, n_shards=2)
        mgr.on_materialize(0, 1 << 30)
        mgr.on_materialize(1, 1 << 30)
        assert mgr.pick_victim() is None

    def test_snapshot_surface(self):
        mgr = ShardResidencyManager(budget_bytes=100, n_shards=2)
        mgr.on_materialize(0, 60)
        mgr.pin(0)
        snap = mgr.snapshot()
        for key in (
            "budget_bytes",
            "resident_bytes",
            "pinned_bytes",
            "shards_resident",
            "loads_total",
            "faults_total",
            "evictions_total",
            "evicted_bytes_total",
            "bound_fallbacks_total",
            "peak_resident_bytes",
            "shards",
        ):
            assert key in snap, key
        assert snap["pinned_bytes"] == 60
        assert snap["shards"][0]["resident"] is True
        assert snap["shards"][1]["resident"] is False


class TestBudgetedIdentity:
    """The tentpole property: budget/dtype never change an answer."""

    @pytest.mark.parametrize("bounds_dtype", BOUND_TABLE_DTYPES)
    @pytest.mark.parametrize("query_jobs", (1, 4))
    def test_sharded_bitwise_identity_under_eviction(
        self, graph, saved_index, reference, bounds_dtype, query_jobs
    ):
        index = load_sharded_index(saved_index)
        # A budget this small cannot hold even one shard: every scan
        # faults its shard back in and evictions happen mid-stream.
        mgr = index.configure_memory_budget(
            0.005, bounds_dtype=bounds_dtype
        )
        ranker = ShardedMogulRanker.from_index(
            graph, index, query_jobs=query_jobs
        )
        for query in QUERY_SET:
            expected, expected_stats = reference[query]
            result = ranker.top_k(query, TOP_K)
            assert np.array_equal(result.indices, expected.indices)
            assert np.array_equal(result.scores, expected.scores)
            assert ranker.last_stats == expected_stats
        assert mgr.evictions_total > 0
        assert mgr.faults_total > 0

    def test_flags_are_noops_on_flat_and_spectral(self, graph, tmp_path):
        flat_path = tmp_path / "flat.npz"
        save_index(MogulIndex.build(graph), flat_path)
        from repro.core.serialize import load_any_index

        flat = load_any_index(flat_path)
        plain = engine_from_index(graph, load_any_index(flat_path))
        budgeted = engine_from_index(
            graph, flat, memory_budget_mb=0.001, bounds_dtype="int8"
        )
        for query in QUERY_SET[:3]:
            a = plain.top_k(query, TOP_K)
            b = budgeted.top_k(query, TOP_K)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.scores, b.scores)

    def test_tiered_base_accepts_budget(self, graph, saved_index):
        spectral = SpectralIndex.build(graph, rank=8)
        plain = engine_from_index(
            graph, load_sharded_index(saved_index), spectral=spectral
        )
        budgeted = engine_from_index(
            graph,
            load_sharded_index(saved_index),
            spectral=spectral,
            memory_budget_mb=0.005,
            bounds_dtype="float32",
        )
        for query in QUERY_SET[:3]:
            a = plain.top_k(query, TOP_K)
            b = budgeted.top_k(query, TOP_K)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.scores, b.scores)

    def test_budget_validation(self, saved_index):
        index = load_sharded_index(saved_index)
        with pytest.raises(ValueError, match="positive"):
            index.configure_memory_budget(0.0)
        with pytest.raises(ValueError, match="bounds_dtype"):
            index.configure_memory_budget(1.0, bounds_dtype="int4")


class TestQuantizedFallback:
    @pytest.mark.parametrize("dtype", ("float32", "int8"))
    def test_ambiguous_band_falls_back_to_exact(
        self, graph, saved_index, reference, monkeypatch, dtype
    ):
        # Blow the certification band wide open (lo deeply negative, hi
        # effectively infinite): every cluster with a nonzero compact
        # estimate becomes ambiguous, so the scan MUST exercise the
        # exact-fallback path — and still answer bitwise identically,
        # because a wider *sound* band changes only the cost, never the
        # decision (the fallback re-derives it from the float64 table).
        monkeypatch.setattr(
            bounds_module, "COMPACT_RELATIVE_SLACK", 1e30
        )
        index = load_sharded_index(saved_index)
        mgr = index.configure_memory_budget(None, bounds_dtype=dtype)
        ranker = ShardedMogulRanker.from_index(graph, index)
        for query in QUERY_SET:
            expected, expected_stats = reference[query]
            result = ranker.top_k(query, TOP_K)
            assert np.array_equal(result.indices, expected.indices)
            assert np.array_equal(result.scores, expected.scores)
            assert ranker.last_stats == expected_stats
        assert mgr.bound_fallbacks_total > 0

    def test_fallback_counter_reaches_the_snapshot(
        self, graph, saved_index, monkeypatch
    ):
        monkeypatch.setattr(
            bounds_module, "COMPACT_RELATIVE_SLACK", 1e30
        )
        index = load_sharded_index(saved_index)
        index.configure_memory_budget(None, bounds_dtype="int8")
        ranker = ShardedMogulRanker.from_index(graph, index)
        for query in QUERY_SET:
            ranker.top_k(query, TOP_K)
        snap = index.residency_snapshot()
        assert snap["bounds_dtype"] == "int8"
        assert snap["bound_fallbacks_total"] > 0


class TestLazyLoadRace:
    def test_cold_engine_hammered_from_four_threads(
        self, graph, saved_index, reference
    ):
        # Regression: two threads used to race load_rows() on the same
        # cold shard, one winning and one crashing (or double-loading).
        # The per-shard once lock makes materialization exactly-once.
        for _ in range(5):  # several cold starts to give the race air
            index = load_sharded_index(saved_index)
            mgr = index.configure_memory_budget(None)  # accounting only
            ranker = ShardedMogulRanker.from_index(graph, index)
            barrier = threading.Barrier(4)

            def hammer(worker):
                barrier.wait()
                out = []
                for query in QUERY_SET:
                    out.append(ranker.top_k(query, TOP_K))
                return out

            with concurrent.futures.ThreadPoolExecutor(4) as pool:
                all_answers = list(pool.map(hammer, range(4)))
            # Exactly one materialization per shard despite 4 threads
            # arriving cold at once.
            assert mgr.loads_total == index.n_shards
            assert mgr.faults_total == 0
            for answers in all_answers:
                for query, result in zip(QUERY_SET, answers):
                    expected, _ = reference[query]
                    assert np.array_equal(result.indices, expected.indices)
                    assert np.array_equal(result.scores, expected.scores)

    def test_parallel_scans_race_eviction(self, graph, saved_index, reference):
        # query_jobs workers pin shards mid-scan while a tiny budget
        # forces the engine to evict between (never during) scans.
        index = load_sharded_index(saved_index)
        index.configure_memory_budget(0.005, bounds_dtype="float32")
        ranker = ShardedMogulRanker.from_index(graph, index, query_jobs=4)
        with concurrent.futures.ThreadPoolExecutor(4) as pool:
            results = list(
                pool.map(
                    lambda q: ranker.top_k(q, TOP_K), QUERY_SET * 3
                )
            )
        for query, result in zip(QUERY_SET * 3, results):
            expected, _ = reference[query]
            assert np.array_equal(result.indices, expected.indices)
            assert np.array_equal(result.scores, expected.scores)


class TestFdStability:
    def test_fd_count_stable_across_100_evict_reload_cycles(
        self, graph, saved_index
    ):
        # Regression: evicted shards left their np.memmap fds open, so a
        # budgeted server leaked one fd per fault until EMFILE.
        index = load_sharded_index(saved_index)
        index.configure_memory_budget(0.005)
        ranker = ShardedMogulRanker.from_index(graph, index)
        ranker.top_k(QUERY_SET[0], TOP_K)  # settle lazy imports etc.
        before = len(os.listdir("/proc/self/fd"))
        for cycle in range(100):
            ranker.top_k(QUERY_SET[cycle % len(QUERY_SET)], TOP_K)
        after = len(os.listdir("/proc/self/fd"))
        assert index.residency.evictions_total >= 100
        # Allow a tiny wobble (the listing itself opens a dirfd) but
        # nothing remotely like one fd per eviction.
        assert abs(after - before) <= 3

    def test_loader_close_is_idempotent(self, saved_index):
        index = load_sharded_index(saved_index)
        loader = index._sources[0]
        loader()  # map the shard
        loader.close()
        loader.close()  # second close is a no-op, not an error
        loader()  # and the loader still works after closing
        loader.close()


class TestColdServerRetryAfter:
    def test_delay_estimate_clamps_on_zero_mean(self):
        from repro.service.admission import AdmissionController

        class _Hist:
            count = 4
            mean_seconds = 0.0

        class _Metrics:
            mean_batch_size = 0.0

            def stage_histograms(self):
                return {"engine.dispatch": _Hist()}

        controller = AdmissionController(
            max_queue_depth=4, metrics=_Metrics()
        )
        # Regression: count > 0 with a zero mean (or zero batch size)
        # used to divide by zero inside the estimate.
        assert controller.estimated_queue_delay_seconds(10) is None
        assert controller.retry_after_seconds(10) == 1.0

    def test_delay_estimate_clamps_on_nan_mean(self):
        from repro.service.admission import AdmissionController

        class _Hist:
            count = 1
            mean_seconds = float("nan")

        class _Metrics:
            mean_batch_size = 2.0

            def stage_histograms(self):
                return {"engine.dispatch": _Hist()}

        controller = AdmissionController(
            max_queue_depth=4, metrics=_Metrics()
        )
        assert controller.estimated_queue_delay_seconds(5) is None
        assert controller.retry_after_seconds(5) == 1.0

    @pytest.mark.timeout(60)
    def test_cold_server_429_has_integral_retry_after(self, graph):
        # A 429 on the very first requests — before any batch completes —
        # must carry Retry-After: 1, not crash computing the estimate.
        from repro.core.index import MogulRanker
        from repro.service.client import RetrievalClient
        from repro.service.server import BackgroundServer

        ranker = MogulRanker(graph)
        with BackgroundServer(
            ranker,
            port=0,
            max_batch_size=1,
            max_wait_ms=50.0,
            cache_capacity=0,
            max_queue_depth=1,
            overload_policy="shed",
        ) as server:

            def one_search(worker):
                with RetrievalClient(port=server.port) as client:
                    return client._raw(
                        "POST", "/search", {"query": worker, "k": 5}
                    )

            with concurrent.futures.ThreadPoolExecutor(8) as pool:
                responses = list(pool.map(one_search, range(16)))
            statuses = {status for status, _, _ in responses}
            assert 500 not in statuses
            sheds = [r for r in responses if r[0] == 429]
            assert sheds
            for _, headers, _ in sheds:
                retry_after = {
                    k.lower(): v for k, v in headers.items()
                }["retry-after"]
                assert int(retry_after) >= 1


class TestServerResidencySurface:
    @pytest.fixture(scope="class")
    def budget_server(self, graph, saved_index):
        from repro.service.server import BackgroundServer

        index = load_sharded_index(saved_index)
        ranker = engine_from_index(
            graph,
            index,
            memory_budget_mb=0.005,
            bounds_dtype="int8",
            query_jobs=2,
        )
        with BackgroundServer(
            ranker,
            port=0,
            max_batch_size=4,
            max_wait_ms=0.0,
            cache_capacity=0,
            query_workers=2,
        ) as server:
            from repro.service.client import RetrievalClient

            with RetrievalClient(port=server.port) as client:
                for query in QUERY_SET:
                    client.search(query, k=5)
                yield client

    @pytest.mark.timeout(60)
    def test_stats_expose_residency(self, budget_server):
        residency = budget_server.stats()["index"]["residency"]
        assert residency["enabled"] is True
        assert residency["bounds_dtype"] == "int8"
        assert residency["evictions_total"] > 0
        assert residency["faults_total"] > 0
        assert residency["budget_bytes"] == int(0.005 * (1 << 20))
        assert len(residency["shards"]) == residency["n_shards"]
        for shard in residency["shards"]:
            assert {"shard_id", "resident", "bytes", "pins", "lru_age"} <= set(
                shard
            )

    @pytest.mark.timeout(60)
    def test_metrics_json_expose_residency(self, budget_server):
        metrics = budget_server.metrics()
        assert metrics["residency"]["evictions_total"] > 0

    @pytest.mark.timeout(60)
    def test_prometheus_residency_families(self, budget_server):
        exposition = budget_server.prometheus_metrics()
        for family in (
            "repro_resident_bytes",
            "repro_memory_budget_bytes",
            "repro_pinned_bytes",
            "repro_shards_resident",
            "repro_bounds_bytes",
            "repro_shard_loads_total",
            "repro_shard_faults_total",
            "repro_shard_evictions_total",
            "repro_shard_evicted_bytes_total",
            "repro_bound_fallbacks_total",
        ):
            assert f"\n{family} " in exposition, family
        line = next(
            l
            for l in exposition.splitlines()
            if l.startswith("repro_shard_evictions_total ")
        )
        assert float(line.split()[1]) > 0

    @pytest.mark.timeout(60)
    def test_unbudgeted_sharded_server_still_accounts(
        self, graph, saved_index
    ):
        from repro.service.client import RetrievalClient
        from repro.service.server import BackgroundServer

        ranker = engine_from_index(graph, load_sharded_index(saved_index))
        with BackgroundServer(
            ranker, port=0, cache_capacity=0
        ) as server:
            with RetrievalClient(port=server.port) as client:
                client.search(0, k=5)
                residency = client.stats()["index"]["residency"]
                assert residency["enabled"] is False
                assert residency["bounds_bytes"] >= 0
                exposition = client.prometheus_metrics()
                assert "\nrepro_resident_bytes " in exposition
