"""Unit tests for the observability primitives (repro.obs).

Covers the Trace/Span tree, the thread-local ambient context, the no-op
fast path, the flight recorder's two retention policies, and the
Prometheus text exposition renderer.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.flight import FlightRecorder
from repro.obs.prometheus import render_prometheus
from repro.obs.trace import (
    NOOP,
    Span,
    Trace,
    activate,
    add_span,
    current,
    format_trace,
    span,
)
from repro.service.metrics import ServiceMetrics

pytestmark = pytest.mark.timeout(60)


# -- spans and traces -------------------------------------------------------


class TestSpan:
    def test_child_nesting_and_durations(self):
        root = Span("request")
        with root:
            with span("stage.a"):
                pass
            with span("stage.b") as b:
                with span("stage.b.inner"):
                    pass
                assert b is not NOOP
        root.end()
        names = [node.name for node in root.walk()]
        assert names == ["request", "stage.a", "stage.b", "stage.b.inner"]
        for node in root.walk():
            assert node.ended is not None
            assert node.duration_seconds >= 0.0

    def test_ambient_restored_after_exit(self):
        assert current() is NOOP
        outer = Span("outer")
        with outer:
            assert current() is outer
            with span("inner") as inner:
                assert current() is inner
            assert current() is outer
        assert current() is NOOP

    def test_span_without_ambient_is_noop_singleton(self):
        assert span("anything") is NOOP
        assert add_span("anything") is NOOP
        # The no-op absorbs the full surface without allocating state.
        with NOOP as node:
            assert node.child("x") is NOOP
            node.annotate(a=1)
            node.attach(Span("y"))
            node.end()

    def test_add_span_records_given_interval(self):
        root = Span("request")
        node = root.add_span("waited", started=10.0, ended=10.5, lane="node")
        assert node.started == 10.0
        assert node.ended == 10.5
        assert node.duration_seconds == pytest.approx(0.5)
        assert node.meta == {"lane": "node"}

    def test_attach_grafts_finished_subtree(self):
        shared = Span("engine.dispatch")
        with activate(shared):
            with span("solve"):
                pass
        shared.end()
        first, second = Span("request-1"), Span("request-2")
        first.attach(shared)
        second.attach(shared)
        for root in (first, second):
            assert [n.name for n in root.walk()] == [
                root.name,
                "engine.dispatch",
                "solve",
            ]

    def test_end_is_idempotent(self):
        node = Span("x")
        node.end()
        first = node.ended
        node.end()
        assert node.ended == first

    def test_to_dict_offsets_relative_to_root(self):
        root = Span("request", started=100.0)
        child = root.add_span("stage", started=100.25, ended=100.5)
        assert child is not None
        root.ended = 101.0
        tree = root.to_dict()
        assert tree["start_ms"] == 0.0
        assert tree["duration_ms"] == pytest.approx(1000.0)
        (child_doc,) = tree["children"]
        assert child_doc["start_ms"] == pytest.approx(250.0)
        assert child_doc["duration_ms"] == pytest.approx(250.0)

    def test_activation_is_thread_local(self):
        root = Span("root")
        seen = {}

        def other_thread():
            seen["ambient"] = current()

        with root:
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["ambient"] is NOOP

    def test_concurrent_children_are_all_recorded(self):
        root = Span("root")
        n_threads, per_thread = 8, 50

        def worker(tid):
            with activate(root):
                for i in range(per_thread):
                    with span(f"t{tid}.{i}"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        root.end()
        assert len(list(root.walk())) == 1 + n_threads * per_thread


class TestTrace:
    def test_trace_ids_unique_and_finish(self):
        first, second = Trace("search"), Trace("search")
        assert first.trace_id != second.trace_id
        assert len(first.trace_id) == 16
        first.finish()
        assert first.root.ended is not None

    def test_span_names_and_stage_durations(self):
        trace = Trace("search", query=3)
        trace.root.add_span("scheduler.wait", started=0.0, ended=0.1)
        trace.finish()
        assert trace.span_names() == {"search", "scheduler.wait"}
        stages = trace.stage_durations()
        assert stages[0][0] == "search"
        assert dict(stages)["scheduler.wait"] == pytest.approx(0.1)

    def test_to_dict_is_json_ready(self):
        import json

        trace = Trace("search")
        with activate(trace.root):
            with span("stage", n=3):
                pass
        trace.finish()
        document = trace.to_dict()
        json.dumps(document)  # must not raise
        assert document["trace_id"] == trace.trace_id
        assert document["root"]["children"][0]["meta"] == {"n": 3}

    def test_format_trace_renders_every_line(self):
        trace = Trace("search")
        trace.root.add_span("scheduler.wait", started=0.0, ended=0.002)
        trace.finish()
        text = format_trace(trace.to_dict()["root"])
        assert "search" in text and "scheduler.wait" in text
        assert "ms" in text


# -- flight recorder --------------------------------------------------------


def _trace_dict(trace_id="abc123"):
    return {"trace_id": trace_id, "created_at": 0.0, "duration_ms": 1.0, "root": {}}


class TestFlightRecorder:
    def test_slowest_policy_keeps_the_worst(self):
        recorder = FlightRecorder(capacity=3)
        for ms in (5, 1, 9, 3, 7, 2):
            recorder.record("search", ms / 1e3, _trace_dict(f"t{ms}"))
        retained = [entry["latency_ms"] for entry in recorder.snapshot()]
        assert retained == [9.0, 7.0, 5.0]
        assert recorder.stats()["policy"] == "slowest"
        assert recorder.stats()["seen"] == 6

    def test_fast_requests_skip_rendering(self):
        class Exploding:
            def to_dict(self):  # pragma: no cover - must never run
                raise AssertionError("rendered a skipped trace")

        recorder = FlightRecorder(capacity=1)
        assert recorder.record("search", 1.0, _trace_dict())
        # Faster than the retained floor: rejected before rendering.
        assert not recorder.record("search", 0.5, Exploding())

    def test_threshold_policy_is_recent_fifo(self):
        recorder = FlightRecorder(capacity=2, threshold_ms=10.0)
        assert not recorder.record("search", 0.005, _trace_dict("fast"))
        for name, ms in (("a", 20), ("b", 30), ("c", 40)):
            assert recorder.record("search", ms / 1e3, _trace_dict(name))
        entries = recorder.snapshot()
        assert {entry["trace_id"] for entry in entries} == {"b", "c"}
        assert recorder.stats()["policy"] == "threshold"

    def test_zero_capacity_disables(self):
        recorder = FlightRecorder(capacity=0)
        assert not recorder.record("search", 10.0, _trace_dict())
        assert recorder.snapshot() == []
        assert len(recorder) == 0

    def test_clear_keeps_counters(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record("search", 0.5, _trace_dict())
        recorder.clear()
        assert recorder.snapshot() == []
        assert recorder.stats()["recorded"] == 1

    def test_records_live_trace_objects(self):
        recorder = FlightRecorder(capacity=2)
        trace = Trace("search")
        trace.finish()
        assert recorder.record("search", 0.25, trace)
        (entry,) = recorder.snapshot()
        assert entry["trace_id"] == trace.trace_id
        assert entry["trace"]["root"]["name"] == "search"

    def test_concurrent_recording_is_bounded(self):
        recorder = FlightRecorder(capacity=8)

        def worker(offset):
            for i in range(100):
                recorder.record("search", (offset + i) / 1e3, _trace_dict())

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(recorder) == 8
        assert recorder.stats()["seen"] == 400

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=-1)
        with pytest.raises(ValueError):
            FlightRecorder(threshold_ms=-2.0)


# -- prometheus exposition --------------------------------------------------


class TestPrometheus:
    def _metrics(self):
        metrics = ServiceMetrics()
        metrics.record_request("search", 0.010)
        metrics.record_request("search", 0.020)
        metrics.record_request("search_oos", 0.030)
        metrics.record_batch(4)
        metrics.record_stage("tier.nominate", 0.001)
        return metrics

    def test_families_and_values(self):
        text = render_prometheus(self._metrics(), queue_depth=3)
        lines = text.splitlines()
        assert "repro_requests_total 3" in lines
        assert "repro_queue_depth 3" in lines
        assert "repro_batches_total 1" in lines
        # HELP/TYPE declared once per family, before the samples.
        assert lines.index("# TYPE repro_requests_total counter") < lines.index(
            "repro_requests_total 3"
        )
        assert text.endswith("\n")

    def test_histogram_buckets_cumulative_and_monotone(self):
        text = render_prometheus(self._metrics())
        buckets = [
            line
            for line in text.splitlines()
            if line.startswith("repro_request_latency_seconds_bucket")
            and 'endpoint="search"' in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert buckets[-1].startswith(
            'repro_request_latency_seconds_bucket{endpoint="search",le="+Inf"}'
        )
        assert counts[-1] == 2
        assert 'repro_request_latency_seconds_count{endpoint="search"} 2' in text

    def test_le_bounds_sorted_within_family(self):
        text = render_prometheus(self._metrics())
        bounds = []
        for line in text.splitlines():
            if (
                line.startswith("repro_request_latency_seconds_bucket")
                and 'endpoint="search"' in line
                and 'le="+Inf"' not in line
            ):
                le = line.split('le="')[1].split('"')[0]
                bounds.append(float(le))
        assert bounds == sorted(bounds)

    def test_stage_histograms_exposed(self):
        text = render_prometheus(self._metrics())
        assert 'repro_stage_duration_seconds_count{stage="tier.nominate"} 1' in text

    def test_optional_sections(self):
        tiers = {
            "fast": {
                "queries": 7,
                "spectral_seconds": 0.25,
                "rerank_seconds": 0.5,
            }
        }
        cache = {"hits": 5, "misses": 2, "invalidations": 1, "size": 4}
        text = render_prometheus(
            self._metrics(),
            cache_stats=cache,
            tier_counters=tiers,
            slowlog_stats={"recorded": 9},
        )
        assert "repro_cache_hits_total 5" in text
        assert 'repro_tier_queries_total{accuracy="fast"} 7' in text
        assert (
            'repro_tier_seconds_total{accuracy="fast",tier="spectral"} 0.25' in text
        )
        assert "repro_slowlog_recorded_total 9" in text

    def test_label_escaping(self):
        metrics = ServiceMetrics()
        metrics.record_stage('we"ird\nstage\\name', 0.001)
        text = render_prometheus(metrics)
        assert 'stage="we\\"ird\\nstage\\\\name"' in text
