"""Mutable serving over HTTP: write endpoints, concurrency, shutdown.

Three layers of coverage for ISSUE 5:

* endpoint semantics — ``POST /insert`` answers are visible before any
  rebuild (pending estimate), ``/delete`` excludes, ``/rebuild`` swaps
  epochs without taking the service down, read-only servers answer 403;
* a **stress harness**: one mutator thread (inserts / deletes /
  rebuilds) against concurrent query threads for a fixed duration — no
  crashes, no dropped requests, and every answer is consistent with a
  single epoch (no id deleted before a request started may appear; no
  id the server never assigned may appear);
* ``BackgroundServer`` shutdown is idempotent and exception-safe while
  a rebuild worker is mid-flight.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.core.live import LiveEngine
from repro.service.client import RetrievalClient
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.timeout(120)


def make_features(seed: int = 0, n_per: int = 40, dim: int = 6) -> np.ndarray:
    rng = np.random.default_rng(seed)
    a = rng.normal(scale=0.6, size=(n_per, dim))
    b = rng.normal(scale=0.6, size=(n_per, dim)) + 4.0
    return np.vstack([a, b])


@pytest.fixture()
def live_server():
    features = make_features()
    live = LiveEngine(features, auto_rebuild_fraction=None)
    with BackgroundServer(
        live, port=0, max_batch_size=8, max_wait_ms=1.0, cache_capacity=64
    ) as server:
        yield server, live
    live.close()


class TestWriteEndpoints:
    def test_insert_visible_before_rebuild(self, live_server):
        server, live = live_server
        with RetrievalClient(port=server.port) as client:
            epoch_before = client.healthz()["epoch"]
            feature = live.graph.features[0] + 0.001
            inserted = client.insert(feature)
            assert inserted["n_pending"] == 1
            # No rebuild ran — the near-duplicate surfaces through its
            # pending (generalized MR) estimate.
            assert client.healthz()["epoch"] == epoch_before
            answer = client.search(0, k=10)
            assert inserted["id"] in answer["indices"]

    def test_delete_excludes_immediately(self, live_server):
        server, live = live_server
        with RetrievalClient(port=server.port) as client:
            target = client.search(0, k=3)["indices"][0]
            client.delete(target)
            after = client.search(0, k=10)
            assert target not in after["indices"]

    def test_rebuild_swaps_epoch_and_matches_blocking(self, live_server):
        server, live = live_server
        features = live.graph.features.copy()
        with RetrievalClient(port=server.port) as client:
            inserted = client.insert(features[5] + 0.01)
            report = client.rebuild(wait=True)
            assert report["epoch"] == report["epoch_before"] + 1
            assert report["swap_seconds"] <= report["build_seconds"]
            assert client.healthz()["epoch"] == report["epoch"]
            served = client.search(5, k=10)
        # Reference: a blocking rebuild from the same logical state.
        reference = LiveEngine(features, auto_rebuild_fraction=None)
        reference.add(features[5] + 0.01)
        reference.rebuild()
        direct = reference.top_k(5, 10)
        assert served["indices"] == [int(i) for i in direct.indices]
        np.testing.assert_allclose(served["scores"], direct.scores, rtol=0, atol=0)
        assert inserted["id"] in served["indices"]

    def test_stats_expose_mutation_counts(self, live_server):
        server, live = live_server
        with RetrievalClient(port=server.port) as client:
            client.insert(live.graph.features[1] + 0.01)
            client.delete(0)
            stats = client.stats()
            assert stats["live"]["inserts"] == 1
            assert stats["live"]["deletes"] == 1
            assert stats["live"]["n_pending"] == 1
            assert stats["scheduler"]["mutations_dispatched"] == 2
            health = client.healthz()
            assert health["mutable"] is True

    def test_cache_invalidated_by_writes(self, live_server):
        server, live = live_server
        with RetrievalClient(port=server.port) as client:
            cold = client.search(7, k=4)
            warm = client.search(7, k=4)
            assert warm["cached"] and not cold["cached"]
            client.insert(live.graph.features[7] + 0.001)
            fresh = client.search(7, k=4)
            assert not fresh["cached"]

    def test_bad_writes_rejected(self, live_server):
        server, _ = live_server
        with RetrievalClient(port=server.port) as client:
            with pytest.raises(RuntimeError, match="400"):
                client._request("POST", "/insert", {"feature": "nope"})
            with pytest.raises(RuntimeError, match="400"):
                client._request("POST", "/delete", {"node": "nope"})
            with pytest.raises(RuntimeError, match="400"):
                client._request("POST", "/rebuild", {"wait": "nope"})
            with pytest.raises(RuntimeError, match="400"):
                client.delete(10_000)


class TestReadOnlyServer:
    def test_writes_forbidden_on_static_engine(self, bridged_graph):
        ranker = MogulRanker(bridged_graph)
        with BackgroundServer(ranker, port=0) as server:
            with RetrievalClient(port=server.port) as client:
                assert client.healthz()["mutable"] is False
                for call in (
                    lambda: client.insert(bridged_graph.features[0]),
                    lambda: client.delete(0),
                    lambda: client.rebuild(),
                ):
                    with pytest.raises(RuntimeError, match="403"):
                        call()
                # And the service keeps serving reads afterwards.
                assert client.search(0, k=3)["indices"]


class _MutationLog:
    """Timestamped mutation history shared between stress threads."""

    def __init__(self, initial_n: int):
        self.lock = threading.Lock()
        self.known_ids = set(range(initial_n))
        self.deleted_at: dict[int, float] = {}

    def record_insert(self, gid: int) -> None:
        with self.lock:
            self.known_ids.add(gid)

    def record_delete(self, gid: int) -> None:
        with self.lock:
            self.deleted_at[gid] = time.monotonic()

    def deletable(self) -> list[int]:
        with self.lock:
            return sorted(self.known_ids - set(self.deleted_at))


class TestConcurrentMutationStress:
    """Satellite: mutator vs. concurrent queries — consistent, no drops."""

    DURATION_SECONDS = 2.5
    QUERY_THREADS = 3

    def test_stress(self):
        features = make_features(seed=4, n_per=30)
        initial_n = features.shape[0]
        live = LiveEngine(features, auto_rebuild_fraction=0.15)
        log = _MutationLog(initial_n)
        # Stable ids the query threads may use (never deleted below).
        stable = list(range(10))
        errors: list[str] = []
        answers: list[tuple[float, list[int]]] = []
        answers_lock = threading.Lock()
        stop = threading.Event()

        server = BackgroundServer(
            live, port=0, max_batch_size=8, max_wait_ms=0.5, cache_capacity=32
        )

        def mutator():
            rng = np.random.default_rng(99)
            try:
                with RetrievalClient(port=server.port) as client:
                    step = 0
                    while not stop.is_set():
                        step += 1
                        roll = step % 7
                        if roll in (0, 1, 2, 3):
                            feature = rng.normal(scale=0.6, size=6) + (
                                4.0 if step % 2 else 0.0
                            )
                            reply = client.insert(feature)
                            log.record_insert(reply["id"])
                        elif roll in (4, 5):
                            victims = [
                                g for g in log.deletable() if g >= 10
                            ]
                            if victims:
                                victim = victims[int(rng.integers(len(victims)))]
                                client.delete(victim)
                                log.record_delete(victim)
                        else:
                            client.rebuild(wait=False)
                        time.sleep(0.002)
            except Exception as error:  # noqa: BLE001 - recorded for assert
                errors.append(f"mutator: {type(error).__name__}: {error}")

        def querier(worker: int):
            rng = np.random.default_rng(worker)
            try:
                with RetrievalClient(port=server.port) as client:
                    while not stop.is_set():
                        query = stable[int(rng.integers(len(stable)))]
                        started = time.monotonic()
                        payload = client.search(query, k=8)
                        if not payload["indices"]:
                            errors.append("empty answer")
                        with answers_lock:
                            answers.append((started, payload["indices"]))
            except Exception as error:  # noqa: BLE001
                errors.append(f"querier-{worker}: {type(error).__name__}: {error}")

        threads = [threading.Thread(target=mutator, daemon=True)] + [
            threading.Thread(target=querier, args=(i,), daemon=True)
            for i in range(self.QUERY_THREADS)
        ]
        for thread in threads:
            thread.start()
        time.sleep(self.DURATION_SECONDS)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
            assert not thread.is_alive(), "stress thread failed to stop"
        counts = live.mutation_counts()
        server.stop()
        live.close()

        assert not errors, errors[:5]
        assert answers, "no queries completed"
        # Single-epoch consistency: an id deleted strictly before the
        # request started must never appear, and every id must have
        # been assigned by the server at some point.
        with log.lock:
            known = set(log.known_ids)
            deleted_at = dict(log.deleted_at)
        for started, indices in answers:
            for gid in indices:
                assert gid in known, f"answer carries unknown id {gid}"
                if gid in deleted_at:
                    assert deleted_at[gid] >= started - 1e-9, (
                        f"id {gid} deleted at {deleted_at[gid]:.6f} appeared "
                        f"in a request started at {started:.6f}"
                    )
        # The run actually exercised the machinery under test.
        assert counts["inserts"] > 0
        assert counts["deletes"] > 0
        assert counts["rebuilds"] >= 1


class TestShutdownRegression:
    """Satellite: BackgroundServer.stop idempotent + safe mid-rebuild."""

    def test_double_stop_is_noop(self, bridged_graph):
        ranker = MogulRanker(bridged_graph)
        server = BackgroundServer(ranker, port=0)
        server.stop()
        server.stop()  # regression: used to poke a finalised event loop
        server.stop()

    def test_stop_inside_context_then_again(self, bridged_graph):
        ranker = MogulRanker(bridged_graph)
        with BackgroundServer(ranker, port=0) as server:
            with RetrievalClient(port=server.port) as client:
                assert client.healthz()["status"] == "ok"
            server.stop()  # __exit__ stops again — must be a no-op

    def test_stop_with_rebuild_mid_flight(self, monkeypatch):
        features = make_features(seed=6, n_per=20)
        live = LiveEngine(features, auto_rebuild_fraction=None)
        gate = threading.Event()
        entered = threading.Event()
        real = live._build_epoch

        def gated(indexed_ids, number):
            entered.set()
            assert gate.wait(30)
            return real(indexed_ids, number)

        monkeypatch.setattr(live, "_build_epoch", gated)
        server = BackgroundServer(live, port=0)
        with RetrievalClient(port=server.port) as client:
            client.insert(features[0] + 0.01)
            client.rebuild(wait=False)
        assert entered.wait(30)
        # Stop (twice) while the rebuild worker is still stuck inside
        # the build: must return promptly and not raise.
        server.stop()
        server.stop()
        assert live.rebuild_in_flight
        gate.set()
        live.close()
        assert not live.rebuild_in_flight
        assert live.epoch == 1
