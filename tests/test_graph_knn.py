"""Tests for exact k-NN search: brute force, KD-tree, and their agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import KDTree, knn_search
from repro.graph.knn import pairwise_sq_distances


def brute_reference(points, queries, k, exclude_self):
    """O(n^2) reference implementation with explicit sorting."""
    out_idx = np.empty((queries.shape[0], k), dtype=np.int64)
    out_dist = np.empty((queries.shape[0], k))
    for i, q in enumerate(queries):
        d = np.linalg.norm(points - q, axis=1)
        if exclude_self:
            d[i] = np.inf
        order = np.argsort(d, kind="stable")[:k]
        out_idx[i] = order
        out_dist[i] = d[order]
    return out_idx, out_dist


class TestPairwiseDistances:
    def test_matches_norm(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        d2 = pairwise_sq_distances(a, b)
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, expected, atol=1e-10)

    def test_non_negative_under_roundoff(self):
        point = np.array([[1e8, 1e8]])
        d2 = pairwise_sq_distances(point, point)
        assert d2[0, 0] >= 0.0


class TestKnnSearch:
    def test_self_query_excludes_self(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 4))
        idx, dist = knn_search(points, 3)
        for i in range(30):
            assert i not in idx[i]
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_matches_reference_self(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(40, 5))
        idx, dist = knn_search(points, 4, method="brute")
        ref_idx, ref_dist = brute_reference(points, points, 4, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)
        # indices may differ only under exact distance ties
        np.testing.assert_array_equal(idx, ref_idx)

    def test_external_queries(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(25, 3))
        queries = rng.normal(size=(6, 3))
        idx, dist = knn_search(points, 5, queries=queries)
        ref_idx, ref_dist = brute_reference(points, queries, 5, False)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)

    def test_k_too_large_raises(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError, match="exceeds"):
            knn_search(points, 3)  # self-excluded leaves only 2

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="queries"):
            knn_search(np.zeros((5, 3)), 2, queries=np.zeros((2, 4)))

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            knn_search(np.zeros((5, 3)), 2, method="annoy")

    def test_kdtree_method_agrees_with_brute(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(60, 3))
        bi, bd = knn_search(points, 4, method="brute")
        ki, kd = knn_search(points, 4, method="kdtree")
        np.testing.assert_allclose(bd, kd, atol=1e-9)
        np.testing.assert_array_equal(bi, ki)

    def test_chunked_path(self, monkeypatch):
        """Force multiple brute-force chunks and check consistency."""
        import repro.graph.knn as knn_mod

        monkeypatch.setattr(knn_mod, "_CHUNK", 7)
        rng = np.random.default_rng(5)
        points = rng.normal(size=(30, 4))
        idx, dist = knn_search(points, 3, method="brute")
        ref_idx, ref_dist = brute_reference(points, points, 3, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)


class TestKDTree:
    def test_duplicate_points(self):
        points = np.zeros((10, 3))
        tree = KDTree(points)
        idx, dist = tree.query(points[:2], 4, exclude_self=False)
        np.testing.assert_allclose(dist, 0.0)

    def test_leaf_size_one(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(20, 2))
        tree = KDTree(points, leaf_size=1)
        idx, dist = tree.query(points, 3, exclude_self=True)
        ref_idx, ref_dist = brute_reference(points, points, 3, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((0, 2)))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_query_dim_mismatch(self):
        tree = KDTree(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            tree.query(np.zeros((1, 2)), 1)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=50),
        dim=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_agrees_with_brute(self, n, dim, k, seed):
        if k >= n:
            k = n - 1
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, dim))
        tree = KDTree(points)
        ti, td = tree.query(points, k, exclude_self=True)
        bi, bd = brute_reference(points, points, k, True)
        np.testing.assert_allclose(td, bd, atol=1e-9)
