"""Tests for exact k-NN search: brute force, KD-tree, and their agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import KDTree, knn_search
from repro.graph.knn import pairwise_sq_distances


def brute_reference(points, queries, k, exclude_self):
    """O(n^2) reference implementation with explicit sorting."""
    out_idx = np.empty((queries.shape[0], k), dtype=np.int64)
    out_dist = np.empty((queries.shape[0], k))
    for i, q in enumerate(queries):
        d = np.linalg.norm(points - q, axis=1)
        if exclude_self:
            d[i] = np.inf
        order = np.argsort(d, kind="stable")[:k]
        out_idx[i] = order
        out_dist[i] = d[order]
    return out_idx, out_dist


class TestPairwiseDistances:
    def test_matches_norm(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(7, 3))
        d2 = pairwise_sq_distances(a, b)
        expected = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(d2, expected, atol=1e-10)

    def test_non_negative_under_roundoff(self):
        point = np.array([[1e8, 1e8]])
        d2 = pairwise_sq_distances(point, point)
        assert d2[0, 0] >= 0.0


class TestKnnSearch:
    def test_self_query_excludes_self(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(30, 4))
        idx, dist = knn_search(points, 3)
        for i in range(30):
            assert i not in idx[i]
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_matches_reference_self(self):
        rng = np.random.default_rng(2)
        points = rng.normal(size=(40, 5))
        idx, dist = knn_search(points, 4, method="brute")
        ref_idx, ref_dist = brute_reference(points, points, 4, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)
        # indices may differ only under exact distance ties
        np.testing.assert_array_equal(idx, ref_idx)

    def test_external_queries(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(25, 3))
        queries = rng.normal(size=(6, 3))
        idx, dist = knn_search(points, 5, queries=queries)
        ref_idx, ref_dist = brute_reference(points, queries, 5, False)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)

    def test_k_too_large_raises(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError, match="exceeds"):
            knn_search(points, 3)  # self-excluded leaves only 2

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError, match="queries"):
            knn_search(np.zeros((5, 3)), 2, queries=np.zeros((2, 4)))

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError, match="unknown method"):
            knn_search(np.zeros((5, 3)), 2, method="annoy")

    def test_kdtree_method_agrees_with_brute(self):
        rng = np.random.default_rng(4)
        points = rng.normal(size=(60, 3))
        bi, bd = knn_search(points, 4, method="brute")
        ki, kd = knn_search(points, 4, method="kdtree")
        np.testing.assert_allclose(bd, kd, atol=1e-9)
        np.testing.assert_array_equal(bi, ki)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_blas_method_agrees_with_brute(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(200, 24))
        bi, bd = knn_search(points, 6, method="brute")
        fi, fd = knn_search(points, 6, method="blas")
        np.testing.assert_array_equal(bi, fi)
        np.testing.assert_allclose(bd, fd, rtol=1e-9, atol=1e-12)

    def test_blas_external_queries(self):
        rng = np.random.default_rng(9)
        points = rng.normal(size=(120, 20))
        queries = rng.normal(size=(17, 20))
        bi, bd = knn_search(points, 3, queries=queries, method="brute")
        fi, fd = knn_search(points, 3, queries=queries, method="blas")
        np.testing.assert_array_equal(bi, fi)
        np.testing.assert_allclose(bd, fd, rtol=1e-9, atol=1e-12)

    def test_blas_chunked_and_parallel_identical(self, monkeypatch):
        """Chunk size and jobs are execution details, not result knobs."""
        import repro.graph.knn as knn_mod

        rng = np.random.default_rng(6)
        points = rng.normal(size=(90, 18))
        base_idx, base_dist = knn_search(points, 4, method="blas")
        monkeypatch.setattr(knn_mod, "_BLAS_CHUNK", 13)
        for jobs in (1, 3):
            idx, dist = knn_search(points, 4, method="blas", jobs=jobs)
            np.testing.assert_array_equal(base_idx, idx)
            np.testing.assert_array_equal(base_dist, dist)

    def test_blas_duplicate_points(self):
        rng = np.random.default_rng(8)
        base = rng.normal(size=(40, 17))
        points = np.vstack([base, base[:10]])  # exact duplicates
        bi, bd = knn_search(points, 5, method="brute")
        fi, fd = knn_search(points, 5, method="blas")
        # Duplicates tie at distance zero, where the clamped expansion
        # leaves cancellation-level residue that sqrt amplifies to
        # ~sqrt(eps); the engines must agree up to that, and exactly on
        # the well-separated neighbours.
        np.testing.assert_allclose(bd, fd, rtol=1e-9, atol=1e-6)
        np.testing.assert_allclose(bd**2, fd**2, rtol=1e-9, atol=1e-12)

    def test_blas_uncentred_large_norms(self):
        # Large uncentred norms sink a naive float32 prefilter in
        # cancellation; centring + the certification fallback must keep
        # the selected neighbours identical to brute force.
        rng = np.random.default_rng(10)
        points = 300.0 + rng.normal(size=(3000, 32)) * 0.01
        bi, _ = knn_search(points, 5, method="brute")
        fi, _ = knn_search(points, 5, method="blas")
        np.testing.assert_array_equal(bi, fi)

    def test_blas_bimodal_tiny_gaps(self):
        # Far-apart clusters with tiny jitter defeat centring too; the
        # certification must route every ambiguous row through brute
        # force's own panels, making the results bitwise identical.
        rng = np.random.default_rng(11)
        a = -500.0 + rng.normal(size=(1500, 16)) * 1e-3
        b = 500.0 + rng.normal(size=(1500, 16)) * 1e-3
        points = np.vstack([a, b])
        bi, bd = knn_search(points, 5, method="brute")
        fi, fd = knn_search(points, 5, method="blas")
        np.testing.assert_array_equal(bi, fi)
        np.testing.assert_array_equal(bd, fd)

    def test_blas_boundary_ties_match_brute(self):
        # k-th and (k+1)-th neighbours tying within float64 noise while
        # the nearer ranks are well separated: the certification must
        # treat the top-k boundary as ambiguous and fall back to brute's
        # panels, keeping the selected indices bitwise identical.
        rng = np.random.default_rng(12)
        base = rng.normal(size=(800, 24))
        near_twins = base[:400] + rng.normal(size=(400, 24)) * 1e-12
        points = np.vstack([base, near_twins])
        bi, _ = knn_search(points, 3, method="brute")
        fi, _ = knn_search(points, 3, method="blas")
        np.testing.assert_array_equal(bi, fi)

    def test_brute_jobs_identical(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(80, 12))
        base = knn_search(points, 4, method="brute")
        parallel = knn_search(points, 4, method="brute", jobs=4)
        np.testing.assert_array_equal(base[0], parallel[0])
        np.testing.assert_array_equal(base[1], parallel[1])

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            knn_search(np.zeros((5, 3)), 2, jobs=0)

    def test_chunked_path(self, monkeypatch):
        """Force multiple brute-force chunks and check consistency."""
        import repro.graph.knn as knn_mod

        monkeypatch.setattr(knn_mod, "_CHUNK", 7)
        rng = np.random.default_rng(5)
        points = rng.normal(size=(30, 4))
        idx, dist = knn_search(points, 3, method="brute")
        ref_idx, ref_dist = brute_reference(points, points, 3, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)


class TestKDTree:
    def test_duplicate_points(self):
        points = np.zeros((10, 3))
        tree = KDTree(points)
        idx, dist = tree.query(points[:2], 4, exclude_self=False)
        np.testing.assert_allclose(dist, 0.0)

    def test_leaf_size_one(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(20, 2))
        tree = KDTree(points, leaf_size=1)
        idx, dist = tree.query(points, 3, exclude_self=True)
        ref_idx, ref_dist = brute_reference(points, points, 3, True)
        np.testing.assert_allclose(dist, ref_dist, atol=1e-9)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((0, 2)))

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            KDTree(np.zeros((3, 2)), leaf_size=0)

    def test_query_dim_mismatch(self):
        tree = KDTree(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            tree.query(np.zeros((1, 2)), 1)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=50),
        dim=st.integers(min_value=1, max_value=6),
        k=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_agrees_with_brute(self, n, dim, k, seed):
        if k >= n:
            k = n - 1
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, dim))
        tree = KDTree(points)
        ti, td = tree.query(points, k, exclude_self=True)
        bi, bd = brute_reference(points, points, k, True)
        np.testing.assert_allclose(td, bd, atol=1e-9)
