"""End-to-end tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main


def run_cli(capsys, *argv: str) -> tuple[int, str, str]:
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestDatasets:
    def test_lists_all_four(self, capsys):
        code, out, _ = run_cli(capsys, "datasets", "--scale", "0.2")
        assert code == 0
        for name in ("coil", "pubfig", "nuswide", "inria"):
            assert name in out


class TestBuildInfoSearch:
    @pytest.fixture(scope="class")
    def index_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "coil.idx.npz"
        code = main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(path)]
        )
        assert code == 0
        return path

    def test_build_writes_file(self, index_path):
        assert index_path.exists()

    def test_info(self, index_path, capsys):
        code, out, _ = run_cli(capsys, "info", str(index_path))
        assert code == 0
        assert "nodes:" in out
        assert "incomplete" in out

    def test_search_single(self, index_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "3", "-k", "4",
        )
        assert code == 0
        assert out.count("node") >= 4

    def test_search_multi_seed(self, index_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "3", "--query", "4", "-k", "4",
        )
        assert code == 0
        assert "[3, 4]" in out

    def test_search_from_npy_features(self, index_path, capsys, tmp_path):
        from repro.datasets.registry import load_dataset

        features = load_dataset("coil", scale=0.2, seed=0).features
        npy = tmp_path / "features.npy"
        np.save(npy, features)
        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--features", str(npy),
            "--query", "3", "-k", "2",
        )
        assert code == 0


class TestErrors:
    def test_bad_index_path_is_reported(self, capsys, tmp_path):
        code, _, err = run_cli(
            capsys,
            "search", str(tmp_path / "missing.npz"),
            "--dataset", "coil", "--query", "0",
        )
        assert code == 2
        assert "error:" in err

    def test_mismatched_features_rejected(self, capsys, tmp_path):
        index = tmp_path / "tiny.idx.npz"
        assert main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(index)]
        ) == 0
        code, _, err = run_cli(
            capsys,
            "search", str(index),
            "--dataset", "coil", "--scale", "0.3",  # different size
            "--query", "0",
        )
        assert code == 2
        assert "error:" in err

    def test_build_fill_level(self, capsys, tmp_path):
        plain = tmp_path / "plain.idx.npz"
        filled = tmp_path / "filled.idx.npz"
        assert main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(plain)]
        ) == 0
        assert main(
            [
                "build", "--dataset", "coil", "--scale", "0.2",
                "--fill-level", "2", "--out", str(filled),
            ]
        ) == 0
        from repro.core.index import MogulIndex

        assert (
            MogulIndex.load(filled).factors.nnz
            >= MogulIndex.load(plain).factors.nnz
        )

    def test_info_verbose(self, capsys, tmp_path):
        index = tmp_path / "v.idx.npz"
        assert main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(index)]
        ) == 0
        code, out, _ = run_cli(capsys, "info", str(index), "--verbose")
        assert code == 0
        assert "saturated bounds" in out
        assert "border" in out

    def test_build_exact_flag(self, capsys, tmp_path):
        index = tmp_path / "exact.idx.npz"
        code = main(
            [
                "build", "--dataset", "coil", "--scale", "0.2",
                "--exact", "--out", str(index),
            ]
        )
        assert code == 0
        _, out, _ = run_cli(capsys, "info", str(index))
        assert "complete" in out


class TestBatchSearch:
    @pytest.fixture(scope="class")
    def index_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-batch") / "coil.idx.npz"
        assert main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(path)]
        ) == 0
        return path

    def test_batch_prints_answers_and_stats(self, index_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--batch", "--query", "3", "--query", "9", "--query", "21", "-k", "4",
        )
        assert code == 0
        assert "batch of 3 queries" in out
        # Per-query pruning lines plus the aggregate totals line.
        assert out.count("pruned") == 4
        assert "batch totals:" in out
        assert out.count("node") >= 12

    def test_batch_answers_match_single_queries(self, index_path, capsys):
        code, batch_out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--batch", "--query", "7", "-k", "3",
        )
        assert code == 0
        code, single_out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "7", "-k", "3",
        )
        assert code == 0
        batch_nodes = [
            line.split()[2] for line in batch_out.splitlines() if " score " in line
        ]
        single_nodes = [
            line.split()[2] for line in single_out.splitlines() if " score " in line
        ]
        assert batch_nodes and batch_nodes == single_nodes

    def test_batch_keeps_duplicate_queries(self, index_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--batch", "--query", "7", "--query", "7", "-k", "2",
        )
        assert code == 0
        assert "batch of 2 queries" in out


class TestJsonOutput:
    @pytest.fixture(scope="class")
    def index_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-json") / "coil.idx.npz"
        assert main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(path)]
        ) == 0
        return path

    def test_single_query_json(self, index_path, capsys):
        import json

        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "3", "-k", "4", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert document["query"] == 3
        assert document["k"] == 4
        assert len(document["indices"]) == 4
        assert len(document["scores"]) == 4
        assert document["stats"]["clusters_total"] > 0
        assert document["latency_ms"] > 0

    def test_json_matches_text_answers(self, index_path, capsys):
        import json

        code, json_out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "7", "-k", "3", "--json",
        )
        assert code == 0
        code, text_out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "7", "-k", "3",
        )
        assert code == 0
        text_nodes = [
            int(line.split()[2]) for line in text_out.splitlines() if " score " in line
        ]
        assert json.loads(json_out)["indices"] == text_nodes

    def test_batch_json(self, index_path, capsys):
        import json

        code, out, _ = run_cli(
            capsys,
            "search", str(index_path),
            "--dataset", "coil", "--scale", "0.2",
            "--batch", "--query", "3", "--query", "9", "-k", "4", "--json",
        )
        assert code == 0
        document = json.loads(out)
        assert [entry["query"] for entry in document["results"]] == [3, 9]
        assert all(len(entry["indices"]) == 4 for entry in document["results"])
        assert document["totals"]["clusters_total"] > 0
        assert 0.0 <= document["totals"]["prune_fraction"] <= 1.0


class TestBuildJobsAndBackend:
    def test_build_prints_stage_table(self, capsys, tmp_path):
        out_path = tmp_path / "profiled.idx.npz"
        code, out, _ = run_cli(
            capsys,
            "build", "--dataset", "coil", "--scale", "0.2",
            "--jobs", "2", "--out", str(out_path),
        )
        assert code == 0
        for stage in ("graph", "clustering", "factorization", "solver"):
            assert stage in out
        assert "backend=csr jobs=2" in out

    def test_backends_build_identical_answers(self, capsys, tmp_path):
        reference = tmp_path / "ref.idx.npz"
        fast = tmp_path / "csr.idx.npz"
        for path, backend in ((reference, "reference"), (fast, "csr")):
            assert main(
                [
                    "build", "--dataset", "coil", "--scale", "0.2",
                    "--factor-backend", backend, "--jobs", "2",
                    "--out", str(path),
                ]
            ) == 0
        capsys.readouterr()  # drop the build output before parsing searches
        outputs = []
        for path in (reference, fast):
            code, out, _ = run_cli(
                capsys,
                "search", str(path), "--dataset", "coil", "--scale", "0.2",
                "--query", "3", "-k", "5",
            )
            assert code == 0
            # Compare the ranked node ids line by line.
            outputs.append(
                [line.split()[2] for line in out.splitlines() if "node" in line]
            )
        assert outputs[0] == outputs[1]

    def test_invalid_jobs_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "build", "--dataset", "coil", "--scale", "0.2",
                    "--jobs", "none", "--out", str(tmp_path / "x.npz"),
                ]
            )

    def test_zero_jobs_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "build", "--dataset", "coil", "--scale", "0.2",
                    "--jobs", "0", "--out", str(tmp_path / "x.npz"),
                ]
            )

    def test_unknown_backend_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "build", "--dataset", "coil", "--scale", "0.2",
                    "--factor-backend", "bogus", "--out", str(tmp_path / "x.npz"),
                ]
            )


class TestShardedCli:
    @pytest.fixture(scope="class")
    def flat_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-sharded") / "coil.idx.npz"
        code = main(
            ["build", "--dataset", "coil", "--scale", "0.2", "--out", str(path)]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def sharded_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-sharded") / "coil.shards"
        code = main(
            [
                "build", "--dataset", "coil", "--scale", "0.2",
                "--shards", "2", "--jobs", "2", "--out", str(path),
            ]
        )
        assert code == 0
        return path

    def test_build_writes_directory_layout(self, sharded_path):
        assert (sharded_path / "manifest.json").is_file()
        assert (sharded_path / "global.npz").is_file()
        assert (sharded_path / "shard_0000.npz").is_file()
        assert (sharded_path / "shard_0001.npz").is_file()

    def test_info_prints_shard_layout(self, sharded_path, capsys):
        code, out, _ = run_cli(capsys, "info", str(sharded_path))
        assert code == 0
        assert "shard layout:     2 shards" in out
        assert "shard 0:" in out and "shard 1:" in out
        assert "nnz=" in out

    def test_info_degrades_on_legacy_npz(self, flat_path, capsys):
        code, out, _ = run_cli(capsys, "info", str(flat_path))
        assert code == 0
        assert "1 shard (legacy single-file index)" in out

    def test_info_verbose_degrades_on_sharded(self, sharded_path, capsys):
        code, out, _ = run_cli(capsys, "info", "--verbose", str(sharded_path))
        assert code == 0
        assert "shard layout:" in out

    def test_search_answers_match_flat_index(
        self, flat_path, sharded_path, capsys
    ):
        import json as json_module

        args = [
            "--dataset", "coil", "--scale", "0.2",
            "--query", "3", "--query", "17", "--batch", "-k", "5", "--json",
        ]
        code, flat_out, _ = run_cli(capsys, "search", str(flat_path), *args)
        assert code == 0
        code, sharded_out, _ = run_cli(
            capsys, "search", str(sharded_path), *args
        )
        assert code == 0
        flat_doc = json_module.loads(flat_out)
        sharded_doc = json_module.loads(sharded_out)
        assert len(flat_doc["results"]) == len(sharded_doc["results"])
        for a, b in zip(flat_doc["results"], sharded_doc["results"]):
            assert a["indices"] == b["indices"]
            assert a["scores"] == b["scores"]

    def test_search_single_on_sharded(self, sharded_path, capsys):
        code, out, _ = run_cli(
            capsys,
            "search", str(sharded_path),
            "--dataset", "coil", "--scale", "0.2",
            "--query", "3", "-k", "4",
        )
        assert code == 0
        assert out.count("node") >= 4

    def test_info_on_directory_without_manifest(self, tmp_path, capsys):
        bogus = tmp_path / "not-an-index"
        bogus.mkdir()
        code, _, err = run_cli(capsys, "info", str(bogus))
        assert code == 2
        assert "manifest" in err
