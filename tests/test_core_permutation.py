"""Tests for Algorithm 1 (node permutation) and the Permutation container."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutation import Permutation, build_permutation
from repro.ranking.normalize import ranking_matrix
from tests.conftest import random_symmetric_adjacency


def random_labels(n: int, n_clusters: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, n_clusters, size=n)
    _, labels = np.unique(labels, return_inverse=True)
    return labels


class TestPermutationMatrix:
    def test_matrix_is_orthogonal_permutation(self, clustered_graph):
        perm = build_permutation(clustered_graph.adjacency)
        p = perm.matrix().toarray()
        # one 1 per row and per column, orthogonality P P^T = I
        np.testing.assert_array_equal(p.sum(axis=0), 1)
        np.testing.assert_array_equal(p.sum(axis=1), 1)
        np.testing.assert_allclose(p @ p.T, np.eye(perm.n_nodes))

    def test_permute_matrix_matches_explicit(self, clustered_graph):
        perm = build_permutation(clustered_graph.adjacency)
        w = ranking_matrix(clustered_graph.adjacency, 0.9)
        p = perm.matrix()
        expected = (p @ w @ p.T).toarray()
        np.testing.assert_allclose(perm.permute_matrix(w).toarray(), expected)

    def test_vector_roundtrip(self, clustered_graph):
        perm = build_permutation(clustered_graph.adjacency)
        x = np.random.default_rng(0).random(perm.n_nodes)
        np.testing.assert_allclose(perm.unpermute_vector(perm.permute_vector(x)), x)
        # and P x puts x[order[i]] at position i
        permuted = perm.permute_vector(x)
        np.testing.assert_allclose(permuted, x[perm.order])

    def test_inverse_consistency(self, clustered_graph):
        perm = build_permutation(clustered_graph.adjacency)
        np.testing.assert_array_equal(perm.inverse[perm.order], np.arange(perm.n_nodes))
        np.testing.assert_array_equal(perm.order[perm.inverse], np.arange(perm.n_nodes))


class TestAlgorithmOne:
    def test_border_collects_all_cross_edges(self, bridged_graph):
        perm = build_permutation(bridged_graph.adjacency)
        border = set(range(perm.border_slice.start, perm.border_slice.stop))
        coo = bridged_graph.adjacency.tocoo()
        cluster_of = perm.cluster_of_position
        for i, j in zip(perm.inverse[coo.row], perm.inverse[coo.col]):
            if cluster_of[i] != cluster_of[j]:
                # a cross-cluster edge must involve the border cluster
                assert i in border or j in border

    def test_interior_clusters_have_only_internal_edges(self, bridged_graph):
        """Lines 3-7: after eviction, interior nodes' edges stay inside."""
        perm = build_permutation(bridged_graph.adjacency)
        cluster_of = perm.cluster_of_position
        border_id = perm.border_cluster
        coo = bridged_graph.adjacency.tocoo()
        for i, j in zip(perm.inverse[coo.row], perm.inverse[coo.col]):
            ci, cj = cluster_of[i], cluster_of[j]
            if ci != border_id and cj != border_id:
                assert ci == cj

    def test_border_is_last_and_slices_partition(self, bridged_graph):
        perm = build_permutation(bridged_graph.adjacency)
        assert perm.border_slice.stop == perm.n_nodes
        covered = []
        for sl in perm.cluster_slices:
            covered.extend(range(sl.start, sl.stop))
        assert covered == list(range(perm.n_nodes))

    def test_ascending_within_cluster_degree(self, bridged_graph):
        """Lines 8-17: inside each cluster positions are ordered by
        non-decreasing within-cluster edge count."""
        perm = build_permutation(bridged_graph.adjacency)
        adjacency = bridged_graph.adjacency
        cluster_of = perm.cluster_of_position
        for cid, sl in enumerate(perm.cluster_slices):
            degrees = []
            for pos in range(sl.start, sl.stop):
                node = perm.order[pos]
                nbrs = adjacency.indices[
                    adjacency.indptr[node] : adjacency.indptr[node + 1]
                ]
                within = sum(
                    1 for nb in nbrs if cluster_of[perm.inverse[nb]] == cid
                )
                degrees.append(within)
            assert degrees == sorted(degrees)

    def test_no_cross_edges_means_empty_border(self):
        """Two disconnected cliques: every node keeps only within edges."""
        dense = np.zeros((8, 8))
        dense[:4, :4] = 1.0
        dense[4:, 4:] = 1.0
        np.fill_diagonal(dense, 0.0)
        perm = build_permutation(sp.csr_matrix(dense))
        assert perm.border_slice.start == perm.border_slice.stop

    def test_star_graph_everything_in_border(self):
        """A star clustered into singleton-ish groups: the hub and leaves
        all touch cross-cluster edges, so the border holds everything that
        crosses."""
        n = 7
        rows = np.zeros(n - 1, dtype=int)
        cols = np.arange(1, n)
        adj = sp.csr_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        adj = (adj + adj.T).tocsr()
        labels = np.arange(n)  # force all-singleton clustering
        perm = build_permutation(adj, cluster_labels=labels)
        # all nodes have cross-cluster edges -> all in border, one cluster
        assert perm.n_clusters == 1
        assert perm.border_slice == slice(0, n)

    def test_precomputed_labels_respected(self, clustered_graph):
        labels = random_labels(clustered_graph.n_nodes, 4, seed=1)
        perm = build_permutation(clustered_graph.adjacency, cluster_labels=labels)
        assert perm.n_nodes == clustered_graph.n_nodes

    def test_label_length_validation(self, clustered_graph):
        with pytest.raises(ValueError, match="cluster_labels"):
            build_permutation(
                clustered_graph.adjacency, cluster_labels=np.zeros(3, dtype=int)
            )

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            build_permutation(sp.csr_matrix((0, 0)))

    def test_deterministic(self, clustered_graph):
        a = build_permutation(clustered_graph.adjacency)
        b = build_permutation(clustered_graph.adjacency)
        np.testing.assert_array_equal(a.order, b.order)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=40),
        n_clusters=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_property_valid_permutation_any_labels(self, n, n_clusters, seed):
        """Algorithm 1 yields a valid permutation for arbitrary labellings
        (its lemmas do not require the clustering to be good)."""
        adjacency = random_symmetric_adjacency(n, seed=seed)
        labels = random_labels(n, n_clusters, seed)
        perm = build_permutation(adjacency, cluster_labels=labels)
        np.testing.assert_array_equal(np.sort(perm.order), np.arange(n))
        assert perm.border_slice.stop == n
        # cluster_of_position consistent with slices
        for cid, sl in enumerate(perm.cluster_slices):
            assert np.all(perm.cluster_of_position[sl] == cid)
