"""Regenerate the golden serialization fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/make_golden.py

Produces, next to this script:

* ``golden_features.npy``   — the (48, 5) feature matrix everything is
  built from (committed so the fixtures never depend on RNG internals),
* ``golden_flat.idx.npz``   — a flat (single-file) Mogul index,
* ``golden_flat.idx.live.npz`` — a live-state (write-ahead) sidecar
  with one pending point and one tombstone,
* ``golden_sharded/``       — the same database as a 2-shard directory,
* ``golden_answers.json``   — known top-k answers for both artifacts.

``tests/test_golden_fixtures.py`` loads these *committed* bytes and
verifies the answers: unlike save/load round-trip tests, this catches
format drift where writer and reader change together.  Regenerate only
when the on-disk format version is deliberately bumped, and commit the
new files with that bump.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.index import MogulRanker
from repro.core.live import LiveEngine
from repro.core.serialize import (
    FORMAT_VERSION,
    LIVE_STATE_VERSION,
    SHARDED_FORMAT_VERSION,
    save_live_state,
)
from repro.core.sharded import ShardedMogulRanker
from repro.graph.build import build_knn_graph

HERE = os.path.dirname(os.path.abspath(__file__))
QUERIES = (0, 7, 30)
K = 5


def golden_features() -> np.ndarray:
    rng = np.random.default_rng(424242)
    a = rng.normal(scale=0.5, size=(24, 5))
    b = rng.normal(scale=0.5, size=(24, 5)) + 3.5
    return np.vstack([a, b])


def answers_for(ranker) -> list[dict]:
    documents = []
    for query in QUERIES:
        result = ranker.top_k(int(query), K)
        documents.append(
            {
                "query": int(query),
                "k": K,
                "indices": [int(i) for i in result.indices],
                "scores": [float(s) for s in result.scores],
            }
        )
    probe = ranker.graph.features.mean(axis=0)
    oos = ranker.top_k_out_of_sample(probe, K)
    documents.append(
        {
            "query": "oos_mean",
            "k": K,
            "indices": [int(i) for i in oos.indices],
            "scores": [float(s) for s in oos.scores],
        }
    )
    return documents


def main() -> None:
    features = golden_features()
    np.save(os.path.join(HERE, "golden_features.npy"), features)
    graph = build_knn_graph(features, k=4)

    flat = MogulRanker(graph)
    flat_path = os.path.join(HERE, "golden_flat.idx.npz")
    flat.index.save(flat_path)

    sharded = ShardedMogulRanker(graph, 2)
    sharded_path = os.path.join(HERE, "golden_sharded")
    sharded.index.save(sharded_path)

    # A tiny live-state sidecar: one pending insert, one tombstone.
    live = LiveEngine.from_engine(flat, k=4, auto_rebuild_fraction=None)
    live.add(features[0] + 0.25)
    live.remove(3)
    save_live_state(flat_path, live.mutable_state())

    payload = {
        "format_version": FORMAT_VERSION,
        "sharded_format_version": SHARDED_FORMAT_VERSION,
        "live_state_version": LIVE_STATE_VERSION,
        "graph_k": 4,
        "n_nodes": int(features.shape[0]),
        "flat": answers_for(flat),
        "sharded": answers_for(sharded),
        "live": {
            "pending_ids": [48],
            "tombstones": [3],
            "epoch": 0,
            "inserts": 1,
            "deletes": 1,
        },
    }
    with open(os.path.join(HERE, "golden_answers.json"), "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.write("\n")
    print(f"wrote golden fixtures under {HERE}")


if __name__ == "__main__":
    main()
