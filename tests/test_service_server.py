"""End-to-end tests: real HTTP over a real socket (repro.service.server).

A :class:`BackgroundServer` serves a small index on an ephemeral port;
requests go through :class:`RetrievalClient` — the exact transport the
CLI's ``serve`` / ``loadtest`` commands use.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.service.client import (
    RetrievalClient,
    run_load_test,
    wait_until_healthy,
)
from repro.service.server import BackgroundServer

#: Real sockets + worker threads: a deadlock must fail fast, not hang CI.
pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


@pytest.fixture(scope="module")
def background(ranker):
    with BackgroundServer(
        ranker, port=0, max_batch_size=16, max_wait_ms=1.0, cache_capacity=64
    ) as server:
        yield server


@pytest.fixture()
def client(background):
    with RetrievalClient(port=background.port) as connection:
        yield connection


class TestEndpoints:
    def test_healthz(self, client, ranker):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["n_nodes"] == ranker.n_nodes
        assert health["uptime_seconds"] >= 0

    def test_search_matches_direct_top_k(self, client, ranker):
        for query in (0, 7, 42, 80):
            payload = client.search(query, k=6)
            direct = ranker.top_k(query, 6)
            assert payload["query"] == query
            assert payload["k"] == 6
            assert payload["indices"] == [int(node) for node in direct.indices]
            np.testing.assert_allclose(
                payload["scores"], direct.scores, rtol=0, atol=1e-8
            )
            assert payload["stats"]["clusters_total"] > 0
            assert payload["latency_ms"] > 0

    def test_search_oos_matches_direct(self, client, ranker):
        feature = ranker.graph.features.mean(axis=0)
        payload = client.search_out_of_sample(feature, k=5)
        direct = ranker.top_k_out_of_sample(feature, 5)
        assert payload["indices"] == [int(node) for node in direct.indices]
        np.testing.assert_allclose(
            payload["scores"], direct.scores, rtol=0, atol=1e-8
        )

    def test_repeat_query_hits_cache(self, client):
        cold = client.search(11, k=4)
        warm = client.search(11, k=4)
        assert not cold["cached"]
        assert warm["cached"]
        assert warm["indices"] == cold["indices"]

    def test_metrics_and_stats(self, client, ranker):
        client.search(2, k=3)
        metrics = client.metrics()
        assert metrics["requests_total"] >= 1
        assert metrics["batches_total"] >= 1
        assert "p95_ms" in metrics["latency"]["search"]
        assert metrics["cache"]["capacity"] == 64
        stats = client.stats()
        assert stats["index"]["n_nodes"] == ranker.n_nodes
        assert stats["scheduler"]["max_batch_size"] == 16
        assert stats["engine_totals"]["nodes_scored"] >= 0
        profile = stats["build_profile"]
        assert profile["factor_backend"] == "csr"
        assert "factorization" in profile["stages"]
        assert profile["total_seconds"] >= 0.0

    def test_wait_until_healthy(self, background):
        health = wait_until_healthy("127.0.0.1", background.port, 5.0)
        assert health["status"] == "ok"


class TestHttpErrors:
    def test_unknown_path_404(self, client):
        with pytest.raises(RuntimeError, match="404"):
            client._request("GET", "/nope")

    def test_wrong_method_405(self, client):
        with pytest.raises(RuntimeError, match="405"):
            client._request("GET", "/search")

    def test_malformed_json_400(self, background):
        import http.client

        connection = http.client.HTTPConnection("127.0.0.1", background.port)
        try:
            connection.request(
                "POST", "/search", body=b"{not json", headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 400
            assert "error" in json.loads(response.read())
        finally:
            connection.close()

    def test_missing_query_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request("POST", "/search", {"k": 5})

    def test_out_of_range_query_400(self, client, ranker):
        with pytest.raises(RuntimeError, match="400"):
            client.search(ranker.n_nodes + 10, k=5)

    def test_bad_k_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request("POST", "/search", {"query": 0, "k": 0})

    def test_bad_feature_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request("POST", "/search_oos", {"feature": [], "k": 3})

    def test_malformed_content_length_400(self, background):
        import socket

        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(b"POST /search HTTP/1.1\r\nContent-Length: abc\r\n\r\n")
            reply = raw.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 400")
        assert "Content-Length" in reply

    def test_oversized_body_413(self, background):
        import socket

        from repro.service.server import MAX_BODY_BYTES

        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(
                f"POST /search HTTP/1.1\r\n"
                f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
            )
            reply = raw.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 413")

    def test_server_survives_errors(self, client):
        """Bad requests never take the service down."""
        for _ in range(3):
            with pytest.raises(RuntimeError):
                client._request("POST", "/search", {"query": "nope"})
        assert client.healthz()["status"] == "ok"


class TestLoadGenerator:
    def test_load_test_all_correct(self, background, ranker):
        report = run_load_test(
            port=background.port,
            concurrency=6,
            total_requests=48,
            k=5,
            check_against=ranker.top_k,
        )
        assert report.ok
        assert report.n_requests == 48
        assert report.throughput_rps > 0
        summary = report.latency.summary()
        assert summary["p95_ms"] >= summary["p50_ms"] >= 0
        assert report.server_metrics.get("requests_total", 0) >= 48
        document = report.to_dict()
        assert json.dumps(document)  # JSON-serialisable
        assert "p99_ms" in document["latency"]
        assert "throughput" in report.to_text()

    def test_duration_bounded_run(self, background):
        report = run_load_test(
            port=background.port,
            concurrency=2,
            duration_seconds=0.5,
            k=3,
        )
        assert report.ok
        assert report.n_requests > 0

    def test_bounds_are_exclusive(self, background):
        with pytest.raises(ValueError, match="exactly one"):
            run_load_test(
                port=background.port, total_requests=10, duration_seconds=1.0
            )


class TestShardedServing:
    """The HTTP service must serve a sharded engine transparently."""

    @pytest.fixture(scope="class")
    def sharded_ranker(self, bridged_graph):
        from repro.core.sharded import ShardedMogulRanker

        return ShardedMogulRanker(bridged_graph, 2)

    @pytest.fixture(scope="class")
    def sharded_background(self, sharded_ranker):
        with BackgroundServer(
            sharded_ranker, port=0, max_batch_size=16, max_wait_ms=1.0
        ) as server:
            yield server

    @pytest.fixture()
    def sharded_client(self, sharded_background):
        with RetrievalClient(port=sharded_background.port) as connection:
            yield connection

    def test_search_matches_unsharded_engine(
        self, sharded_client, ranker, sharded_ranker
    ):
        for query in (0, 7, 40):
            served = sharded_client.search(query, k=6)
            direct = ranker.top_k(query, 6)
            assert served["indices"] == [int(i) for i in direct.indices]
            np.testing.assert_allclose(
                served["scores"], direct.scores, rtol=0, atol=0
            )

    def test_stats_expose_shard_layout(self, sharded_client, sharded_ranker):
        stats = sharded_client.stats()
        shards = stats["index"]["shards"]
        assert shards["n_shards"] == 2
        assert len(shards["spans"]) == 2
        assert shards["border_size"] == sharded_ranker.index.border_size
        assert stats["index"]["factor_nnz"] == sharded_ranker.index.factor_nnz

    def test_search_oos_served(self, sharded_client, sharded_ranker):
        feature = sharded_ranker.graph.features[3] + 0.01
        served = sharded_client.search_out_of_sample(feature.tolist(), k=5)
        direct = sharded_ranker.top_k_out_of_sample(feature, 5)
        assert served["indices"] == [int(i) for i in direct.indices]
