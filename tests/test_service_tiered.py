"""Service-layer tests for the accuracy dial.

The cache-correctness property (the satellite regression this file
exists for): the result cache key includes the resolved accuracy label,
so an answer computed at one dial setting is **never** served to a
request for another — ``fast`` can never impersonate ``exact``.  The
flip side also holds: an implicit request and an explicit
``accuracy=balanced`` resolve to the same label and *should* share one
cache entry and one coalescing lane.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.index import MogulRanker
from repro.core.spectral import SpectralEngine, SpectralIndex
from repro.core.tiered import TieredEngine
from repro.service.cache import ResultCache
from repro.service.client import RetrievalClient
from repro.service.scheduler import MicroBatchScheduler
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def base(bridged_graph):
    return MogulRanker(bridged_graph)


@pytest.fixture(scope="module")
def tiered(bridged_graph, base):
    spectral = SpectralEngine.from_index(
        bridged_graph, SpectralIndex.build(bridged_graph, rank=16)
    )
    return TieredEngine(base, spectral)


def run(coroutine):
    return asyncio.run(coroutine)


class TestSchedulerCacheIsolation:
    def test_fast_never_served_to_exact(self, tiered, base):
        """The regression: dial levels must not share cache entries."""

        async def main():
            async with MicroBatchScheduler(tiered, max_wait_ms=1.0, cache=ResultCache(64)) as scheduler:
                fast = await scheduler.search(3, 6, accuracy="fast")
                exact = await scheduler.search(3, 6, accuracy="exact")
                repeat_exact = await scheduler.search(3, 6, accuracy="exact")
                return fast, exact, repeat_exact, scheduler.snapshot()

        fast, exact, repeat_exact, snapshot = run(main())
        assert fast.accuracy == "fast"
        assert exact.accuracy == "exact"
        # The exact request computed fresh — it did not hit fast's entry.
        assert not exact.cached
        assert repeat_exact.cached
        direct = base.top_k(3, 6)
        np.testing.assert_array_equal(exact.result.indices, direct.indices)
        np.testing.assert_array_equal(exact.result.scores, direct.scores)
        assert {"node:fast", "node:exact"} <= set(snapshot["lanes"])

    def test_default_and_explicit_balanced_share_entry(self, tiered):
        async def main():
            async with MicroBatchScheduler(tiered, max_wait_ms=1.0, cache=ResultCache(64)) as scheduler:
                implicit = await scheduler.search(5, 4)
                explicit = await scheduler.search(5, 4, accuracy="balanced")
                return implicit, explicit

        implicit, explicit = run(main())
        assert implicit.accuracy == explicit.accuracy == "balanced"
        assert not implicit.cached
        assert explicit.cached
        np.testing.assert_array_equal(
            implicit.result.indices, explicit.result.indices
        )

    def test_explicit_m_gets_its_own_lane(self, tiered):
        async def main():
            async with MicroBatchScheduler(tiered, max_wait_ms=1.0, cache=ResultCache(64)) as scheduler:
                first = await scheduler.search(7, 5, m=32)
                second = await scheduler.search(7, 5, m=48)
                return first, second, scheduler.snapshot()

        first, second, snapshot = run(main())
        assert first.accuracy == "m=32"
        assert second.accuracy == "m=48"
        assert not second.cached  # different budget, different key
        assert {"node:m=32", "node:m=48"} <= set(snapshot["lanes"])

    def test_out_of_sample_levels_isolated(self, tiered, bridged_graph):
        feature = bridged_graph.features.mean(axis=0)

        async def main():
            async with MicroBatchScheduler(tiered, max_wait_ms=1.0, cache=ResultCache(64)) as scheduler:
                fast = await scheduler.search_out_of_sample(
                    feature, 5, accuracy="fast"
                )
                exact = await scheduler.search_out_of_sample(
                    feature, 5, accuracy="exact"
                )
                return fast, exact

        fast, exact = run(main())
        assert fast.accuracy == "fast"
        assert not exact.cached

    def test_non_tiered_engine_rejects_dial(self, base):
        async def main():
            async with MicroBatchScheduler(base, max_wait_ms=1.0) as scheduler:
                with pytest.raises(ValueError, match="no accuracy dial"):
                    await scheduler.search(1, 4, accuracy="fast")
                plain = await scheduler.search(1, 4)
                return plain

        plain = run(main())
        assert plain.accuracy is None

    def test_invalid_dial_rejected_before_submission(self, tiered):
        async def main():
            async with MicroBatchScheduler(tiered, max_wait_ms=1.0, cache=ResultCache(64)) as scheduler:
                with pytest.raises(ValueError, match="unknown accuracy"):
                    await scheduler.search(1, 4, accuracy="turbo")
                with pytest.raises(ValueError, match="not both"):
                    await scheduler.search(1, 4, accuracy="fast", m=9)

        run(main())


class TestTieredServer:
    @pytest.fixture(scope="class")
    def background(self, tiered):
        with BackgroundServer(
            tiered, port=0, max_batch_size=8, max_wait_ms=1.0, cache_capacity=64
        ) as server:
            yield server

    @pytest.fixture()
    def client(self, background):
        with RetrievalClient(port=background.port) as connection:
            yield connection

    def test_accuracy_echoed_and_exact_bitwise(self, client, base):
        fast = client._request(
            "POST", "/search?accuracy=fast", {"query": 2, "k": 5}
        )
        exact = client._request(
            "POST", "/search?accuracy=exact", {"query": 2, "k": 5}
        )
        assert fast["accuracy"] == "fast"
        assert exact["accuracy"] == "exact"
        direct = base.top_k(2, 5)
        assert exact["indices"] == [int(node) for node in direct.indices]
        np.testing.assert_allclose(
            exact["scores"], direct.scores, rtol=0, atol=0
        )

    def test_default_level_annotated(self, client, tiered):
        payload = client.search(4, k=3)
        assert payload["accuracy"] == tiered.default_accuracy

    def test_body_field_equivalent_to_query_param(self, client):
        via_param = client._request(
            "POST", "/search?accuracy=exact", {"query": 6, "k": 4}
        )
        via_body = client._request(
            "POST", "/search", {"query": 6, "k": 4, "accuracy": "exact"}
        )
        assert via_body["accuracy"] == "exact"
        assert via_body["cached"]  # same resolved label -> same cache entry
        assert via_body["indices"] == via_param["indices"]

    def test_m_dial_over_http(self, client):
        payload = client._request(
            "POST", "/search?m=24", {"query": 8, "k": 4}
        )
        assert payload["accuracy"] == "m=24"

    def test_unknown_accuracy_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request(
                "POST", "/search?accuracy=turbo", {"query": 1, "k": 3}
            )

    def test_accuracy_plus_m_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request(
                "POST", "/search?accuracy=fast&m=10", {"query": 1, "k": 3}
            )

    def test_oos_dial(self, client, tiered, base):
        feature = list(base.graph.features.mean(axis=0))
        payload = client._request(
            "POST", "/search_oos?accuracy=exact", {"feature": feature, "k": 4}
        )
        direct = base.top_k_out_of_sample(np.asarray(feature), 4)
        assert payload["accuracy"] == "exact"
        assert payload["indices"] == [int(node) for node in direct.indices]

    def test_metrics_and_stats_expose_tiers(self, client, tiered):
        client._request("POST", "/search?accuracy=fast", {"query": 9, "k": 3})
        client._request("POST", "/search?accuracy=exact", {"query": 9, "k": 3})
        metrics = client.metrics()
        tiers = metrics["tiers"]
        assert {"fast", "exact"} <= set(tiers)
        for entry in tiers.values():
            assert entry["queries"] >= 1
            assert 0.0 <= entry["mean_nomination_recall"] <= 1.0
        assert tiers["exact"]["mean_nomination_recall"] == 1.0
        stats = client.stats()
        assert stats["spectral"]["rank"] == tiered.spectral.rank
        assert stats["spectral"]["default_accuracy"] == "balanced"
        assert "tiers" in stats


class TestNonTieredServer:
    @pytest.fixture(scope="class")
    def background(self, base):
        with BackgroundServer(base, port=0, max_wait_ms=1.0) as server:
            yield server

    @pytest.fixture()
    def client(self, background):
        with RetrievalClient(port=background.port) as connection:
            yield connection

    def test_payload_has_no_accuracy_key(self, client):
        payload = client.search(3, k=4)
        assert "accuracy" not in payload

    def test_dial_request_400(self, client):
        with pytest.raises(RuntimeError, match="400"):
            client._request(
                "POST", "/search?accuracy=fast", {"query": 3, "k": 4}
            )

    def test_no_tier_surfaces(self, client):
        assert "tiers" not in client.metrics()
        stats = client.stats()
        assert "spectral" not in stats
