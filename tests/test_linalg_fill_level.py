"""Tests for level-of-fill Incomplete Cholesky (incomplete_ldl(fill_level=p)).

The knob must interpolate between the paper's ICF (p = 0) and Modified
Cholesky (p large): non-zeros grow monotonically with p, the approximation
error falls, a large enough p reproduces the complete factorization
exactly, and the bordered block-diagonal structure of Lemma 3 survives
every level (the ClusterSolver constructor enforces it).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.index import MogulRanker
from repro.core.permutation import build_permutation
from repro.core.solver import ClusterSolver
from repro.linalg.ldl import complete_ldl, incomplete_ldl
from repro.linalg.triangular import ldl_solve
from repro.ranking.normalize import ranking_matrix


@pytest.fixture(scope="module")
def permuted_w(bridged_graph):
    perm = build_permutation(bridged_graph.adjacency)
    w = perm.permute_matrix(ranking_matrix(bridged_graph.adjacency, 0.95))
    return perm, w


class TestInterpolation:
    def test_level_zero_is_paper_icf(self, permuted_w):
        _, w = permuted_w
        base = incomplete_ldl(w)
        leveled = incomplete_ldl(w, fill_level=0)
        assert base.nnz == leveled.nnz
        np.testing.assert_allclose(
            base.lower.toarray(), leveled.lower.toarray(), atol=0
        )

    def test_nnz_monotone_in_level(self, permuted_w):
        _, w = permuted_w
        sizes = [incomplete_ldl(w, fill_level=p).nnz for p in range(5)]
        assert sizes == sorted(sizes)

    def test_error_decreases_with_level(self, permuted_w):
        _, w = permuted_w
        exact = complete_ldl(w)
        q = np.zeros(w.shape[0])
        q[5] = 0.05
        reference = ldl_solve(exact, q)

        def relative_error(level: int) -> float:
            approx = ldl_solve(incomplete_ldl(w, fill_level=level), q)
            return float(
                np.linalg.norm(approx - reference) / np.linalg.norm(reference)
            )

        errors = [relative_error(p) for p in (0, 2, 6)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_large_level_matches_complete(self, permuted_w):
        _, w = permuted_w
        exact = complete_ldl(w)
        leveled = incomplete_ldl(w, fill_level=w.shape[0])
        assert leveled.nnz == exact.nnz
        np.testing.assert_allclose(
            leveled.lower.toarray(), exact.lower.toarray(), atol=1e-10
        )
        np.testing.assert_allclose(leveled.diag, exact.diag, atol=1e-10)

    def test_pattern_contains_original(self, permuted_w):
        """Fill may only ADD entries; W's own pattern is always kept."""
        _, w = permuted_w
        base = incomplete_ldl(w).lower.toarray() != 0
        leveled = incomplete_ldl(w, fill_level=2).lower.toarray() != 0
        assert np.all(leveled[base])

    def test_negative_level_rejected(self, permuted_w):
        _, w = permuted_w
        with pytest.raises(ValueError, match="fill_level"):
            incomplete_ldl(w, fill_level=-1)


class TestPropertyBased:
    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=4, max_value=25),
        seed=st.integers(min_value=0, max_value=500),
        level=st.integers(min_value=0, max_value=3),
    )
    def test_pattern_nested_across_levels(self, n, seed, level):
        """The level-p pattern is always contained in the level-(p+1)
        pattern, on arbitrary SPD matrices from random graphs."""
        from tests.conftest import random_symmetric_adjacency
        from repro.ranking.normalize import ranking_matrix

        adjacency = random_symmetric_adjacency(n, seed=seed)
        w = ranking_matrix(adjacency, 0.9)
        smaller = incomplete_ldl(w, fill_level=level).lower.toarray() != 0
        larger = incomplete_ldl(w, fill_level=level + 1).lower.toarray() != 0
        assert np.all(larger[smaller])

    @settings(deadline=None, max_examples=25)
    @given(
        n=st.integers(min_value=4, max_value=20),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_full_level_equals_complete(self, n, seed):
        from tests.conftest import random_symmetric_adjacency
        from repro.ranking.normalize import ranking_matrix

        adjacency = random_symmetric_adjacency(n, seed=seed)
        w = ranking_matrix(adjacency, 0.9)
        leveled = incomplete_ldl(w, fill_level=n)
        exact = complete_ldl(w)
        np.testing.assert_allclose(
            leveled.lower.toarray(), exact.lower.toarray(), atol=1e-9
        )
        np.testing.assert_allclose(leveled.diag, exact.diag, atol=1e-9)


class TestStructurePreserved:
    @pytest.mark.parametrize("level", [1, 3])
    def test_bordered_structure_survives_fill(self, bridged_graph, level):
        """Lemma 3 at any fill level: the ClusterSolver's structural
        validation must accept the filled factor."""
        perm = build_permutation(bridged_graph.adjacency)
        w = perm.permute_matrix(ranking_matrix(bridged_graph.adjacency, 0.95))
        factors = incomplete_ldl(w, fill_level=level)
        ClusterSolver(factors, perm)  # raises on violation


class TestRankerIntegration:
    def test_fill_level_improves_p_at_k(self, bridged_graph):
        from repro.eval.metrics import p_at_k
        from repro.ranking.exact import ExactRanker

        exact = ExactRanker(bridged_graph, alpha=0.95)
        plain = MogulRanker(bridged_graph, alpha=0.95)
        filled = MogulRanker(bridged_graph, alpha=0.95, fill_level=4)
        assert filled.index.factors.nnz >= plain.index.factors.nnz
        scores = {"plain": [], "filled": []}
        for query in (0, 20, 60, 81):
            reference = exact.top_k(query, 8)
            scores["plain"].append(
                p_at_k(plain.top_k(query, 8).indices, reference.indices)
            )
            scores["filled"].append(
                p_at_k(filled.top_k(query, 8).indices, reference.indices)
            )
        assert np.mean(scores["filled"]) >= np.mean(scores["plain"])

    def test_answers_still_exact_wrt_own_scores(self, bridged_graph):
        """Pruning safety is independent of the fill level."""
        from repro.ranking.base import rank_scores

        ranker = MogulRanker(bridged_graph, alpha=0.95, fill_level=2)
        for query in (3, 47):
            full = ranker.scores(query)
            reference = rank_scores(full, 6, exclude=query)
            result = ranker.top_k(query, 6)
            np.testing.assert_allclose(
                result.scores, reference.scores, atol=1e-12
            )

    def test_fill_level_rejected_for_exact(self, bridged_graph):
        from repro.core.index import MogulIndex

        with pytest.raises(ValueError, match="fill_level"):
            MogulIndex.build(
                bridged_graph, factorization="complete", fill_level=1
            )
