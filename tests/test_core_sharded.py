"""Tests for the sharded index subsystem (repro.core.sharded).

The contract under test is strong by design: for any shard count, the
sharded index is the *same* factorization as the unsharded one (bitwise,
per backend), and the scatter-gather engine returns answers — indices,
scores, tie-breaks, lengths — identical to the single-index engine on
every entry point.  Persistence round-trips through the directory layout
with lazy shard materialisation.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.engine import Engine, engine_from_index
from repro.core.index import MogulIndex, MogulRanker
from repro.core.search import TopKAccumulator
from repro.core.serialize import (
    load_any_index,
    load_sharded_index,
    save_index,
    save_sharded_index,
)
from repro.core.sharded import (
    ShardedMogulIndex,
    ShardedMogulRanker,
    plan_shards,
)
from repro.graph.build import build_knn_graph
from tests.conftest import graph_from_adjacency, three_cluster_features

SHARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def graph():
    features, _ = three_cluster_features(per_cluster=60, dim=8)
    return build_knn_graph(features, k=5)


@pytest.fixture(scope="module")
def base_ranker(graph):
    return MogulRanker(graph)


@pytest.fixture(scope="module", params=SHARD_COUNTS)
def sharded(request, graph):
    index = ShardedMogulIndex.build(graph, request.param)
    return ShardedMogulRanker.from_index(graph, index)


def _assert_results_equal(a, b):
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.scores, b.scores)


class TestPlanShards:
    def test_partitions_interior_clusters(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        layout = plan_shards(slices, 3)
        covered = []
        for lo, hi in layout.cluster_ranges:
            covered.extend(range(lo, hi))
        assert covered == list(range(len(slices) - 1))
        assert layout.spans[0][0] == 0
        assert layout.spans[-1][1] == slices[-1].start
        for (_, stop), (start, _) in zip(layout.spans, layout.spans[1:]):
            assert stop == start

    def test_clamped_to_interior_count(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        layout = plan_shards(slices, 10_000)
        assert layout.n_shards == len(slices) - 1

    def test_single_shard(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        layout = plan_shards(slices, 1)
        assert layout.n_shards == 1
        assert layout.spans == ((0, slices[-1].start),)

    def test_deterministic(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        assert plan_shards(slices, 3) == plan_shards(slices, 3)

    def test_balance_not_degenerate(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        layout = plan_shards(slices, 2)
        sizes = [stop - start for start, stop in layout.spans]
        assert min(sizes) > 0
        # Contiguous balanced cuts: no shard should dwarf the other by
        # more than the largest single cluster.
        largest = max(sl.stop - sl.start for sl in slices[:-1])
        assert abs(sizes[0] - sizes[1]) <= largest

    def test_rejects_bad_counts(self, base_ranker):
        slices = base_ranker.index.permutation.cluster_slices
        with pytest.raises(ValueError):
            plan_shards(slices, 0)


class TestFactorIdentity:
    def test_factors_bitwise_identical(self, graph, base_ranker, sharded):
        factors = sharded.index.assemble_factors()
        reference = base_ranker.index.factors
        assert np.array_equal(
            factors.lower.indptr, reference.lower.indptr
        )
        assert np.array_equal(
            factors.lower.indices, reference.lower.indices
        )
        assert np.array_equal(factors.lower.data, reference.lower.data)
        assert np.array_equal(factors.diag, reference.diag)
        assert factors.pivot_perturbations == reference.pivot_perturbations

    def test_process_parallel_build_identical(self, graph):
        serial = ShardedMogulIndex.build(graph, 4, jobs=1, parallel="serial")
        parallel = ShardedMogulIndex.build(graph, 4, jobs=4)
        a, b = serial.assemble_factors(), parallel.assemble_factors()
        assert np.array_equal(a.lower.data, b.lower.data)
        assert np.array_equal(a.diag, b.diag)

    def test_reference_backend_matches_unsharded_reference(self, graph):
        base = MogulIndex.build(graph, factor_backend="reference")
        shard = ShardedMogulIndex.build(graph, 2, factor_backend="reference")
        assert np.array_equal(
            shard.assemble_factors().lower.data, base.factors.lower.data
        )

    def test_complete_factorization_supported(self, graph):
        base = MogulIndex.build(graph, factorization="complete")
        shard = ShardedMogulIndex.build(graph, 2, factorization="complete")
        assert np.array_equal(
            shard.assemble_factors().lower.data, base.factors.lower.data
        )

    def test_factor_nnz_matches(self, base_ranker, sharded):
        assert sharded.index.factor_nnz == base_ranker.index.factor_nnz


class TestAnswerIdentity:
    def test_top_k(self, graph, base_ranker, sharded):
        rng = np.random.default_rng(0)
        for query in rng.choice(graph.n_nodes, size=32, replace=False):
            _assert_results_equal(
                base_ranker.top_k(int(query), 10), sharded.top_k(int(query), 10)
            )

    def test_top_k_include_query(self, base_ranker, sharded):
        _assert_results_equal(
            base_ranker.top_k(3, 7, exclude_query=False),
            sharded.top_k(3, 7, exclude_query=False),
        )

    def test_top_k_batch(self, graph, base_ranker, sharded):
        rng = np.random.default_rng(1)
        queries = rng.choice(graph.n_nodes, size=24, replace=False)
        for a, b in zip(
            base_ranker.top_k_batch(queries, 8),
            sharded.top_k_batch(queries, 8),
        ):
            _assert_results_equal(a, b)

    def test_top_k_multi(self, base_ranker, sharded):
        queries = np.asarray([2, 61, 130])  # seeds across clusters/shards
        _assert_results_equal(
            base_ranker.top_k_multi(queries, 12),
            sharded.top_k_multi(queries, 12),
        )

    def test_out_of_sample(self, graph, base_ranker, sharded):
        rng = np.random.default_rng(2)
        for row in rng.choice(graph.n_nodes, size=8, replace=False):
            feature = graph.features[row] + 0.01
            _assert_results_equal(
                base_ranker.top_k_out_of_sample(feature, 10),
                sharded.top_k_out_of_sample(feature, 10),
            )
        assert sharded.last_breakdown is not None
        assert set(sharded.last_breakdown) == {
            "nearest_neighbor", "top_k", "overall",
        }

    def test_out_of_sample_batch(self, graph, base_ranker, sharded):
        features = graph.features[:6] + 0.02
        for a, b in zip(
            base_ranker.top_k_out_of_sample_batch(features, 9),
            sharded.top_k_out_of_sample_batch(features, 9),
        ):
            _assert_results_equal(a, b)

    def test_multi_probe_out_of_sample(self, graph, base_ranker, sharded):
        feature = graph.features[10] + 0.5
        _assert_results_equal(
            base_ranker.top_k_out_of_sample(feature, 10, n_probe=3),
            sharded.top_k_out_of_sample(feature, 10, n_probe=3),
        )

    def test_scores(self, graph, base_ranker, sharded):
        assert np.array_equal(base_ranker.scores(5), sharded.scores(5))
        q = np.zeros(graph.n_nodes)
        q[[3, 70]] = [0.5, 0.5]
        assert np.array_equal(
            base_ranker.scores_for_vector(q), sharded.scores_for_vector(q)
        )

    def test_k_exceeding_candidates(self, graph, base_ranker, sharded):
        _assert_results_equal(
            base_ranker.top_k(0, graph.n_nodes + 5),
            sharded.top_k(0, graph.n_nodes + 5),
        )

    def test_no_pruning_ablation(self, graph, base_ranker):
        index = ShardedMogulIndex.build(graph, 3)
        plain = ShardedMogulRanker.from_index(graph, index, use_pruning=False)
        for query in (0, 65, 150):
            _assert_results_equal(
                base_ranker.top_k(query, 10), plain.top_k(query, 10)
            )

    def test_bound_desc_order(self, graph, base_ranker):
        index = ShardedMogulIndex.build(graph, 3)
        ranker = ShardedMogulRanker.from_index(
            graph, index, cluster_order="bound_desc"
        )
        for query in (1, 64, 140):
            _assert_results_equal(
                base_ranker.top_k(query, 10), ranker.top_k(query, 10)
            )

    def test_empty_border_graph(self):
        # Two disconnected blocks: no cross-cluster edges, empty border.
        rng = np.random.default_rng(5)
        block = rng.random((20, 20))
        block = np.triu(block, k=1)
        idx = np.arange(19)
        block[idx, idx + 1] = 1.0
        adjacency = sp.block_diag(
            [sp.csr_matrix(block + block.T)] * 2, format="csr"
        )
        graph = graph_from_adjacency(adjacency)
        base = MogulRanker(graph)
        shard = ShardedMogulRanker(graph, 2)
        for query in (0, 21, 39):
            _assert_results_equal(base.top_k(query, 6), shard.top_k(query, 6))


class TestStats:
    def test_per_query_and_shard_stats(self, graph, sharded):
        sharded.top_k(4, 10)
        stats = sharded.last_stats
        assert stats is not None
        assert stats.clusters_total == sharded.index.n_clusters
        assert stats.extra["n_shards"] == sharded.index.n_shards
        shard_stats = sharded.last_shard_stats
        assert len(shard_stats) == sharded.index.n_shards
        # Every cluster is accounted for exactly once: the router scores
        # the seed clusters + border, the shards prune or score the rest.
        assert (
            stats.clusters_pruned + stats.clusters_scored
            == sharded.index.n_clusters
        )
        shard_total = sum(
            s.clusters_pruned + s.clusters_scored for s in shard_stats
        )
        seed_and_border = stats.clusters_scored - sum(
            s.clusters_scored for s in shard_stats
        )
        assert shard_total + seed_and_border == sharded.index.n_clusters

    def test_batch_stats_shape(self, graph, sharded):
        results = sharded.top_k_batch([0, 33, 66], 5)
        assert len(results) == 3
        assert len(sharded.last_batch_stats.per_query) == 3

    def test_engine_protocol(self, sharded, base_ranker):
        assert isinstance(sharded, Engine)
        assert isinstance(base_ranker, Engine)

    def test_shard_of_node(self, graph, sharded):
        index = sharded.index
        seen = set()
        for node in range(graph.n_nodes):
            shard = index.shard_of_node(node)
            assert -1 <= shard < index.n_shards
            seen.add(shard)
        assert len(seen) >= index.n_shards  # every shard owns some node


class TestAccumulatorThreshold:
    def test_initial_threshold_prunes_below(self):
        acc = TopKAccumulator(2, 10, initial_threshold=0.5)
        x = np.asarray([0.4, 0.6, 0.7, 0.1])
        acc.offer_block(x, 0, 4)
        answers = acc.collect()
        assert [pos for pos, _ in answers] == [2, 1]

    def test_initial_threshold_keeps_ties(self):
        acc = TopKAccumulator(2, 10, initial_threshold=0.5)
        x = np.asarray([0.5, 0.2])
        acc.offer_block(x, 0, 2)
        assert acc.collect() == [(0, 0.5)]

    def test_default_matches_legacy(self):
        a = TopKAccumulator(3, 10)
        b = TopKAccumulator(3, 10, initial_threshold=0.0)
        x = np.asarray([0.1, 0.0, 0.3])
        a.offer_block(x, 0, 3)
        b.offer_block(x, 0, 3)
        assert a.collect() == b.collect()


class TestPersistence:
    @pytest.fixture()
    def saved(self, graph, tmp_path):
        index = ShardedMogulIndex.build(graph, 3)
        path = tmp_path / "idx.shards"
        save_sharded_index(index, path)
        return index, path

    def test_roundtrip_answers_identical(self, graph, saved):
        index, path = saved
        loaded = load_sharded_index(path)
        a = ShardedMogulRanker.from_index(graph, index)
        b = ShardedMogulRanker.from_index(graph, loaded)
        for query in (0, 50, 100, 170):
            _assert_results_equal(a.top_k(query, 10), b.top_k(query, 10))

    def test_lazy_materialisation(self, saved):
        _, path = saved
        loaded = load_sharded_index(path)
        assert loaded.shards_loaded == 0
        assert loaded.factor_nnz > 0  # nnz served from the manifest
        loaded.shard_state(0)
        assert loaded.shards_loaded == 1

    def test_eager_load(self, saved):
        _, path = saved
        loaded = load_sharded_index(path, lazy=False)
        assert loaded.shards_loaded == loaded.n_shards
        assert loaded.profile.load_seconds is not None

    def test_load_any_index_dispatch(self, graph, saved, tmp_path):
        index, path = saved
        loaded = load_any_index(path)
        assert isinstance(loaded, ShardedMogulIndex)
        flat_path = tmp_path / "flat.npz"
        save_index(MogulIndex.build(graph), flat_path)
        flat = load_any_index(flat_path)
        assert isinstance(flat, MogulIndex)
        engine = engine_from_index(graph, loaded)
        assert isinstance(engine, ShardedMogulRanker)
        assert isinstance(engine_from_index(graph, flat), MogulRanker)

    def test_missing_manifest_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="manifest"):
            load_any_index(empty)

    def test_corrupt_manifest_rejected(self, saved):
        _, path = saved
        (path / "manifest.json").write_text("{not json")
        with pytest.raises(ValueError, match="manifest"):
            load_sharded_index(path)

    def test_corrupt_shard_rejected(self, graph, saved):
        index, path = saved
        shard_file = path / "shard_0001.npz"
        blob = shard_file.read_bytes()
        shard_file.write_bytes(blob[: len(blob) // 2])
        loaded = load_sharded_index(path)
        with pytest.raises((ValueError, Exception)):
            loaded.shard_state(1)

    def test_save_after_load_roundtrips(self, graph, saved, tmp_path):
        _, path = saved
        loaded = load_sharded_index(path, lazy=False)
        second = tmp_path / "again.shards"
        save_sharded_index(loaded, second)
        again = load_sharded_index(second, lazy=False)
        a = ShardedMogulRanker.from_index(graph, loaded)
        b = ShardedMogulRanker.from_index(graph, again)
        _assert_results_equal(a.top_k(7, 10), b.top_k(7, 10))

    def test_profile_survives(self, saved):
        index, path = saved
        loaded = load_sharded_index(path)
        assert loaded.profile.n_shards == index.n_shards
        assert "factorization" in loaded.profile.stages


class TestValidation:
    def test_from_index_shape_mismatch(self, graph):
        index = ShardedMogulIndex.build(graph, 2)
        other = build_knn_graph(
            np.random.default_rng(0).normal(size=(30, 8)), k=4
        )
        with pytest.raises(ValueError, match="nodes"):
            ShardedMogulRanker.from_index(other, index)

    def test_bad_parallel_mode(self, graph):
        with pytest.raises(ValueError, match="parallel"):
            ShardedMogulIndex.build(graph, 2, parallel="threads")

    def test_bad_factorization(self, graph):
        with pytest.raises(ValueError, match="factorization"):
            ShardedMogulIndex.build(graph, 2, factorization="lu")
