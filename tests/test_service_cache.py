"""Tests for the LRU result cache (repro.service.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic import DynamicMogulRanker
from repro.service.cache import ResultCache


class TestLruSemantics:
    def test_hit_miss_accounting(self):
        cache = ResultCache(capacity=4)
        key = ResultCache.node_key(7, 10)
        assert cache.get(key) is None
        cache.put(key, "answer")
        assert cache.get(key) == "answer"
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["size"] == 1

    def test_distinct_keys_do_not_collide(self):
        # Same node, different k / params / kind -> different entries.
        keys = [
            ResultCache.node_key(7, 10),
            ResultCache.node_key(7, 5),
            ResultCache.node_key(7, 10, exclude=False),
            ResultCache.feature_key(np.arange(4.0), 10),
        ]
        assert len(set(keys)) == 4

    def test_feature_key_is_content_addressed(self):
        a = np.array([1.0, 2.0, 3.0])
        assert ResultCache.feature_key(a, 5) == ResultCache.feature_key(a.copy(), 5)
        assert ResultCache.feature_key(a, 5) != ResultCache.feature_key(a + 1e-12, 5)

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now least recent
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ResultCache(capacity=-1)

    def test_stale_generation_put_is_dropped(self):
        """An answer computed before an invalidation must not be cached."""
        cache = ResultCache(capacity=8)
        generation = cache.generation
        cache.invalidate()  # index mutated while the solve was running
        cache.put("a", "stale-answer", generation=generation)
        assert cache.get("a") is None
        cache.put("a", "fresh", generation=cache.generation)
        assert cache.get("a") == "fresh"

    def test_invalidate_clears_and_counts(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats()["invalidations"] == 1


class TestDynamicInvalidation:
    @pytest.fixture()
    def dynamic(self):
        features, _ = _two_blob_features()
        return DynamicMogulRanker(features, k=4, auto_rebuild_fraction=None)

    def test_insert_invalidates(self, dynamic):
        cache = ResultCache(capacity=8)
        cache.attach(dynamic)
        key = ResultCache.node_key(0, 5)
        cache.put(key, dynamic.top_k(0, 5))
        assert cache.get(key) is not None
        dynamic.add(dynamic._features[0] + 0.05)
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 1

    def test_delete_invalidates(self, dynamic):
        cache = ResultCache(capacity=8)
        cache.attach(dynamic)
        cache.put(ResultCache.node_key(1, 5), "stale")
        dynamic.remove(3)
        assert len(cache) == 0

    def test_rebuild_invalidates(self, dynamic):
        cache = ResultCache(capacity=8)
        cache.attach(dynamic)
        dynamic.add(dynamic._features[1] + 0.05)  # invalidation #1
        cache.put(ResultCache.node_key(2, 5), "stale")
        dynamic.rebuild()  # invalidation #2
        assert len(cache) == 0
        assert cache.stats()["invalidations"] == 2

    def test_cached_answer_would_be_stale_without_invalidation(self, dynamic):
        """The scenario invalidation exists for: answers change on insert."""
        cache = ResultCache(capacity=8)
        cache.attach(dynamic)
        key = ResultCache.node_key(0, 5)
        before = dynamic.top_k(0, 5)
        cache.put(key, before)
        # Insert a near-duplicate of node 0: it should enter 0's top-k.
        new_id = dynamic.add(dynamic._features[0] + 1e-3)
        assert cache.get(key) is None  # stale entry already dropped
        after = dynamic.top_k(0, 5)
        assert new_id in after.indices
        assert not np.array_equal(before.indices, after.indices)


def _two_blob_features(per_blob: int = 30, dim: int = 5, seed: int = 11):
    rng = np.random.default_rng(seed)
    a = rng.normal(scale=0.5, size=(per_blob, dim))
    b = rng.normal(scale=0.5, size=(per_blob, dim)) + 3.0
    features = np.vstack([a, b])
    labels = np.repeat([0, 1], per_blob)
    return features, labels
