"""Tests for multi-seed queries (relevance feedback, He et al. [7]).

Key invariants:

* Mogul's native multi-seed search returns exactly the top-k of the
  multi-seed approximate score vector (pruning safety carries over).
* All rankers agree that the multi-seed score vector is the weighted
  combination of single-seed vectors (linearity of Eq. 2).
* Weight validation and seed exclusion behave as documented.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.emr import EMRRanker
from repro.core.index import MogulRanker
from repro.ranking.base import normalize_seed_weights, rank_scores
from repro.ranking.exact import ExactRanker
from repro.ranking.iterative import IterativeRanker


class TestMogulMultiSeed:
    def test_matches_bruteforce_of_vector_scores(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        seeds = np.asarray([3, 47, 81])
        q = np.zeros(ranker.n_nodes)
        q[seeds] = 1.0 / seeds.size
        full = ranker.scores_for_vector(q)
        expected = rank_scores(full, 7, exclude_many=seeds)
        result = ranker.top_k_multi(seeds, 7)
        np.testing.assert_allclose(result.scores, expected.scores, atol=1e-12)
        for pos, (i, j) in enumerate(zip(result.indices, expected.indices)):
            if i != j:  # tie-tolerant
                assert result.scores[pos] == pytest.approx(expected.scores[pos])

    def test_weighted_seeds(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        seeds = np.asarray([0, 50])
        weights = np.asarray([3.0, 1.0])
        q = np.zeros(ranker.n_nodes)
        q[seeds] = weights / weights.sum()
        expected = rank_scores(ranker.scores_for_vector(q), 5, exclude_many=seeds)
        result = ranker.top_k_multi(seeds, 5, weights=weights)
        np.testing.assert_allclose(result.scores, expected.scores, atol=1e-12)

    def test_single_seed_equals_top_k(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        single = ranker.top_k(11, 5)
        multi = ranker.top_k_multi([11], 5)
        np.testing.assert_array_equal(single.indices, multi.indices)
        np.testing.assert_allclose(single.scores, multi.scores, atol=1e-12)

    def test_include_seeds(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        seeds = [5, 6]
        result = ranker.top_k_multi(seeds, 10, exclude_queries=False)
        assert set(seeds) <= set(result.indices.tolist())

    def test_exclude_seeds(self, bridged_graph):
        ranker = MogulRanker(bridged_graph, alpha=0.95)
        seeds = [5, 6]
        result = ranker.top_k_multi(seeds, 10)
        assert not set(seeds) & set(result.indices.tolist())

    def test_pruning_stats_populated(self, clustered_graph):
        ranker = MogulRanker(clustered_graph, alpha=0.95)
        ranker.top_k_multi([0, 1], 5)
        assert ranker.last_stats is not None
        assert ranker.last_stats.nodes_scored > 0


class TestLinearity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda g: ExactRanker(g, alpha=0.9),
            lambda g: IterativeRanker(g, alpha=0.9, tolerance=1e-12),
            lambda g: EMRRanker(g, alpha=0.9, n_anchors=12),
            lambda g: MogulRanker(g, alpha=0.9),
        ],
        ids=["exact", "iterative", "emr", "mogul"],
    )
    def test_vector_scores_are_linear(self, clustered_graph, factory):
        ranker = factory(clustered_graph)
        q = np.zeros(ranker.n_nodes)
        q[4] = 0.25
        q[77] = 0.75
        combined = ranker.scores_for_vector(q)
        separate = 0.25 * ranker.scores(4) + 0.75 * ranker.scores(77)
        np.testing.assert_allclose(combined, separate, atol=1e-6)

    def test_base_class_multi_matches_mogul_multi(self, clustered_graph):
        """The generic (base-class) path and Mogul's native path rank the
        same approximate score vector, so answers agree."""
        mogul = MogulRanker(clustered_graph, alpha=0.9)
        seeds = np.asarray([2, 60])
        native = mogul.top_k_multi(seeds, 6)
        # Force the generic implementation with the same scores:
        from repro.ranking.base import Ranker

        generic = Ranker.top_k_multi(mogul, seeds, 6)
        np.testing.assert_allclose(native.scores, generic.scores, atol=1e-10)


class TestValidation:
    def test_empty_seed_set_rejected(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        with pytest.raises(ValueError, match="non-empty"):
            ranker.top_k_multi([], 5)

    def test_duplicate_seeds_rejected(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        with pytest.raises(ValueError, match="duplicate"):
            ranker.top_k_multi([1, 1], 5)

    def test_out_of_range_seed_rejected(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        with pytest.raises(ValueError, match="out of range"):
            ranker.top_k_multi([0, ranker.n_nodes], 5)

    def test_bad_weights_rejected(self, clustered_graph):
        ranker = MogulRanker(clustered_graph)
        with pytest.raises(ValueError, match="positive"):
            ranker.top_k_multi([0, 1], 5, weights=np.asarray([1.0, -1.0]))
        with pytest.raises(ValueError, match="shape"):
            ranker.top_k_multi([0, 1], 5, weights=np.asarray([1.0]))

    def test_normalize_seed_weights_uniform_default(self):
        weights = normalize_seed_weights(None, 4)
        np.testing.assert_allclose(weights, np.full(4, 0.25))

    def test_normalize_seed_weights_sums_to_one(self):
        weights = normalize_seed_weights(np.asarray([2.0, 6.0]), 2)
        np.testing.assert_allclose(weights, [0.25, 0.75])


class TestBatch:
    def test_batch_matches_individual(self, clustered_graph):
        ranker = MogulRanker(clustered_graph, alpha=0.9)
        queries = [0, 5, 110]
        batch = ranker.top_k_batch(queries, 4)
        assert len(batch) == len(queries)
        for query, result in zip(queries, batch):
            single = ranker.top_k(query, 4)
            np.testing.assert_array_equal(result.indices, single.indices)
