"""Tests for heat-kernel weighting, graph construction and KnnGraph."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import KnnGraph, build_knn_graph, estimate_sigma, heat_kernel_weights
from tests.conftest import three_cluster_features


class TestHeatKernel:
    def test_weights_in_unit_interval(self):
        d = np.array([0.0, 0.5, 1.0, 10.0])
        w, sigma = heat_kernel_weights(d, sigma=1.0)
        assert np.all(w > 0) and np.all(w <= 1.0)
        assert w[0] == 1.0
        assert np.all(np.diff(w) < 0)

    def test_auto_sigma_is_mean(self):
        d = np.array([1.0, 2.0, 3.0])
        _, sigma = heat_kernel_weights(d, sigma="auto")
        assert sigma == pytest.approx(2.0)

    def test_sigma_validation(self):
        with pytest.raises(ValueError, match="positive"):
            heat_kernel_weights(np.array([1.0]), sigma=0.0)

    def test_estimate_sigma_zero_distances(self):
        assert estimate_sigma(np.zeros(5)) == 1.0

    def test_estimate_sigma_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_sigma(np.array([]))

    def test_homogeneous_distances_keep_weights_alive(self):
        """The failure mode that motivated the mean-based bandwidth: when
        every edge distance is ~d, weights must stay O(1), not underflow."""
        d = np.full(20, 7.0) + np.random.default_rng(0).normal(scale=0.01, size=20)
        w, _ = heat_kernel_weights(d, sigma="auto")
        assert np.all(w > 0.3)


class TestBuildKnnGraph:
    def test_basic_structure(self):
        features, _ = three_cluster_features(per_cluster=20)
        graph = build_knn_graph(features, k=4)
        assert graph.n_nodes == 60
        adj = graph.adjacency
        assert (adj != adj.T).nnz == 0
        assert np.all(adj.diagonal() == 0)
        assert adj.nnz >= 60 * 4  # union symmetrisation only adds edges

    def test_every_node_has_at_least_k_neighbors_union(self):
        features, _ = three_cluster_features(per_cluster=15)
        graph = build_knn_graph(features, k=3, mode="union")
        degrees = np.diff(graph.adjacency.indptr)
        assert np.all(degrees >= 3)

    def test_mutual_mode_is_subset_of_union(self):
        features, _ = three_cluster_features(per_cluster=15)
        union = build_knn_graph(features, k=3, mode="union")
        mutual = build_knn_graph(features, k=3, mode="mutual")
        assert mutual.adjacency.nnz <= union.adjacency.nnz
        union_edges = set(zip(*union.adjacency.nonzero()))
        mutual_edges = set(zip(*mutual.adjacency.nonzero()))
        assert mutual_edges <= union_edges

    def test_binary_weights(self):
        features, _ = three_cluster_features(per_cluster=10)
        graph = build_knn_graph(features, k=3, weight="binary")
        assert set(np.unique(graph.adjacency.data)) == {1.0}
        assert graph.sigma == 0.0

    def test_heat_weights_bounded(self):
        features, _ = three_cluster_features(per_cluster=10)
        graph = build_knn_graph(features, k=3, weight="heat")
        assert np.all(graph.adjacency.data > 0)
        assert np.all(graph.adjacency.data <= 1.0)
        assert graph.sigma > 0

    def test_explicit_sigma_respected(self):
        features, _ = three_cluster_features(per_cluster=10)
        graph = build_knn_graph(features, k=3, sigma=2.5)
        assert graph.sigma == 2.5

    def test_validation_errors(self):
        features = np.zeros((10, 2))
        with pytest.raises(ValueError, match="smaller"):
            build_knn_graph(features, k=10)
        with pytest.raises(ValueError, match="weight"):
            build_knn_graph(np.random.default_rng(0).normal(size=(10, 2)), k=2, weight="x")
        with pytest.raises(ValueError, match="mode"):
            build_knn_graph(np.random.default_rng(0).normal(size=(10, 2)), k=2, mode="x")
        with pytest.raises(ValueError, match="2-D"):
            build_knn_graph(np.zeros(5), k=2)

    def test_deterministic(self):
        features, _ = three_cluster_features(per_cluster=12)
        g1 = build_knn_graph(features, k=3)
        g2 = build_knn_graph(features, k=3)
        assert (g1.adjacency != g2.adjacency).nnz == 0

    def test_separated_clusters_disconnect(self):
        """Widely separated clusters produce no cross-cluster edges."""
        features, labels = three_cluster_features(per_cluster=20, separation=50.0)
        graph = build_knn_graph(features, k=3)
        coo = graph.adjacency.tocoo()
        assert np.all(labels[coo.row] == labels[coo.col])


class TestKnnGraphContainer:
    def test_degree_vector(self, clustered_graph):
        expected = np.asarray(clustered_graph.adjacency.sum(axis=1)).ravel()
        np.testing.assert_allclose(clustered_graph.degrees, expected)

    def test_neighbors_and_edge_weight(self, clustered_graph):
        node = 0
        nbrs = clustered_graph.neighbors(node)
        assert len(nbrs) > 0
        for j in nbrs:
            assert clustered_graph.edge_weight(node, int(j)) > 0
        # a non-edge
        non_neighbors = set(range(clustered_graph.n_nodes)) - set(nbrs.tolist()) - {node}
        some = next(iter(non_neighbors))
        assert clustered_graph.edge_weight(node, some) == 0.0

    def test_subgraph_adjacency(self, clustered_graph):
        nodes = np.arange(10)
        sub = clustered_graph.subgraph_adjacency(nodes)
        assert sub.shape == (10, 10)
        np.testing.assert_allclose(
            sub.toarray(), clustered_graph.adjacency[:10, :10].toarray()
        )

    def test_rejects_self_loops(self):
        adj = sp.identity(4, format="csr")
        with pytest.raises(ValueError, match="self loops"):
            KnnGraph(features=np.zeros((4, 2)), adjacency=adj, k=1, sigma=1.0)

    def test_rejects_asymmetric(self):
        adj = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(ValueError, match="symmetric"):
            KnnGraph(features=np.zeros((2, 2)), adjacency=adj, k=1, sigma=1.0)

    def test_rejects_negative_weights(self):
        adj = sp.csr_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ValueError, match="non-negative"):
            KnnGraph(features=np.zeros((2, 2)), adjacency=adj, k=1, sigma=1.0)

    def test_rejects_shape_mismatch(self):
        adj = sp.csr_matrix((3, 3))
        with pytest.raises(ValueError, match="features"):
            KnnGraph(features=np.zeros((2, 2)), adjacency=adj, k=1, sigma=1.0)
