"""Tests for the packed triangular solver (repro.linalg.packed).

The contract: :class:`PackedUnitLower` answers repeated unit-triangular
solves and must agree, to machine precision, with dense numpy reference
solves and with the public-API fallback — whichever kernel it picked.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.packed import HAVE_SUPERLU_GSTRS, PackedUnitLower


def random_strict_lower(n: int, density: float, seed: int) -> sp.csr_matrix:
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(n, n)) * (rng.random((n, n)) < density)
    return sp.csr_matrix(np.tril(dense, k=-1))


def dense_unit_lower(strict: sp.csr_matrix) -> np.ndarray:
    return strict.toarray() + np.eye(strict.shape[0])


class TestAgainstDenseReference:
    @pytest.mark.parametrize("n", [2, 3, 10, 57])
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.6])
    def test_solve_lower(self, n, density):
        strict = random_strict_lower(n, density, seed=n)
        packed = PackedUnitLower(strict)
        rng = np.random.default_rng(1)
        b = rng.normal(size=n)
        expected = np.linalg.solve(dense_unit_lower(strict), b)
        np.testing.assert_allclose(packed.solve_lower(b), expected, atol=1e-10)

    @pytest.mark.parametrize("n", [2, 3, 10, 57])
    @pytest.mark.parametrize("density", [0.0, 0.1, 0.6])
    def test_solve_upper(self, n, density):
        strict = random_strict_lower(n, density, seed=n + 100)
        packed = PackedUnitLower(strict)
        rng = np.random.default_rng(2)
        b = rng.normal(size=n)
        expected = np.linalg.solve(dense_unit_lower(strict).T, b)
        np.testing.assert_allclose(packed.solve_upper(b), expected, atol=1e-10)

    def test_repeated_solves_are_stable(self):
        """The packed arrays must not be corrupted by solving."""
        strict = random_strict_lower(20, 0.3, seed=5)
        packed = PackedUnitLower(strict)
        b = np.arange(20, dtype=np.float64)
        first = packed.solve_lower(b)
        for _ in range(5):
            np.testing.assert_array_equal(packed.solve_lower(b), first)

    def test_input_vector_not_mutated(self):
        strict = random_strict_lower(15, 0.4, seed=9)
        packed = PackedUnitLower(strict)
        b = np.ones(15)
        before = b.copy()
        packed.solve_lower(b)
        packed.solve_upper(b)
        np.testing.assert_array_equal(b, before)


class TestKernelEquivalence:
    @pytest.mark.skipif(not HAVE_SUPERLU_GSTRS, reason="no SuperLU kernel")
    @pytest.mark.parametrize("n", [2, 16, 40])
    def test_superlu_matches_fallback(self, n):
        strict = random_strict_lower(n, 0.25, seed=n)
        fast = PackedUnitLower(strict, use_superlu=True)
        slow = PackedUnitLower(strict, use_superlu=False)
        assert fast.uses_superlu and not slow.uses_superlu
        rng = np.random.default_rng(0)
        for _ in range(3):
            b = rng.normal(size=n)
            np.testing.assert_allclose(
                fast.solve_lower(b), slow.solve_lower(b), atol=1e-12
            )
            np.testing.assert_allclose(
                fast.solve_upper(b), slow.solve_upper(b), atol=1e-12
            )


class TestEdgeCases:
    def test_empty_block(self):
        packed = PackedUnitLower(sp.csr_matrix((0, 0)))
        assert packed.n == 0
        assert packed.nnz == 0
        result = packed.solve_lower(np.empty(0))
        assert result.shape == (0,)

    def test_single_row_block_is_identity(self):
        packed = PackedUnitLower(sp.csr_matrix((1, 1)))
        np.testing.assert_array_equal(packed.solve_lower(np.asarray([3.5])), [3.5])
        np.testing.assert_array_equal(packed.solve_upper(np.asarray([-2.0])), [-2.0])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            PackedUnitLower(sp.csr_matrix(np.zeros((2, 3))))

    def test_rejects_diagonal_entries(self):
        bad = sp.csr_matrix(np.diag([1.0, 2.0]))
        with pytest.raises(ValueError, match="on or above"):
            PackedUnitLower(bad)

    def test_rejects_upper_entries(self):
        bad = sp.csr_matrix(np.asarray([[0.0, 1.0], [0.5, 0.0]]))
        with pytest.raises(ValueError, match="on or above"):
            PackedUnitLower(bad)

    def test_tolerates_explicit_zeros_above_diagonal(self):
        # Construct with an explicitly *stored* zero above the diagonal.
        matrix = sp.csr_matrix(
            (np.asarray([0.0, 0.5]), (np.asarray([0, 1]), np.asarray([1, 0]))),
            shape=(2, 2),
        )
        packed = PackedUnitLower(matrix)
        np.testing.assert_allclose(
            packed.solve_lower(np.asarray([1.0, 1.0])), [1.0, 0.5]
        )

    def test_rejects_wrong_rhs_shape(self):
        packed = PackedUnitLower(random_strict_lower(4, 0.5, seed=0))
        with pytest.raises(ValueError, match="shape"):
            packed.solve_lower(np.zeros(5))

    def test_nnz_counts_unit_diagonal(self):
        strict = random_strict_lower(10, 0.3, seed=3)
        packed = PackedUnitLower(strict)
        assert packed.nnz == strict.nnz + 10


class TestPropertyBased:
    @settings(deadline=None, max_examples=40)
    @given(
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_solve_then_multiply_roundtrip(self, n, seed):
        """(I+L) @ solve_lower(b) == b and (I+L)^T @ solve_upper(b) == b."""
        strict = random_strict_lower(n, 0.3, seed=seed)
        packed = PackedUnitLower(strict)
        rng = np.random.default_rng(seed)
        b = rng.normal(size=n)
        unit = dense_unit_lower(strict)
        np.testing.assert_allclose(unit @ packed.solve_lower(b), b, atol=1e-8)
        np.testing.assert_allclose(unit.T @ packed.solve_upper(b), b, atol=1e-8)


class TestMultiRHS:
    """Multi-RHS solves must equal the per-column single-RHS solves."""

    @pytest.mark.parametrize("n", [2, 10, 57])
    @pytest.mark.parametrize("n_rhs", [1, 3, 8])
    def test_columns_match_single_solves(self, n, n_rhs):
        strict = random_strict_lower(n, 0.4, seed=n + n_rhs)
        packed = PackedUnitLower(strict)
        rng = np.random.default_rng(5)
        b = rng.normal(size=(n, n_rhs))
        lower = packed.solve_lower(b)
        upper = packed.solve_upper(b)
        assert lower.shape == (n, n_rhs)
        for j in range(n_rhs):
            np.testing.assert_array_equal(lower[:, j], packed.solve_lower(b[:, j]))
            np.testing.assert_array_equal(upper[:, j], packed.solve_upper(b[:, j]))

    @pytest.mark.skipif(not HAVE_SUPERLU_GSTRS, reason="needs SuperLU gstrs")
    def test_kernels_agree_on_matrix_rhs(self):
        strict = random_strict_lower(23, 0.3, seed=9)
        fast = PackedUnitLower(strict, use_superlu=True)
        fallback = PackedUnitLower(strict, use_superlu=False)
        b = np.random.default_rng(2).normal(size=(23, 5))
        np.testing.assert_allclose(
            fast.solve_lower(b), fallback.solve_lower(b), atol=1e-12
        )
        np.testing.assert_allclose(
            fast.solve_upper(b), fallback.solve_upper(b), atol=1e-12
        )

    def test_zero_column_rhs(self):
        packed = PackedUnitLower(random_strict_lower(6, 0.5, seed=1))
        out = packed.solve_lower(np.zeros((6, 0)))
        assert out.shape == (6, 0)

    def test_tiny_block_matrix_rhs(self):
        packed = PackedUnitLower(sp.csr_matrix((1, 1)))
        b = np.asarray([[2.0, 3.0]])
        np.testing.assert_array_equal(packed.solve_upper(b), b)

    def test_rejects_3d_rhs(self):
        packed = PackedUnitLower(random_strict_lower(4, 0.5, seed=0))
        with pytest.raises(ValueError, match="shape"):
            packed.solve_lower(np.zeros((4, 2, 2)))


class TestTrustedPacking:
    def test_matches_validated_path_bitwise(self):
        rng = np.random.default_rng(0)
        dense = np.tril(rng.random((20, 20)), k=-1)
        block = sp.csr_matrix(dense)
        fast = PackedUnitLower.from_strict_lower_trusted(block)
        slow = PackedUnitLower(block)
        b = rng.random((20, 3))
        np.testing.assert_array_equal(fast.solve_lower(b), slow.solve_lower(b))
        np.testing.assert_array_equal(fast.solve_upper(b), slow.solve_upper(b))

    def test_rejects_diagonal_entries(self):
        bad = sp.csr_matrix(np.tril(np.ones((6, 6))))  # unit diagonal present
        with pytest.raises(ValueError, match="on or above the diagonal"):
            PackedUnitLower.from_strict_lower_trusted(bad)
