"""Tests for the synthetic dataset substitutes and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    Dataset,
    circle_manifolds,
    gaussian_clusters,
    load_dataset,
    make_coil,
    make_inria,
    make_nuswide,
    make_pubfig,
    zipf_cluster_sizes,
)


class TestSyntheticPrimitives:
    def test_circle_manifolds_shapes(self):
        features, labels = circle_manifolds(4, 10, dim=8, seed=0)
        assert features.shape == (40, 8)
        assert labels.shape == (40,)
        np.testing.assert_array_equal(np.unique(labels), np.arange(4))

    def test_circle_points_lie_near_circle(self):
        features, labels = circle_manifolds(1, 50, dim=16, noise=0.0, seed=1)
        center = features.mean(axis=0)
        radii = np.linalg.norm(features - center, axis=1)
        np.testing.assert_allclose(radii, 1.0, atol=1e-6)

    def test_circle_adjacent_poses_are_close(self):
        features, _ = circle_manifolds(1, 72, dim=8, noise=0.0, seed=2)
        adjacent = np.linalg.norm(np.diff(features, axis=0), axis=1)
        step = 2 * np.sin(np.pi / 72)  # chord of one pose step
        np.testing.assert_allclose(adjacent, step, atol=1e-9)

    def test_circle_dim_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            circle_manifolds(2, 5, dim=1)

    def test_gaussian_clusters_sizes(self):
        sizes = np.array([5, 10, 3])
        features, labels = gaussian_clusters(sizes, dim=6, seed=0)
        assert features.shape == (18, 6)
        np.testing.assert_array_equal(np.bincount(labels), sizes)

    def test_gaussian_cluster_separation_scales(self):
        """Typical inter-centre distance is dimension-independent."""
        rng_dists = []
        for dim in (10, 200):
            features, labels = gaussian_clusters(
                np.full(20, 30), dim=dim, center_scale=8.0, spread=0.1, seed=3
            )
            centers = np.stack(
                [features[labels == c].mean(axis=0) for c in range(20)]
            )
            d = np.linalg.norm(centers[0] - centers[1:], axis=1)
            rng_dists.append(np.median(d))
        assert rng_dists[0] == pytest.approx(rng_dists[1], rel=0.5)

    def test_gaussian_validation(self):
        with pytest.raises(ValueError, match="sizes"):
            gaussian_clusters(np.array([0, 3]), dim=2)
        with pytest.raises(ValueError, match="sizes"):
            gaussian_clusters(np.array([]), dim=2)

    def test_zipf_sizes_sum_and_skew(self):
        sizes = zipf_cluster_sizes(1000, 20, exponent=1.3)
        assert sizes.sum() == 1000
        assert sizes[0] == sizes.max()
        assert np.all(sizes >= 3)
        assert sizes[0] / sizes[-1] > 5  # genuinely skewed

    def test_zipf_validation(self):
        with pytest.raises(ValueError, match="cannot fit"):
            zipf_cluster_sizes(10, 20, min_size=3)
        with pytest.raises(ValueError, match="exponent"):
            zipf_cluster_sizes(100, 5, exponent=0.0)


class TestMultimodalClusters:
    def test_shapes_and_labels(self):
        from repro.datasets.synthetic import multimodal_clusters

        sizes = np.asarray([300, 50, 10])
        features, labels = multimodal_clusters(sizes, dim=20, seed=0)
        assert features.shape == (360, 20)
        np.testing.assert_array_equal(np.bincount(labels), sizes)

    def test_large_cluster_has_multiple_modes(self):
        """A big cluster must not be one Gaussian blob: its points spread
        over several well-separated modes."""
        from repro.datasets.synthetic import multimodal_clusters

        features, labels = multimodal_clusters(
            np.asarray([600]), dim=30, target_mode_size=100,
            mode_scale=3.0, spread=0.3, bridge_fraction=0.0, seed=1,
        )
        # Distances from one point should be bimodal: tight within-mode
        # distances and mode-separation distances.
        diffs = features - features[0]
        dist = np.sqrt(np.einsum("ij,ij->i", diffs, diffs))[1:]
        assert np.percentile(dist, 90) > 3 * np.percentile(dist, 10)

    def test_bridges_connect_modes(self):
        """With bridges the k-NN graph of one concept has fewer connected
        components than without."""
        import scipy.sparse.csgraph as csgraph

        from repro.datasets.synthetic import multimodal_clusters
        from repro.graph.build import build_knn_graph

        def components(bridge_fraction):
            features, _ = multimodal_clusters(
                np.asarray([500]), dim=30, target_mode_size=80,
                mode_scale=3.0, spread=0.3,
                bridge_fraction=bridge_fraction, seed=2,
            )
            graph = build_knn_graph(features, k=5)
            count, _ = csgraph.connected_components(graph.adjacency)
            return count

        assert components(0.06) < components(0.0)

    def test_small_cluster_single_mode(self):
        from repro.datasets.synthetic import multimodal_clusters

        features, _ = multimodal_clusters(
            np.asarray([30]), dim=10, target_mode_size=100, seed=3
        )
        assert features.shape == (30, 10)

    def test_validation(self):
        from repro.datasets.synthetic import multimodal_clusters

        with pytest.raises(ValueError, match="sizes"):
            multimodal_clusters(np.asarray([]), dim=5)
        with pytest.raises(ValueError, match="sizes"):
            multimodal_clusters(np.asarray([0]), dim=5)
        with pytest.raises(ValueError, match="bridge_fraction"):
            multimodal_clusters(np.asarray([10]), dim=5, bridge_fraction=1.5)

    def test_deterministic(self):
        from repro.datasets.synthetic import multimodal_clusters

        a, _ = multimodal_clusters(np.asarray([100, 20]), dim=8, seed=9)
        b, _ = multimodal_clusters(np.asarray([100, 20]), dim=8, seed=9)
        np.testing.assert_array_equal(a, b)


class TestGenerators:
    @pytest.mark.parametrize(
        "factory,kwargs,expected_dim",
        [
            (make_coil, {"n_objects": 6, "n_poses": 12}, 64),
            (make_pubfig, {"n_identities": 8, "images_per_identity": 10}, 73),
            (make_nuswide, {"n_points": 300, "n_concepts": 6}, 150),
            (make_inria, {"n_points": 300, "n_components": 10}, 128),
        ],
    )
    def test_shapes_and_determinism(self, factory, kwargs, expected_dim):
        a = factory(seed=5, **kwargs)
        b = factory(seed=5, **kwargs)
        assert a.n_dims == expected_dim
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)
        c = factory(seed=6, **kwargs)
        assert not np.allclose(a.features, c.features)

    def test_coil_pose_structure(self):
        ds = make_coil(n_objects=5, n_poses=20, seed=0)
        assert ds.n_points == 100
        assert ds.n_classes == 5
        # consecutive poses of one object are closer than random pairs
        obj0 = ds.features[ds.labels == 0]
        adjacent = np.linalg.norm(obj0[1] - obj0[0])
        cross = np.linalg.norm(ds.features[ds.labels == 1][0] - obj0[0])
        assert adjacent < cross

    def test_coil_confusable_pairs_recorded(self):
        ds = make_coil(n_objects=10, n_poses=12, confusable_fraction=0.4, seed=0)
        assert ds.metadata["confusable_pairs"] == 2

    def test_nuswide_unbalanced(self):
        ds = make_nuswide(n_points=500, n_concepts=10, seed=0)
        counts = np.bincount(ds.labels)
        assert counts.max() / counts.min() > 3

    def test_inria_sift_postprocessing(self):
        ds = make_inria(n_points=100, n_components=5, seed=0)
        norms = np.linalg.norm(ds.features, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)
        assert np.all(ds.features >= 0)
        # clipping happened before the final renormalisation, so no single
        # component can dominate (real SIFT shows the same <= ~0.4 ceiling
        # because renormalisation scales the 0.2 clip up by 1/||clipped||)
        assert ds.features.max() < 0.5

    def test_pubfig_identity_clusters_coherent(self):
        ds = make_pubfig(n_identities=10, images_per_identity=15, seed=0)
        # within-identity spread smaller than global spread
        global_std = ds.features.std()
        within = np.mean(
            [ds.features[ds.labels == c].std() for c in range(10)]
        )
        assert within < global_std


class TestDatasetContainer:
    def test_validation(self):
        with pytest.raises(ValueError, match="labels"):
            Dataset(name="x", features=np.zeros((4, 2)), labels=np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="2-D"):
            Dataset(name="x", features=np.zeros(4), labels=np.zeros(4, dtype=int))

    def test_build_graph(self):
        ds = make_coil(n_objects=4, n_poses=10, seed=0)
        graph = ds.build_graph(k=3)
        assert graph.n_nodes == ds.n_points
        assert graph.k == 3

    def test_holdout_split(self):
        ds = make_pubfig(n_identities=5, images_per_identity=10, seed=0)
        reduced, held_features, held_labels = ds.holdout_split(5, seed=1)
        assert reduced.n_points == 45
        assert held_features.shape == (5, ds.n_dims)
        assert held_labels.shape == (5,)
        # held-out rows are not in the reduced set
        for row in held_features:
            assert not np.any(np.all(reduced.features == row, axis=1))

    def test_holdout_validation(self):
        ds = make_coil(n_objects=2, n_poses=5, seed=0)
        with pytest.raises(ValueError):
            ds.holdout_split(0)
        with pytest.raises(ValueError):
            ds.holdout_split(10)


class TestRegistry:
    def test_all_names_load(self):
        for name in DATASET_NAMES:
            ds = load_dataset(name, scale=0.1, seed=0)
            assert ds.name == name
            assert ds.n_points > 0

    def test_scale_monotone(self):
        small = load_dataset("nuswide", scale=0.1)
        large = load_dataset("nuswide", scale=0.3)
        assert large.n_points > small.n_points

    def test_size_ordering_preserved(self):
        sizes = [load_dataset(n, scale=0.2).n_points for n in DATASET_NAMES]
        assert sizes == sorted(sizes)

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_bad_scale(self):
        with pytest.raises(ValueError, match="scale"):
            load_dataset("coil", scale=0.0)
