"""Tests for forward/back substitution, full and row-restricted."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.linalg import (
    back_substitute,
    back_substitute_rows,
    complete_ldl,
    forward_substitute,
    forward_substitute_rows,
    incomplete_ldl,
    ldl_solve,
)
from repro.ranking.normalize import ranking_matrix
from tests.conftest import random_symmetric_adjacency


@pytest.fixture(scope="module")
def factors():
    w = ranking_matrix(random_symmetric_adjacency(40, seed=1), 0.9)
    return complete_ldl(w), w


class TestForwardSubstitute:
    def test_solves_ld_system(self, factors):
        ldl, _ = factors
        b = np.random.default_rng(0).random(40)
        y = forward_substitute(ldl, b)
        l_full = (ldl.lower + sp.identity(40)).toarray()
        np.testing.assert_allclose(l_full @ np.diag(ldl.diag) @ y, b, atol=1e-9)

    def test_restricted_rows_match_full_on_prefix(self, factors):
        """Restricting to a prefix 0..m-1 gives the same values there,
        because forward substitution is causal in the row order."""
        ldl, _ = factors
        b = np.random.default_rng(1).random(40)
        full = forward_substitute(ldl, b)
        restricted = forward_substitute_rows(ldl, b, range(15))
        np.testing.assert_allclose(restricted[:15], full[:15], atol=1e-12)
        np.testing.assert_array_equal(restricted[15:], 0.0)

    def test_rejects_wrong_length(self, factors):
        ldl, _ = factors
        with pytest.raises(ValueError):
            forward_substitute(ldl, np.zeros(5))

    def test_duplicate_rows_are_deduplicated(self, factors):
        ldl, _ = factors
        b = np.random.default_rng(2).random(40)
        once = forward_substitute_rows(ldl, b, [0, 1, 2])
        twice = forward_substitute_rows(ldl, b, [0, 1, 2, 2, 1, 0])
        np.testing.assert_array_equal(once, twice)


class TestBackSubstitute:
    def test_solves_u_system(self, factors):
        ldl, _ = factors
        y = np.random.default_rng(3).random(40)
        x = back_substitute(ldl, y)
        u_full = (ldl.upper + sp.identity(40)).toarray()
        np.testing.assert_allclose(u_full @ x, y, atol=1e-9)

    def test_restricted_suffix_matches_full(self, factors):
        """Back substitution is causal from the end: a suffix restriction
        reproduces the full values on that suffix."""
        ldl, _ = factors
        y = np.random.default_rng(4).random(40)
        full = back_substitute(ldl, y)
        out = np.zeros(40)
        back_substitute_rows(ldl, y, range(25, 40), out=out)
        np.testing.assert_allclose(out[25:], full[25:], atol=1e-12)

    def test_incremental_extension(self, factors):
        """Computing the suffix first, then an earlier chunk into the same
        buffer, equals one full pass — the mechanism behind Lemma 5."""
        ldl, _ = factors
        y = np.random.default_rng(5).random(40)
        full = back_substitute(ldl, y)
        out = np.zeros(40)
        back_substitute_rows(ldl, y, range(25, 40), out=out)
        back_substitute_rows(ldl, y, range(10, 25), out=out)
        back_substitute_rows(ldl, y, range(0, 10), out=out)
        np.testing.assert_allclose(out, full, atol=1e-12)


class TestLdlSolve:
    def test_matches_dense_solve(self, factors):
        ldl, w = factors
        b = np.random.default_rng(6).random(40)
        np.testing.assert_allclose(
            ldl_solve(ldl, b), np.linalg.solve(w.toarray(), b), atol=1e-8
        )

    def test_incomplete_solve_is_approximate_but_finite(self):
        w = ranking_matrix(random_symmetric_adjacency(40, seed=9), 0.9)
        ldl = incomplete_ldl(w)
        b = np.random.default_rng(7).random(40)
        x = ldl_solve(ldl, b)
        assert np.all(np.isfinite(x))


class TestMultiRHSTiers:
    """Production-tier functions on (n, b) right-hand sides."""

    def test_forward_solve_ranges_matrix_rhs(self, factors):
        from repro.linalg.triangular import forward_solve_ranges

        ldl, _ = factors
        b = np.random.default_rng(3).normal(size=(40, 4))
        ranges = [(0, 12), (25, 40)]
        batched = forward_solve_ranges(ldl, b, ranges)
        assert batched.shape == (40, 4)
        for j in range(4):
            np.testing.assert_array_equal(
                batched[:, j], forward_solve_ranges(ldl, b[:, j], ranges)
            )

    def test_forward_solve_ranges_single_row_matrix_rhs(self, factors):
        from repro.linalg.triangular import forward_solve_ranges

        ldl, _ = factors
        b = np.random.default_rng(4).normal(size=(40, 3))
        batched = forward_solve_ranges(ldl, b, [(7, 8)])
        for j in range(3):
            np.testing.assert_array_equal(
                batched[:, j], forward_solve_ranges(ldl, b[:, j], [(7, 8)])
            )

    def test_back_solve_block_matrix_rhs(self, factors):
        from repro.linalg.triangular import back_solve_block

        ldl, _ = factors
        rng = np.random.default_rng(5)
        y = rng.normal(size=(40, 4))
        out = np.zeros((40, 4))
        back_solve_block(ldl, y, (25, 40), out)
        back_solve_block(ldl, y, (0, 25), out)
        for j in range(4):
            reference = np.zeros(40)
            back_solve_block(ldl, y[:, j], (25, 40), reference)
            back_solve_block(ldl, y[:, j], (0, 25), reference)
            np.testing.assert_array_equal(out[:, j], reference)
