"""Hostile-input and failure-mode robustness for the serving stack.

Truncated and oversized requests, invalid deadline and Retry-After
values, stale-socket retry semantics, the retry budget, and the
BackgroundServer lifecycle errors (a failed bind must name the port,
not time out silently).
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.index import MogulRanker
from repro.service.client import (
    ALWAYS_RETRYABLE,
    IDEMPOTENT_RETRYABLE,
    RequestFailedError,
    RetrievalClient,
    run_load_test,
)
from repro.service.faults import FaultInjector
from repro.service.server import BackgroundServer

pytestmark = pytest.mark.timeout(120)


@pytest.fixture(scope="module")
def ranker(bridged_graph):
    return MogulRanker(bridged_graph)


@pytest.fixture(scope="module")
def background(ranker):
    with BackgroundServer(
        ranker, port=0, max_batch_size=16, max_wait_ms=1.0, cache_capacity=64
    ) as server:
        yield server


@pytest.fixture()
def client(background):
    with RetrievalClient(port=background.port) as connection:
        yield connection


class TestHostileHttp:
    def test_truncated_body_does_not_wedge_server(self, background, client):
        """A client that dies mid-body must not take a worker with it."""
        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(
                b"POST /search HTTP/1.1\r\nContent-Length: 500\r\n\r\n"
                b'{"query": 1'  # ...connection dropped mid-body
            )
        # The server abandoned that connection and still answers others.
        assert client.healthz()["status"] == "ok"
        assert client.search(1, k=5)["indices"]

    def test_truncated_header_block(self, background, client):
        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(b"POST /search HTTP/1.1\r\nContent-Le")
        assert client.healthz()["status"] == "ok"

    def test_garbage_request_line(self, background, client):
        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(b"\x00\xff\xfe garbage \r\n\r\n")
        assert client.healthz()["status"] == "ok"

    def test_custom_body_limit_413(self, ranker):
        with BackgroundServer(
            ranker, port=0, cache_capacity=0, max_body_bytes=1024
        ) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5
            ) as raw:
                raw.sendall(
                    b"POST /search HTTP/1.1\r\nContent-Length: 2048\r\n\r\n"
                )
                reply = raw.recv(4096).decode()
            assert reply.startswith("HTTP/1.1 413")
            assert "1024" in reply
            # In-limit requests still served by the same server.
            with RetrievalClient(port=server.port) as probe:
                assert probe.search(1, k=3)["indices"]

    def test_negative_content_length_400(self, background):
        with socket.create_connection(
            ("127.0.0.1", background.port), timeout=5
        ) as raw:
            raw.sendall(b"POST /search HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
            reply = raw.recv(4096).decode()
        assert reply.startswith("HTTP/1.1 400")

    def test_invalid_deadline_header_400(self, client):
        status, _, text = client._raw(
            "POST",
            "/search",
            {"query": 1, "k": 5},
            extra_headers={"X-Repro-Deadline-Ms": "soon"},
        )
        assert status == 400
        assert "deadline_ms" in text


class TestBackgroundServerLifecycle:
    def test_failed_bind_raises_with_address(self, ranker):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            blocker.bind(("127.0.0.1", 0))
            blocker.listen(1)
            taken = blocker.getsockname()[1]
            with pytest.raises(RuntimeError) as excinfo:
                BackgroundServer(ranker, port=taken, cache_capacity=0)
            message = str(excinfo.value)
            assert f"127.0.0.1:{taken}" in message
            assert "OSError" in message
            assert isinstance(excinfo.value.__cause__, OSError)
        finally:
            blocker.close()

    def test_stop_is_idempotent(self, ranker):
        server = BackgroundServer(ranker, port=0, cache_capacity=0)
        server.stop()
        server.stop()  # second call is a no-op, not an error


class TestClientResilience:
    def test_retry_classes(self):
        assert 429 in ALWAYS_RETRYABLE and 503 in ALWAYS_RETRYABLE
        assert 500 in IDEMPOTENT_RETRYABLE and 504 in IDEMPOTENT_RETRYABLE
        assert not (ALWAYS_RETRYABLE & IDEMPOTENT_RETRYABLE)

    def test_retry_after_header_wins_and_is_clamped(self):
        client = RetrievalClient(port=1, retries=1)
        assert client._retry_delay(0, {"Retry-After": "2"}) == 2.0
        assert client._retry_delay(0, {"retry-after": "3.5"}) == 3.5
        assert client._retry_delay(0, {"Retry-After": "9999"}) == 10.0

    def test_invalid_retry_after_falls_back_to_jitter(self):
        client = RetrievalClient(port=1, retries=1, backoff_ms=50.0)
        for bad in ("soon", "", "-3", None):
            delay = client._retry_delay(0, {"Retry-After": bad})
            assert 0.0 <= delay <= 0.05

    def test_backoff_is_exponential_full_jitter(self):
        client = RetrievalClient(
            port=1, retries=8, backoff_ms=10.0, backoff_cap_ms=100.0
        )
        for attempt in range(8):
            bound = min(0.1, 0.01 * 2**attempt)
            for _ in range(20):
                assert 0.0 <= client._retry_delay(attempt, None) <= bound

    def test_retry_budget_bounds_spend_and_refills(self):
        client = RetrievalClient(port=1, retries=10, retry_budget=2.0)
        assert client._take_retry_token()
        assert client._take_retry_token()
        assert not client._take_retry_token()  # bucket drained
        assert client.counters["retries"] == 2
        for _ in range(12):  # successes refill 0.1 each
            client._budget = min(client._budget_cap, client._budget + 0.1)
        assert client._take_retry_token()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            RetrievalClient(port=1, retries=-1)

    def test_retries_recover_from_server_restart(self, ranker):
        """A stale keep-alive socket is retried for idempotent requests."""
        first = BackgroundServer(ranker, port=0, cache_capacity=0)
        port = first.port
        with RetrievalClient(port=port, retries=3, backoff_ms=1.0) as client:
            assert client.search(1, k=3)["indices"]
            first.stop()
            # Same port, fresh server: the old socket is dead and the
            # idempotent request reconnects through the retry path.
            with BackgroundServer(ranker, port=port, cache_capacity=0):
                assert client.search(2, k=3)["indices"]

    def test_mutation_not_retried_on_connection_error(self, ranker):
        first = BackgroundServer(ranker, port=0, cache_capacity=0)
        port = first.port
        with RetrievalClient(port=port, retries=3, backoff_ms=1.0) as client:
            assert client.healthz()["status"] == "ok"
            first.stop()
            with BackgroundServer(ranker, port=port, cache_capacity=0):
                # The read-only server would answer 403 — but the client
                # must not even resend over its dead socket: a mutation
                # may already have been applied by the old server.
                with pytest.raises((OSError, ConnectionError, RuntimeError)):
                    client.insert([0.0] * ranker.graph.features.shape[1])

    def test_mutation_still_retries_sheds(self, ranker):
        """429 means "never admitted": safe to retry even for mutations."""
        faults = FaultInjector.parse("engine.solve:latency:40")
        calls = {"n": 0}

        with BackgroundServer(
            ranker,
            port=0,
            max_batch_size=1,
            max_wait_ms=0.0,
            cache_capacity=0,
            max_queue_depth=1,
            overload_policy="shed",
            faults=faults,
        ) as server:
            # Saturate the queue from background threads so the mutation
            # attempt (a read-only 403 here, but routed like any POST)
            # meets a loaded server; the point is the retry accounting.
            stop = threading.Event()

            def pressure():
                with RetrievalClient(port=server.port) as noisy:
                    while not stop.is_set():
                        try:
                            noisy.search(calls["n"] % 50, k=5)
                        except RequestFailedError:
                            pass
                        calls["n"] += 1

            threads = [threading.Thread(target=pressure) for _ in range(4)]
            for thread in threads:
                thread.start()
            try:
                with RetrievalClient(
                    port=server.port, retries=2, backoff_ms=1.0
                ) as client:
                    # 403 (read-only) is NOT retryable: it must surface
                    # after at most the shed retries, never hang.
                    with pytest.raises(RequestFailedError) as excinfo:
                        client.insert(
                            [0.0] * ranker.graph.features.shape[1]
                        )
                    assert excinfo.value.status in (403, 429)
            finally:
                stop.set()
                for thread in threads:
                    thread.join()


class TestLoadGeneratorOverloadAccounting:
    def test_report_breaks_out_sheds_and_degrades(self, ranker):
        faults = FaultInjector.parse("engine.solve:latency:20")
        with BackgroundServer(
            ranker,
            port=0,
            max_batch_size=1,
            max_wait_ms=0.0,
            cache_capacity=0,
            max_queue_depth=1,
            overload_policy="shed",
            faults=faults,
        ) as server:
            report = run_load_test(
                port=server.port, concurrency=6, total_requests=60, k=5
            )
        assert report.n_requests == 60
        assert report.n_shed > 0
        assert report.n_errors == 0  # sheds are policy, not failures
        assert report.ok
        assert report.goodput_rps < report.throughput_rps
        as_dict = report.to_dict()
        assert as_dict["n_shed"] == report.n_shed
        assert "overload:" in report.to_text()

    def test_deadline_expiries_counted_not_errors(self, ranker):
        faults = FaultInjector.parse("scheduler.queue:stall:80")
        with BackgroundServer(
            ranker,
            port=0,
            max_wait_ms=0.0,
            cache_capacity=0,
            max_queue_depth=None,
            faults=faults,
        ) as server:
            report = run_load_test(
                port=server.port,
                concurrency=4,
                total_requests=24,
                k=5,
                deadline_ms=30.0,
            )
        assert report.n_timeout > 0
        assert report.n_errors == 0

    def test_retried_requests_counted(self, ranker):
        faults = FaultInjector.parse("server.response:error:0:0.3")
        with BackgroundServer(
            ranker, port=0, cache_capacity=0, faults=faults
        ) as server:
            report = run_load_test(
                port=server.port,
                concurrency=4,
                total_requests=40,
                k=5,
                retries=6,
            )
        assert report.n_retried > 0
        assert report.n_errors == 0  # retries absorbed the injected 500s
