"""Shared fixtures and helpers for the test suite.

Conventions:

* Graph-level fixtures are module- or session-scoped where construction is
  expensive; they must never be mutated by tests.
* ``graph_from_adjacency`` builds a :class:`repro.graph.KnnGraph` around an
  arbitrary symmetric adjacency matrix, letting structural tests bypass
  feature-space k-NN construction.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph.adjacency import KnnGraph
from repro.graph.build import build_knn_graph


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    """Enforce ``@pytest.mark.timeout(seconds)`` without extra plugins.

    The service/e2e tests exercise real sockets, worker threads and
    background rebuilds; a deadlocked epoch swap must fail the one test
    fast instead of hanging the whole run (or a CI workflow).  When the
    ``pytest-timeout`` plugin is installed it owns the marker and this
    hook steps aside; otherwise a SIGALRM-based fallback (main thread,
    POSIX — i.e. every environment CI runs) raises inside the test.
    """
    marker = item.get_closest_marker("timeout")
    usable = (
        marker is not None
        and marker.args
        and not item.config.pluginmanager.hasplugin("timeout")
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)
    seconds = float(marker.args[0])

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds:.0f}s timeout")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def graph_from_adjacency(
    adjacency: sp.spmatrix,
    features: np.ndarray | None = None,
    k: int = 5,
    sigma: float = 1.0,
) -> KnnGraph:
    """Wrap a hand-built adjacency in a KnnGraph (features optional)."""
    adjacency = adjacency.tocsr().astype(np.float64)
    n = adjacency.shape[0]
    if features is None:
        features = np.random.default_rng(0).normal(size=(n, 4))
    return KnnGraph(
        features=np.asarray(features, dtype=np.float64),
        adjacency=adjacency,
        k=k,
        sigma=sigma,
    )


def random_symmetric_adjacency(
    n: int, density: float = 0.15, seed: int = 0, connected_path: bool = True
) -> sp.csr_matrix:
    """Random symmetric non-negative adjacency with zero diagonal.

    ``connected_path`` threads a Hamiltonian path so no node is isolated,
    which keeps degree normalisation non-degenerate.
    """
    rng = np.random.default_rng(seed)
    dense = rng.random((n, n))
    mask = rng.random((n, n)) < density
    upper = np.triu(dense * mask, k=1)
    if connected_path and n > 1:
        idx = np.arange(n - 1)
        upper[idx, idx + 1] = rng.random(n - 1) * 0.5 + 0.5
    sym = upper + upper.T
    return sp.csr_matrix(sym)


def three_cluster_features(
    per_cluster: int = 40, dim: int = 8, separation: float = 6.0, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Three well-separated Gaussian clusters plus labels."""
    rng = np.random.default_rng(seed)
    blocks, labels = [], []
    for c in range(3):
        center = np.zeros(dim)
        center[c % dim] = separation * (c + 1)
        blocks.append(center + rng.normal(scale=0.7, size=(per_cluster, dim)))
        labels.extend([c] * per_cluster)
    return np.vstack(blocks), np.asarray(labels, dtype=np.int64)


@pytest.fixture(scope="session")
def clustered_graph() -> KnnGraph:
    """k-NN graph over three well-separated Gaussian clusters (n=120)."""
    features, _ = three_cluster_features()
    return build_knn_graph(features, k=5)


@pytest.fixture(scope="session")
def clustered_labels() -> np.ndarray:
    """Ground-truth labels matching ``clustered_graph``."""
    _, labels = three_cluster_features()
    return labels


@pytest.fixture(scope="session")
def bridged_graph() -> KnnGraph:
    """Two clusters joined by bridge nodes — guarantees a non-empty border.

    Cluster A = nodes 0-39, cluster B = 40-79, bridges = 80-84 placed on
    the segment between the cluster centres so their k-NN edges cross.
    """
    rng = np.random.default_rng(3)
    dim = 6
    a = rng.normal(scale=0.5, size=(40, dim))
    b = rng.normal(scale=0.5, size=(40, dim)) + 4.0
    bridges = rng.normal(scale=0.3, size=(5, dim)) + 2.0
    features = np.vstack([a, b, bridges])
    return build_knn_graph(features, k=4)


@pytest.fixture(scope="session")
def small_ring_graph() -> KnnGraph:
    """A single noisy circle: the manifold case ICF handles almost exactly."""
    rng = np.random.default_rng(7)
    angles = np.linspace(0, 2 * np.pi, 60, endpoint=False)
    features = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    features = features + rng.normal(scale=0.02, size=features.shape)
    return build_knn_graph(features, k=4)
