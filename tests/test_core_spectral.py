"""Tests for the low-rank spectral tier.

Covers the numerics (:mod:`repro.linalg.spectral`), the engine wrapper
(:mod:`repro.core.spectral`) including the cheap nomination path, and
the ``.npz`` persistence + sidecar dispatch in
:mod:`repro.core.serialize`.  The load-bearing property: at full rank
the spectral scores equal the exact dense solve, so the truncation is
the *only* source of approximation anywhere in the tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import engine_from_index
from repro.core.serialize import (
    is_spectral_index_path,
    load_any_index,
    load_spectral_index,
    load_spectral_tier,
    save_index,
    save_spectral_index,
    spectral_tier_path,
)
from repro.core.spectral import (
    SpectralEngine,
    SpectralIndex,
    nominate_from_scores,
)
from repro.linalg.spectral import (
    SpectralBasis,
    project_seeds,
    spectral_decompose,
    spectral_filter,
    spectral_scores,
)
from repro.ranking.normalize import symmetric_normalize

ALPHA = 0.9


@pytest.fixture(scope="module")
def engine(clustered_graph):
    return SpectralEngine(clustered_graph, rank=40, alpha=ALPHA)


@pytest.fixture(scope="module")
def full_rank_engine(clustered_graph):
    return SpectralEngine(
        clustered_graph, rank=clustered_graph.n_nodes, alpha=ALPHA
    )


def exact_scores(graph, alpha: float, query: int) -> np.ndarray:
    s = symmetric_normalize(graph.adjacency).toarray()
    w = np.eye(graph.n_nodes) - alpha * s
    q = np.zeros(graph.n_nodes)
    q[query] = 1.0
    return (1.0 - alpha) * np.linalg.solve(w, q)


class TestNumerics:
    def test_filter_values(self):
        h = spectral_filter(np.array([1.0, 0.0, -1.0]), 0.5)
        np.testing.assert_allclose(h, [2.0, 1.0, 2.0 / 3.0])

    def test_filter_clips_lanczos_roundoff(self):
        # 1 + eps must not flip the filter's sign.
        h = spectral_filter(np.array([1.0 + 1e-12]), 0.99)
        assert h[0] == pytest.approx(1.0 / (1.0 - 0.99))

    def test_filter_rejects_bad_alpha(self):
        for alpha in (0.0, 1.0, -0.2, 2.0):
            with pytest.raises(ValueError, match="alpha"):
                spectral_filter(np.array([0.5]), alpha)

    def test_decompose_reconstructs_at_full_rank(self, clustered_graph):
        s = symmetric_normalize(clustered_graph.adjacency)
        basis = spectral_decompose(s, clustered_graph.n_nodes)
        dense = (basis.vectors * basis.values) @ basis.vectors.T
        np.testing.assert_allclose(dense, s.toarray(), atol=1e-10)

    def test_decompose_deterministic(self, clustered_graph):
        s = symmetric_normalize(clustered_graph.adjacency)
        a = spectral_decompose(s, 16)
        b = spectral_decompose(s, 16)
        np.testing.assert_array_equal(a.vectors, b.vectors)
        np.testing.assert_array_equal(a.values, b.values)

    def test_decompose_clips_rank_and_sorts_descending(self, clustered_graph):
        s = symmetric_normalize(clustered_graph.adjacency)
        basis = spectral_decompose(s, 10 * clustered_graph.n_nodes)
        assert basis.rank == clustered_graph.n_nodes
        assert np.all(np.diff(basis.values) <= 1e-12)

    def test_decompose_rejects_bad_inputs(self, clustered_graph):
        s = symmetric_normalize(clustered_graph.adjacency)
        with pytest.raises(ValueError, match="rank"):
            spectral_decompose(s, 0)
        import scipy.sparse as sp

        with pytest.raises(ValueError, match="square"):
            spectral_decompose(sp.csr_matrix(np.ones((3, 4))), 2)

    def test_full_rank_scores_match_dense_solve(self, clustered_graph):
        s = symmetric_normalize(clustered_graph.adjacency)
        basis = spectral_decompose(s, clustered_graph.n_nodes)
        for query in (0, 17, 119):
            projection = basis.vectors[query]
            approx = spectral_scores(basis, ALPHA, projection)
            np.testing.assert_allclose(
                approx, exact_scores(clustered_graph, ALPHA, query), atol=1e-10
            )

    def test_project_seeds_one_hot_is_basis_row(self, engine):
        basis = engine.index.basis
        projection = project_seeds(basis, np.array([5]), np.array([1.0]))
        np.testing.assert_array_equal(projection, basis.vectors[5])

    def test_project_seeds_weighted_sum(self, engine):
        basis = engine.index.basis
        projection = project_seeds(
            basis, np.array([2, 9]), np.array([0.25, 0.75])
        )
        expected = 0.25 * basis.vectors[2] + 0.75 * basis.vectors[9]
        np.testing.assert_allclose(projection, expected)

    def test_project_seeds_shape_mismatch(self, engine):
        with pytest.raises(ValueError, match="matching 1-D"):
            project_seeds(engine.index.basis, np.array([1, 2]), np.array([1.0]))

    def test_scores_shape_validation(self, engine):
        basis = engine.index.basis
        with pytest.raises(ValueError, match="projections"):
            spectral_scores(basis, ALPHA, np.zeros((2, 2, 2)))
        with pytest.raises(ValueError, match="rank"):
            spectral_scores(basis, ALPHA, np.zeros(basis.rank + 1))

    def test_basis_validates_shapes(self):
        with pytest.raises(ValueError, match="matrix"):
            SpectralBasis(vectors=np.zeros(4), values=np.zeros(4))
        with pytest.raises(ValueError, match="values"):
            SpectralBasis(vectors=np.zeros((4, 2)), values=np.zeros(3))


class TestNominateFromScores:
    def test_matches_full_sort(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=200)
        nominated = nominate_from_scores(scores, 25)
        expected = np.argsort(scores)[::-1][:25]
        assert set(nominated.tolist()) == set(expected.tolist())
        # Best-first within the selection.
        assert np.all(np.diff(scores[nominated]) <= 0)

    def test_exclude_drops_id_and_caps_budget(self):
        scores = np.arange(10, dtype=float)
        nominated = nominate_from_scores(scores, 10, exclude=9)
        assert 9 not in nominated
        assert nominated.size == 9
        assert nominated[0] == 8

    def test_budget_clamped_to_n(self):
        nominated = nominate_from_scores(np.arange(5, dtype=float), 50)
        np.testing.assert_array_equal(nominated, [4, 3, 2, 1, 0])

    def test_empty_budget(self):
        nominated = nominate_from_scores(np.arange(5, dtype=float), 0)
        assert nominated.size == 0
        assert nominated.dtype == np.int64

    def test_does_not_mutate_input(self):
        scores = np.arange(6, dtype=float)
        nominate_from_scores(scores, 3, exclude=5)
        np.testing.assert_array_equal(scores, np.arange(6, dtype=float))


class TestSpectralEngine:
    def test_build_profile(self, engine):
        profile = engine.index.profile
        assert profile.factor_backend == "eigsh"
        assert profile.spectral_rank == 40
        assert profile.n_nodes == engine.n_nodes
        assert profile.n_clusters == engine.index.n_clusters > 0
        assert engine.index.factorization == "spectral"
        assert engine.index.factor_nnz == engine.n_nodes * 40

    def test_top_k_excludes_query_by_default(self, engine):
        result = engine.top_k(3, 5)
        assert 3 not in result.indices
        included = engine.top_k(3, 5, exclude_query=False)
        assert included.indices[0] == 3  # self-score dominates

    def test_top_k_matches_scores(self, engine):
        full = engine.scores(7)
        result = engine.top_k(7, 4, exclude_query=False)
        np.testing.assert_allclose(result.scores, np.sort(full)[::-1][:4])

    def test_batch_matches_single(self, engine):
        # Ranking identity; scores may differ in the last ulp (GEMM vs
        # GEMV accumulation order — see the class docstring).
        queries = [0, 11, 42, 87]
        for single, batched in zip(
            [engine.top_k(query, 6) for query in queries],
            engine.top_k_batch(queries, 6),
        ):
            np.testing.assert_array_equal(single.indices, batched.indices)
            np.testing.assert_allclose(
                single.scores, batched.scores, rtol=1e-12
            )

    def test_full_rank_matches_exact(self, full_rank_engine, clustered_graph):
        for query in (4, 63):
            approx = full_rank_engine.scores(query)
            np.testing.assert_allclose(
                approx, exact_scores(clustered_graph, ALPHA, query), atol=1e-10
            )

    def test_nominate_agrees_with_top_k(self, engine):
        nominated = engine.nominate(12, 15)
        ranked = engine.top_k(12, 15)
        assert set(nominated.tolist()) == set(ranked.indices.tolist())
        assert np.all(np.diff(engine.scores(12)[nominated]) <= 0)

    def test_nominate_batch_agrees_with_single(self, engine):
        queries = [3, 50, 99]
        batched = engine.nominate_batch(queries, 20)
        assert len(batched) == len(queries)
        for query, candidates in zip(queries, batched):
            single = engine.nominate(query, 20)
            assert set(candidates.tolist()) == set(single.tolist())
            assert query not in candidates

    def test_nominate_batch_without_exclusion(self, engine):
        (candidates,) = engine.nominate_batch([8], engine.n_nodes, False)
        assert candidates.size == engine.n_nodes
        assert candidates[0] == 8

    def test_out_of_sample_single_and_batch(self, engine, clustered_graph):
        features = clustered_graph.features[[10, 70]] + 0.05
        singles = [engine.top_k_out_of_sample(f, 5) for f in features]
        batched = engine.top_k_out_of_sample_batch(features, 5)
        for single, batch in zip(singles, batched):
            np.testing.assert_array_equal(single.indices, batch.indices)
            np.testing.assert_allclose(single.scores, batch.scores, rtol=1e-12)
        assert engine.last_breakdown["overall"] > 0

    def test_stats_surface(self, engine):
        engine.top_k(1, 3)
        stats = engine.last_stats
        assert stats.nodes_scored == engine.n_nodes
        assert stats.extra["tier"] == "spectral"
        assert stats.extra["rank"] == engine.rank

    def test_from_index_validates_compatibility(self, engine, bridged_graph):
        with pytest.raises(ValueError, match="nodes"):
            SpectralEngine.from_index(bridged_graph, engine.index)


class TestPersistence:
    @pytest.fixture(scope="class")
    def saved(self, engine, tmp_path_factory):
        path = save_spectral_index(
            engine.index, tmp_path_factory.mktemp("spec") / "tier"
        )
        return path, engine.index

    def test_round_trip(self, saved):
        path, index = saved
        assert path.endswith(".npz")
        loaded = load_spectral_index(path)
        np.testing.assert_array_equal(
            loaded.basis.vectors, index.basis.vectors
        )
        np.testing.assert_array_equal(loaded.basis.values, index.basis.values)
        assert loaded.alpha == index.alpha
        np.testing.assert_array_equal(loaded.cluster_means, index.cluster_means)
        assert len(loaded.cluster_members) == len(index.cluster_members)
        for a, b in zip(loaded.cluster_members, index.cluster_members):
            np.testing.assert_array_equal(a, b)
        assert loaded.profile.spectral_rank == index.profile.spectral_rank

    def test_marker_detection(self, saved, engine, tmp_path):
        path, _ = saved
        assert is_spectral_index_path(path)
        assert not is_spectral_index_path(tmp_path / "absent.npz")

    def test_mogul_artifact_is_not_spectral(self, clustered_graph, tmp_path):
        from repro.core.index import MogulIndex

        mogul_path = str(tmp_path / "mogul.npz")
        save_index(MogulIndex.build(clustered_graph), mogul_path)
        assert not is_spectral_index_path(mogul_path)
        with pytest.raises(ValueError, match="not a spectral index"):
            load_spectral_index(mogul_path)

    def test_load_any_index_dispatch(self, saved, clustered_graph):
        path, _ = saved
        loaded = load_any_index(path)
        assert isinstance(loaded, SpectralIndex)
        served = engine_from_index(clustered_graph, loaded)
        assert isinstance(served, SpectralEngine)

    def test_sidecar_path_mapping(self, tmp_path):
        assert spectral_tier_path(str(tmp_path / "foo.npz")) == str(
            tmp_path / "foo.spectral.npz"
        )
        assert spectral_tier_path(str(tmp_path)) == str(
            tmp_path / "spectral.npz"
        )

    def test_load_spectral_tier(self, engine, tmp_path):
        artifact = str(tmp_path / "index.npz")
        assert load_spectral_tier(artifact) is None
        save_spectral_index(engine.index, spectral_tier_path(artifact))
        tier = load_spectral_tier(artifact)
        assert tier is not None and tier.rank == engine.rank

    def test_rejects_non_archive(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"not a zip at all")
        with pytest.raises(ValueError, match="not a spectral index"):
            load_spectral_index(bogus)
