"""Property tests: parallel execution is bitwise identical to sequential.

Two independent parallelism dials exist and both are execution
strategies, never semantics:

* ``query_jobs`` — shard scans inside one sharded solve run on a thread
  pool; answers and stats are bitwise identical at any setting.
* ``query_workers`` — the scheduler solves dispatched batches on a pool
  of worker threads; every served answer is bitwise identical to the
  single-worker (and direct ``top_k``) answer, on every engine kind.

The LiveEngine case additionally exercises mutations with a rebuild in
flight: every answer served concurrently with the epoch swap must be
bitwise identical to one of the two valid linearizations (the
pre-rebuild engine or the post-rebuild engine) — never a torn mix.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.clustering.louvain import louvain
from repro.core.engine import engine_from_index
from repro.core.index import MogulIndex, MogulRanker
from repro.core.live import LiveEngine
from repro.core.sharded import ShardedMogulIndex, ShardedMogulRanker
from repro.core.spectral import SpectralEngine, SpectralIndex
from repro.core.tiered import TieredEngine
from repro.graph.build import build_knn_graph
from repro.service.scheduler import MicroBatchScheduler

pytestmark = pytest.mark.timeout(120)

WORKER_COUNTS = (1, 2, 4)
JOB_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def graph():
    rng = np.random.default_rng(11)
    a = rng.normal(scale=0.6, size=(50, 8))
    b = rng.normal(scale=0.6, size=(50, 8)) + 4.0
    c = rng.normal(scale=0.6, size=(50, 8)) - 4.0
    return build_knn_graph(np.vstack([a, b, c]), k=5)


@pytest.fixture(scope="module")
def sharded_index(graph):
    return ShardedMogulIndex.build(graph, 3)


def _assert_bitwise(a, b):
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.scores, b.scores)


def _stat_key(stats):
    return (
        stats.clusters_pruned,
        stats.clusters_scored,
        stats.nodes_scored,
        stats.bound_evaluations,
    )


class TestQueryJobsIdentity:
    """Shard-parallel scatter-gather == serial, answers *and* stats."""

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_all_entry_points_identical(self, graph, sharded_index, jobs):
        serial = ShardedMogulRanker.from_index(graph, sharded_index, query_jobs=1)
        parallel = ShardedMogulRanker.from_index(
            graph, sharded_index, query_jobs=jobs
        )
        for query in range(0, graph.n_nodes, 13):
            _assert_bitwise(serial.top_k(query, 10), parallel.top_k(query, 10))
            assert _stat_key(serial.last_stats) == _stat_key(parallel.last_stats)
        batch = np.arange(0, graph.n_nodes, 7, dtype=np.int64)
        for a, b in zip(serial.top_k_batch(batch, 10), parallel.top_k_batch(batch, 10)):
            _assert_bitwise(a, b)
        for sa, sb in zip(
            serial.last_batch_stats.per_query, parallel.last_batch_stats.per_query
        ):
            assert _stat_key(sa) == _stat_key(sb)
        feature = graph.features[17] + 0.01
        _assert_bitwise(
            serial.top_k_out_of_sample(feature, 10),
            parallel.top_k_out_of_sample(feature, 10),
        )
        features = graph.features[[3, 80, 130]] + 0.02
        for a, b in zip(
            serial.top_k_out_of_sample_batch(features, 10),
            parallel.top_k_out_of_sample_batch(features, 10),
        ):
            _assert_bitwise(a, b)

    def test_factory_accepts_query_jobs_for_any_artifact(self, graph):
        """``query_jobs`` never requires knowing the artifact kind."""
        flat = engine_from_index(graph, MogulIndex.build(graph), query_jobs=4)
        assert isinstance(flat, MogulRanker)  # accepted, no-op
        labels = louvain(graph.adjacency)
        spectral = engine_from_index(
            graph,
            SpectralIndex.build(graph, rank=8, cluster_labels=labels),
            query_jobs=4,
        )
        assert isinstance(spectral, SpectralEngine)
        sharded = engine_from_index(
            graph, ShardedMogulIndex.build(graph, 2), query_jobs=4
        )
        assert sharded.query_jobs == 4


def _serve_burst(engine, query_workers, requests, mutate=None):
    """Answer ``requests`` through a scheduler with ``query_workers``.

    ``mutate``, when given, is awaited concurrently with the burst (the
    LiveEngine mid-rebuild case).
    """

    async def main():
        async with MicroBatchScheduler(
            engine,
            max_batch_size=4,
            max_wait_ms=0.0,
            query_workers=query_workers,
        ) as scheduler:
            tasks = [scheduler.search(node, k) for node, k in requests]
            if mutate is not None:
                tasks.append(mutate(scheduler))
            answered = await asyncio.gather(*tasks)
            if mutate is not None:
                answered = answered[:-1]
            return [scheduled.result for scheduled in answered]

    return asyncio.run(main())


def _engines(graph, sharded_index):
    labels = louvain(graph.adjacency)
    flat = MogulRanker.from_index(
        graph, MogulIndex.build(graph, cluster_labels=labels)
    )
    sharded = ShardedMogulRanker.from_index(graph, sharded_index, query_jobs=2)
    tiered = TieredEngine(
        flat,
        SpectralEngine.from_index(
            graph, SpectralIndex.build(graph, rank=8, cluster_labels=labels)
        ),
    )
    live = LiveEngine(
        np.asarray(graph.features, dtype=np.float64),
        auto_rebuild_fraction=None,
        n_shards=2,
    )
    return {"flat": flat, "sharded": sharded, "tiered": tiered, "live": live}


class TestQueryWorkersIdentity:
    """Served answers are identical at any worker-pool size."""

    @pytest.fixture(scope="class")
    def engines(self, graph, sharded_index):
        return _engines(graph, sharded_index)

    @pytest.mark.parametrize("kind", ["flat", "sharded", "tiered", "live"])
    def test_workers_identical_to_sequential(self, engines, kind):
        engine = engines[kind]
        requests = [(node, 10) for node in range(0, engine.n_nodes, 6)]
        baseline = _serve_burst(engine, 1, requests)
        direct = [engine.top_k(node, k) for node, k in requests]
        for served, expected in zip(baseline, direct):
            _assert_bitwise(served, expected)
        for workers in WORKER_COUNTS[1:]:
            for served, expected in zip(
                _serve_burst(engine, workers, requests), baseline
            ):
                _assert_bitwise(served, expected)


class TestWorkerGauges:
    """Satellite: the pool's gauges ride /metrics (both views) and /stats."""

    def test_gauges_exposed_end_to_end(self, graph):
        from repro.service.client import RetrievalClient
        from repro.service.server import BackgroundServer

        engine = MogulRanker.from_index(graph, MogulIndex.build(graph))
        with BackgroundServer(
            engine, port=0, max_wait_ms=0.0, query_workers=3
        ) as server:
            with RetrievalClient(port=server.port) as client:
                for node in range(8):
                    client.search(node, k=5)
                metrics = client.metrics()
                assert metrics["query_workers"] == 3
                assert 0 <= metrics["workers_busy"] <= 3
                assert metrics["engine_wait_seconds"] >= 0.0
                _, _, text = client._raw("GET", "/metrics?format=prometheus")
                assert "repro_query_workers 3" in text
                assert "repro_workers_busy" in text
                assert "repro_engine_wait_seconds_total" in text
                scheduler = client.stats()["scheduler"]
                assert scheduler["query_workers"] == 3
                assert "workers_busy" in scheduler
                assert scheduler["engine_wait_seconds"] >= 0.0
                # The engine.dispatch span now names its worker.
                payload = client.search(9, k=5, debug_trace=True)

        def find(tree, name):
            found = [tree] if tree["name"] == name else []
            for child in tree.get("children", ()):
                found.extend(find(child, name))
            return found

        dispatches = find(payload["trace"]["root"], "engine.dispatch")
        assert dispatches and "worker_id" in dispatches[0]["meta"]

    def test_scheduler_validates_query_workers(self, graph):
        engine = MogulRanker.from_index(graph, MogulIndex.build(graph))
        with pytest.raises(ValueError, match="query_workers"):
            MicroBatchScheduler(engine, query_workers=0)


class TestLiveMidRebuild:
    def test_concurrent_answers_match_a_valid_epoch(self, graph):
        """Answers racing an epoch swap come from exactly one epoch."""
        features = np.asarray(graph.features, dtype=np.float64)
        live = LiveEngine(features, auto_rebuild_fraction=None, n_shards=2)
        rng = np.random.default_rng(23)
        for i in range(8):
            live.add(rng.normal(scale=0.6, size=features.shape[1]))
        live.remove(3)
        queries = [0, 20, 51, 90, 140]
        before = {q: live.top_k(q, 10) for q in queries}

        async def mutate(scheduler):
            ticket = await scheduler.trigger_rebuild(wait=True)
            assert ticket.error is None

        requests = [(q, 10) for q in queries for _ in range(4)]
        served = _serve_burst(live, 4, requests, mutate=mutate)
        assert live.epoch == 1
        after = {q: live.top_k(q, 10) for q in queries}

        for (query, _k), result in zip(requests, served):
            matches_before = np.array_equal(
                result.indices, before[query].indices
            ) and np.array_equal(result.scores, before[query].scores)
            matches_after = np.array_equal(
                result.indices, after[query].indices
            ) and np.array_equal(result.scores, after[query].scores)
            assert matches_before or matches_after, query

        # And post-swap serving at 4 workers still equals direct calls.
        for result, (query, _k) in zip(
            _serve_burst(live, 4, requests), requests
        ):
            _assert_bitwise(result, after[query])
