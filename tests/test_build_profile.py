"""BuildProfile: per-stage accounting, persistence, and surfacing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.index import MogulIndex, MogulRanker
from repro.core.profile import BuildProfile
from repro.core.serialize import load_index, save_index

EXPECTED_STAGES = (
    "clustering",
    "permutation",
    "ranking_matrix",
    "factorization",
    "bounds",
    "solver",
    "cluster_means",
)


@pytest.fixture(scope="module")
def built(bridged_graph):
    return MogulIndex.build(bridged_graph, jobs=2)


class TestBuildRecordsProfile:
    def test_all_stages_recorded(self, built):
        profile = built.profile
        assert profile is not None
        assert tuple(profile.stages) == EXPECTED_STAGES
        assert all(seconds >= 0.0 for seconds in profile.stages.values())
        assert profile.total_seconds == pytest.approx(
            sum(profile.stages.values())
        )

    def test_statistics_match_index(self, built):
        profile = built.profile
        assert profile.n_nodes == built.n_nodes
        assert profile.n_clusters == built.n_clusters
        border = built.permutation.border_slice
        assert profile.border_size == border.stop - border.start
        assert profile.factor_nnz == built.factors.nnz
        assert profile.jobs == 2
        assert profile.factor_backend == "csr"
        # The paper's ICF keeps exactly W's strict-lower pattern.
        assert profile.fill_ratio == pytest.approx(1.0)
        assert profile.load_seconds is None

    def test_precomputed_labels_skip_clustering_stage(self, bridged_graph):
        labels = np.zeros(bridged_graph.n_nodes, dtype=np.int64)
        labels[bridged_graph.n_nodes // 2 :] = 1
        index = MogulIndex.build(bridged_graph, cluster_labels=labels)
        assert "clustering" not in index.profile.stages
        assert "factorization" in index.profile.stages

    def test_complete_factorization_reports_fill(self, bridged_graph):
        index = MogulIndex.build(bridged_graph, factorization="complete")
        assert index.profile.fill_ratio >= 1.0
        assert index.profile.factor_nnz == index.factors.nnz


class TestProfileRoundtrip:
    def test_json_roundtrip(self, built):
        restored = BuildProfile.from_json(built.profile.to_json())
        assert restored.stages == built.profile.stages
        assert restored.factor_backend == built.profile.factor_backend
        assert restored.jobs == built.profile.jobs
        assert restored.factor_nnz == built.profile.factor_nnz

    def test_to_text_lists_stages(self, built):
        text = built.profile.to_text()
        for stage in EXPECTED_STAGES:
            assert stage in text
        assert "backend=csr" in text

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError):
            BuildProfile.from_json("[1, 2, 3]")


class TestPersistence:
    def test_saved_and_loaded_with_load_seconds(self, built, tmp_path):
        path = tmp_path / "profiled.idx.npz"
        save_index(built, path)
        loaded = load_index(path)
        assert loaded.profile is not None
        assert loaded.profile.stages == built.profile.stages
        assert loaded.profile.load_seconds is not None
        assert loaded.profile.load_seconds > 0.0

    def test_compressed_roundtrip_keeps_profile(self, built, tmp_path):
        path = tmp_path / "compressed.idx.npz"
        save_index(built, path, compressed=True)
        loaded = load_index(path)
        assert loaded.profile.stages == built.profile.stages

    def test_profileless_file_still_loads(self, built, tmp_path):
        # Simulate an index written before profiles existed.
        path = tmp_path / "legacy.idx.npz"
        bare = MogulIndex(
            permutation=built.permutation,
            factors=built.factors,
            bounds=built.bounds,
            cluster_means=built.cluster_means,
            cluster_members=built.cluster_members,
            alpha=built.alpha,
            factorization=built.factorization,
            solver=built.solver,
            bounds_table=built.bounds_table,
        )
        save_index(bare, path)
        loaded = load_index(path)
        assert loaded.profile is not None  # synthesised at load time
        assert loaded.profile.load_seconds is not None
        assert loaded.profile.stages == {}

    def test_loaded_index_answers_match(self, built, bridged_graph, tmp_path):
        path = tmp_path / "answers.idx.npz"
        save_index(built, path)
        loaded = load_index(path)
        ranker = MogulRanker.from_index(bridged_graph, built)
        loaded_ranker = MogulRanker.from_index(bridged_graph, loaded)
        for query in (0, 40, 80):
            expected = ranker.top_k(query, 10)
            actual = loaded_ranker.top_k(query, 10)
            assert np.array_equal(expected.indices, actual.indices)
            assert np.array_equal(expected.scores, actual.scores)


class TestCriticalPath:
    def test_serial_decomposition(self):
        from repro.core.profile import BuildProfile

        profile = BuildProfile(
            stages={"shared": 1.0, "factorization": 4.0},
            shard_seconds=[1.0, 1.0, 1.0, 1.0],
        )
        assert profile.critical_path_seconds == pytest.approx(2.0)

    def test_process_mode_returns_wall_clock(self):
        from repro.core.profile import BuildProfile

        # A process build already overlapped the shards: its stage total
        # is the realized wall-clock, and per-worker times (possibly
        # inflated by core time-sharing) must not be subtracted from it.
        profile = BuildProfile(
            stages={"factorization": 2.0},
            shard_seconds=[1.8, 1.9, 1.8, 1.9],
            shard_parallel_mode="process",
        )
        assert profile.critical_path_seconds == pytest.approx(2.0)

    def test_unsharded_equals_total(self):
        from repro.core.profile import BuildProfile

        profile = BuildProfile(stages={"a": 1.0, "b": 2.0})
        assert profile.critical_path_seconds == pytest.approx(3.0)
