"""Tests for the EMR and FMR approximation baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import EMRRanker, FMRRanker
from repro.baselines.emr import epanechnikov, _anchor_weights
from repro.clustering import kmeans
from repro.eval.metrics import p_at_k, rank_correlation
from repro.ranking import ExactRanker
from tests.conftest import graph_from_adjacency, random_symmetric_adjacency


class TestEpanechnikov:
    def test_shape_and_support(self):
        t = np.array([-2.0, -1.0, 0.0, 0.5, 1.0, 2.0])
        k = epanechnikov(t)
        assert k[0] == 0.0 and k[-1] == 0.0
        assert k[2] == pytest.approx(0.75)
        assert k[3] == pytest.approx(0.75 * (1 - 0.25))
        assert np.all(k >= 0)

    def test_symmetry(self):
        t = np.linspace(-1, 1, 21)
        np.testing.assert_allclose(epanechnikov(t), epanechnikov(-t))


class TestAnchorWeights:
    def test_columns_sum_to_one(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(40, 5))
        anchors = kmeans(features, 8, seed=1).centroids
        z = _anchor_weights(features, anchors, s=3)
        assert z.shape == (8, 40)
        np.testing.assert_allclose(np.asarray(z.sum(axis=0)).ravel(), 1.0, atol=1e-12)

    def test_sparsity(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(30, 4))
        anchors = kmeans(features, 10, seed=2).centroids
        z = _anchor_weights(features, anchors, s=3)
        per_column = np.diff(z.tocsc().indptr)
        assert np.all(per_column <= 3)

    def test_point_on_anchor(self):
        """A point coinciding with an anchor weights that anchor most."""
        anchors = np.array([[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]])
        z = _anchor_weights(anchors[:1], anchors, s=2).toarray()
        assert z[0, 0] == np.max(z[:, 0])

    def test_weights_nonnegative(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(25, 3))
        anchors = kmeans(features, 5, seed=3).centroids
        z = _anchor_weights(features, anchors, s=2)
        assert np.all(z.data >= 0)


class TestEMRRanker:
    def test_many_anchors_approach_exact_ranking(self, clustered_graph):
        """With anchors ~ data points the anchor graph gets expressive and
        EMR's ranking correlates strongly with the exact one — the rising
        curve of Figure 2."""
        exact = ExactRanker(clustered_graph)
        few = EMRRanker(clustered_graph, n_anchors=5, seed=0)
        many = EMRRanker(clustered_graph, n_anchors=60, seed=0)
        q = 3
        ref = exact.top_k(q, 10).indices
        p_few = p_at_k(few.top_k(q, 10).indices, ref)
        p_many = p_at_k(many.top_k(q, 10).indices, ref)
        corr_many = rank_correlation(many.scores(q), exact.scores(q))
        assert p_many >= p_few
        assert corr_many > 0.5

    def test_scores_shape_and_query_peak(self, clustered_graph):
        emr = EMRRanker(clustered_graph, n_anchors=20, seed=0)
        scores = emr.scores(7)
        assert scores.shape == (clustered_graph.n_nodes,)
        assert np.argmax(scores) == 7

    def test_same_cluster_scores_dominate(self, clustered_graph, clustered_labels):
        emr = EMRRanker(clustered_graph, n_anchors=30, seed=0)
        result = emr.top_k(0, 10)
        same = clustered_labels[result.indices] == clustered_labels[0]
        assert same.mean() >= 0.8

    def test_validation(self, clustered_graph):
        with pytest.raises(ValueError, match="n_anchors"):
            EMRRanker(clustered_graph, n_anchors=clustered_graph.n_nodes + 1)

    def test_out_of_sample_close_to_in_sample(self, clustered_graph):
        """Querying with the feature vector of a database point must give
        nearly the answer set of the in-sample query."""
        emr = EMRRanker(clustered_graph, n_anchors=30, seed=0)
        node = 11
        in_sample = emr.top_k(node, 8).indices
        oos = emr.top_k_out_of_sample(clustered_graph.features[node], 8).indices
        overlap = p_at_k(np.setdiff1d(oos, [node]), in_sample)
        assert overlap >= 0.6

    def test_out_of_sample_validation(self, clustered_graph):
        emr = EMRRanker(clustered_graph, n_anchors=10, seed=0)
        with pytest.raises(ValueError, match="feature"):
            emr.top_k_out_of_sample(np.zeros(3), 5)

    def test_deterministic_under_seed(self, clustered_graph):
        a = EMRRanker(clustered_graph, n_anchors=15, seed=5)
        b = EMRRanker(clustered_graph, n_anchors=15, seed=5)
        np.testing.assert_allclose(a.scores(2), b.scores(2), atol=1e-12)


class TestFMRRanker:
    def test_block_solve_correct_without_residual(self):
        """On a graph with no cross-partition edges FMR is exact."""
        from tests.conftest import three_cluster_features
        from repro.graph import build_knn_graph

        features, _ = three_cluster_features(per_cluster=20, separation=50.0)
        graph = build_knn_graph(features, k=4)
        fmr = FMRRanker(graph, n_partitions=3, seed=0)
        exact = ExactRanker(graph)
        np.testing.assert_allclose(fmr.scores(5), exact.scores(5), atol=1e-8)

    def test_close_to_exact_on_clustered_graph(self, clustered_graph):
        fmr = FMRRanker(clustered_graph, n_partitions=3, rank=30, seed=0)
        exact = ExactRanker(clustered_graph)
        q = 2
        corr = rank_correlation(fmr.scores(q), exact.scores(q))
        assert corr > 0.9

    def test_rank_zero_residual_handled(self):
        graph = graph_from_adjacency(random_symmetric_adjacency(20, seed=1))
        fmr = FMRRanker(graph, n_partitions=1, seed=0)
        exact = ExactRanker(graph)
        # one partition = no residual = exact
        np.testing.assert_allclose(fmr.scores(3), exact.scores(3), atol=1e-8)

    def test_validation(self, clustered_graph):
        with pytest.raises(ValueError, match="n_partitions"):
            FMRRanker(clustered_graph, n_partitions=clustered_graph.n_nodes + 1)

    def test_higher_rank_not_worse(self, clustered_graph):
        exact = ExactRanker(clustered_graph)
        q = 9
        ref = exact.scores(q)
        low = FMRRanker(clustered_graph, n_partitions=5, rank=2, seed=0)
        high = FMRRanker(clustered_graph, n_partitions=5, rank=40, seed=0)
        err_low = np.linalg.norm(low.scores(q) - ref)
        err_high = np.linalg.norm(high.scores(q) - ref)
        assert err_high <= err_low + 1e-9

    def test_default_rank_heuristic(self):
        from repro.baselines.fmr import default_rank

        assert default_rank(10_000) == 250
        assert default_rank(100) == 12
        assert default_rank(8) == 2


class TestBatchedBaselines:
    """Batched top_k must equal the sequential loop for EMR and FMR."""

    @pytest.fixture(scope="class")
    def emr(self, clustered_graph):
        return EMRRanker(clustered_graph, n_anchors=12, seed=3)

    @pytest.fixture(scope="class")
    def fmr(self, clustered_graph):
        return FMRRanker(clustered_graph, n_partitions=4, seed=3)

    @pytest.mark.parametrize("name", ["emr", "fmr"])
    def test_batch_matches_sequential(self, name, request):
        ranker = request.getfixturevalue(name)
        queries = np.asarray([0, 17, 45, 83, 110])
        batched = ranker.top_k_batch(queries, 6)
        for query, result in zip(queries, batched):
            reference = ranker.top_k(int(query), 6)
            np.testing.assert_array_equal(result.indices, reference.indices)
            np.testing.assert_allclose(result.scores, reference.scores, atol=1e-10)

    @pytest.mark.parametrize("name", ["emr", "fmr"])
    def test_batch_include_query(self, name, request):
        ranker = request.getfixturevalue(name)
        queries = np.asarray([5, 9])
        batched = ranker.top_k_batch(queries, 4, exclude_query=False)
        for query, result in zip(queries, batched):
            reference = ranker.top_k(int(query), 4, exclude_query=False)
            np.testing.assert_array_equal(result.indices, reference.indices)

    @pytest.mark.parametrize("name", ["emr", "fmr"])
    def test_batch_validation(self, name, request):
        ranker = request.getfixturevalue(name)
        assert ranker.top_k_batch(np.asarray([], dtype=np.int64), 3) == []
        with pytest.raises(ValueError, match="out of range"):
            ranker.top_k_batch(np.asarray([ranker.n_nodes]), 3)
