"""Relevance feedback: refine retrieval with multi-seed Manifold Ranking.

Run with::

    python examples/relevance_feedback.py

Retrieval systems rarely stop at one query: the user marks a few returned
images as relevant and the engine re-ranks.  With Manifold Ranking this is
the generalized multi-seed query of He et al. [7] — the marked images all
receive query mass — and with Mogul it reuses the same precomputed index,
so each feedback round costs one bound-pruned search
(:meth:`repro.MogulRanker.top_k_multi`).

The demo simulates a user on the COIL substitute: start from one image of
an object, mark the returned images of the same object as relevant, repeat.
Precision@10 typically climbs within two rounds because the growing seed
set pins down the object's pose manifold.
"""

from __future__ import annotations

import numpy as np

from repro import MogulRanker
from repro.datasets import make_coil
from repro.eval import retrieval_precision

ROUNDS = 3
K = 10


def main() -> None:
    dataset = make_coil(n_objects=12, n_poses=72, seed=4)
    graph = dataset.build_graph(k=5)
    ranker = MogulRanker(graph, alpha=0.99)
    labels = dataset.labels
    print(
        f"database: {dataset.n_points} images of {dataset.n_classes} objects; "
        f"index has {ranker.index.n_clusters} clusters"
    )

    rng = np.random.default_rng(11)
    for trial in range(3):
        query = int(rng.integers(dataset.n_points))
        target = labels[query]
        seeds = [query]
        print(f"\nquery image {query} (object {target}):")
        for round_number in range(1, ROUNDS + 1):
            result = ranker.top_k_multi(np.asarray(seeds), K)
            precision = retrieval_precision(result.indices, labels, target)
            print(
                f"  round {round_number}: seeds={len(seeds):2d} "
                f"P@{K}={precision:.2f} answers={result.indices[:6]}..."
            )
            # The simulated user marks correct answers as relevant.
            confirmed = [
                int(i) for i in result.indices if labels[i] == target
            ]
            new_seeds = [i for i in confirmed if i not in seeds]
            if not new_seeds:
                print("  no new relevant results to mark; stopping early")
                break
            seeds.extend(new_seeds[:4])  # users mark a handful, not all


if __name__ == "__main__":
    main()
