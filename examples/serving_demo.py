"""Serving demo: a live retrieval service with micro-batched queries.

Run with::

    python examples/serving_demo.py

Builds a small synthetic database, starts the asyncio HTTP server on a
free port (in a background thread — exactly what ``python -m repro
serve`` runs in the foreground), drives it with concurrent closed-loop
clients, and prints the p95 latency plus the scheduler's coalescing
rate.  One response is checked against a direct ``top_k`` call to show
that serving is purely an execution layer: same answers, shared solves.

The same workflow from the shell::

    python -m repro build --dataset coil --out coil.idx.npz
    python -m repro serve coil.idx.npz --dataset coil --port 8080 &
    python -m repro loadtest --port 8080 --concurrency 32 --requests 512
"""

from __future__ import annotations

import numpy as np

from repro import MogulRanker, build_knn_graph
from repro.service import BackgroundServer, RetrievalClient, run_load_test


def main() -> None:
    # A toy database: three separated Gaussian classes in 16-D.
    rng = np.random.default_rng(4)
    features = np.vstack(
        [rng.normal(scale=0.6, size=(120, 16)) + 4.0 * c for c in range(3)]
    )
    graph = build_knn_graph(features, k=5)
    ranker = MogulRanker(graph)

    with BackgroundServer(
        ranker, port=0, max_batch_size=32, max_wait_ms=2.0
    ) as background:
        print(f"serving {ranker.n_nodes} nodes on port {background.port}")

        # One interactive query, checked against the library answer.
        with RetrievalClient(port=background.port) as client:
            payload = client.search(0, k=5)
            direct = ranker.top_k(0, 5)
            assert payload["indices"] == [int(node) for node in direct.indices]
            print(
                f"query 0 -> {payload['indices']} "
                f"(batch size {payload['batch_size']}, "
                f"{payload['latency_ms']:.2f} ms) — matches direct top_k"
            )

        # Concurrent load: 16 closed-loop workers, 400 requests total.
        report = run_load_test(
            port=background.port,
            concurrency=16,
            total_requests=400,
            k=10,
            check_against=ranker.top_k,
        )
        print()
        print(report.to_text())
        assert report.ok, "load test saw errors or empty responses"
        p95 = report.latency.summary()["p95_ms"]
        mean_batch = report.server_metrics.get("mean_batch_size", 0.0)
        print()
        print(
            f"p95 latency {p95:.2f} ms at {report.throughput_rps:.0f} req/s; "
            f"the scheduler coalesced {mean_batch:.1f} queries per solve"
        )


if __name__ == "__main__":
    main()
