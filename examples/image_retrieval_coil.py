"""Image retrieval on the COIL-100 substitute — the paper's case study.

Run with::

    python examples/image_retrieval_coil.py

Reproduces the Figure 9 situation: objects whose pose manifolds pass near
each other (the "orange truck vs tomato" problem).  For queries at those
collision viewpoints, plain k-NN neighbours cross to the wrong object,
while Manifold Ranking — and Mogul, its scalable implementation — stays on
the query's manifold.
"""

from __future__ import annotations

import numpy as np

from repro import EMRRanker, MogulRanker
from repro.datasets import make_coil
from repro.eval import retrieval_precision


def main() -> None:
    dataset = make_coil(n_objects=20, n_poses=72, confusable_fraction=0.4, seed=0)
    graph = dataset.build_graph(k=5)
    labels = dataset.labels
    print(
        f"COIL substitute: {dataset.n_points} images of {dataset.n_classes} objects "
        f"({dataset.metadata['confusable_pairs']} confusable pairs)"
    )

    mogul = MogulRanker(graph, alpha=0.99)
    emr = EMRRanker(graph, alpha=0.99, n_anchors=100)

    # case-study queries: poses whose direct neighbours cross objects
    collisions = [
        node
        for node in range(graph.n_nodes)
        if np.any(labels[graph.neighbors(node)] != labels[node])
    ]
    rng = np.random.default_rng(1)
    queries = rng.choice(collisions, size=min(6, len(collisions)), replace=False)
    print(f"{len(collisions)} collision poses; showing {len(queries)} case studies\n")

    header = f"{'query':>6} {'class':>5}  {'connected':>18} {'Mogul':>18} {'EMR':>18}"
    print(header)
    print("-" * len(header))
    totals = {"connected": [], "mogul": [], "emr": []}
    for q in queries:
        q = int(q)
        label = int(labels[q])
        connected = graph.neighbors(q)[:5]
        mogul_answers = mogul.top_k(q, 5).indices
        emr_answers = emr.top_k(q, 5).indices

        def classes(ids: np.ndarray) -> str:
            return ",".join(f"{labels[i]}" for i in ids)

        print(
            f"{q:>6} {label:>5}  {classes(connected):>18} "
            f"{classes(mogul_answers):>18} {classes(emr_answers):>18}"
        )
        totals["connected"].append(retrieval_precision(connected, labels, label))
        totals["mogul"].append(retrieval_precision(mogul_answers, labels, label))
        totals["emr"].append(retrieval_precision(emr_answers, labels, label))

    print("\nmean retrieval precision on collision queries:")
    for name, values in totals.items():
        print(f"  {name:>10}: {np.mean(values):.2f}")
    print(
        "\nexpected shape (paper Fig. 9): Mogul above connected/k-NN — Manifold "
        "Ranking resolves the semantic gap where raw feature proximity fails."
    )


if __name__ == "__main__":
    main()
