"""Quickstart: index a feature collection and run top-k Manifold Ranking.

Run with::

    python examples/quickstart.py

Builds a small clustered feature set, constructs the paper-standard k-NN
graph (k=5, heat-kernel weights), precomputes the Mogul index, and answers
a few top-k queries — comparing against the exact inverse-matrix scores to
show what the approximation does.
"""

from __future__ import annotations

import numpy as np

from repro import ExactRanker, MogulRanker, build_knn_graph
from repro.eval import p_at_k


def main() -> None:
    rng = np.random.default_rng(0)

    # A toy "image database": 5 items-on-a-manifold classes in 32-D —
    # each class is a noisy closed curve, the structure Manifold Ranking
    # (and its Incomplete Cholesky approximation) is designed around.
    angles = np.linspace(0, 2 * np.pi, 80, endpoint=False)
    blocks = []
    for _ in range(5):
        plane, _ = np.linalg.qr(rng.normal(size=(32, 2)))
        center = rng.normal(size=32) * 3.0 / np.sqrt(32)
        ring = np.stack([np.cos(angles), np.sin(angles)], axis=1) @ plane.T
        blocks.append(center + ring + rng.normal(scale=0.04, size=(80, 32)))
    features = np.vstack(blocks)
    print(f"database: {features.shape[0]} items, {features.shape[1]}-D features")

    # 1. the k-NN graph (paper section 3)
    graph = build_knn_graph(features, k=5)
    print(f"graph: {graph.n_edges} edges, heat-kernel sigma={graph.sigma:.3f}")

    # 2. the Mogul index: Algorithm 1 + Incomplete Cholesky + bounds
    ranker = MogulRanker(graph, alpha=0.99)
    index = ranker.index
    print(
        f"index: {index.n_clusters} clusters, factor nnz={index.factors.nnz} "
        f"(vs {graph.n_nodes}^2={graph.n_nodes**2} dense)"
    )

    # 3. queries (Algorithm 2)
    exact = ExactRanker(graph, alpha=0.99)
    for query in (0, 123, 321):
        result = ranker.top_k(query, k=10)
        reference = exact.top_k(query, k=10)
        stats = ranker.last_stats
        print(
            f"query {query:4d}: top-10 = {result.indices[:5]}..., "
            f"P@10 vs exact = {p_at_k(result.indices, reference.indices):.2f}, "
            f"pruned {stats.clusters_pruned}/{stats.clusters_total} clusters"
        )

    # 4. batched queries: the same answers as a top_k loop, produced by
    # one shared engine pass (multi-RHS substitutions + one bound SpMM
    # for the whole batch) — the serving-path API.
    batch_queries = [0, 123, 321, 200]
    batch = ranker.top_k_batch(batch_queries, k=10)
    totals = ranker.last_batch_stats.totals
    assert all(
        (batch[i].indices == ranker.top_k(q, k=10).indices).all()
        for i, q in enumerate(batch_queries)
    )
    print(
        f"batch of {len(batch_queries)} queries: identical answers, "
        f"pruned {totals.clusters_pruned}/"
        f"{totals.clusters_pruned + totals.clusters_scored} eligible clusters"
    )

    # 5. an out-of-sample query: a vector that is not in the database
    # (top_k_out_of_sample_batch answers many such features at once)
    new_item = features[42] + rng.normal(scale=0.05, size=32)
    oos = ranker.top_k_out_of_sample(new_item, k=5)
    print(f"out-of-sample query -> {oos.indices} (expected to include 42's region)")


if __name__ == "__main__":
    main()
