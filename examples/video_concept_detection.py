"""Video concept detection with Manifold Ranking (paper section 1.1, [23]).

Run with::

    python examples/video_concept_detection.py

Yuan et al. [23] rank video shots against a concept by propagating a few
labelled example shots over the shot-similarity graph — exactly the
multi-seed Manifold Ranking workload.  This demo simulates a video corpus
where each *shot* is a short smooth trajectory in visual-feature space
(consecutive frames barely differ) and each *concept* groups many shots.
Given a handful of labelled shots per concept, every remaining frame is
scored against each concept with :meth:`repro.MogulRanker.scores_for_vector`
and assigned to the argmax — semi-supervised detection on top of the same
Mogul index used for retrieval.
"""

from __future__ import annotations

import numpy as np

from repro import MogulRanker, build_knn_graph

CONCEPTS = ("beach", "crowd", "night-drive", "kitchen")
SHOTS_PER_CONCEPT = 12
FRAMES_PER_SHOT = 25
DIM = 48
LABELED_SHOTS = 2  # labelled example shots per concept


def synthetic_corpus(seed: int = 0):
    """Frames along per-shot trajectories; shots cluster by concept."""
    rng = np.random.default_rng(seed)
    features, concept_of_frame, shot_of_frame = [], [], []
    shot_id = 0
    for c in range(len(CONCEPTS)):
        concept_center = rng.normal(size=DIM) * 6.0 / np.sqrt(DIM)
        for _ in range(SHOTS_PER_CONCEPT):
            # Shots of one concept start close together and wander through
            # the concept's region, so trajectories interleave — the k-NN
            # graph connects shots of a concept while concepts stay apart.
            start = concept_center + rng.normal(size=DIM) * 0.5 / np.sqrt(DIM)
            direction = rng.normal(size=DIM)
            direction /= np.linalg.norm(direction)
            steps = np.linspace(0.0, 1.0, FRAMES_PER_SHOT)
            frames = start + np.outer(steps, direction)
            frames += rng.normal(scale=0.1, size=frames.shape)
            features.append(frames)
            concept_of_frame.extend([c] * FRAMES_PER_SHOT)
            shot_of_frame.extend([shot_id] * FRAMES_PER_SHOT)
            shot_id += 1
    return (
        np.vstack(features),
        np.asarray(concept_of_frame),
        np.asarray(shot_of_frame),
    )


def main() -> None:
    features, concepts, shots = synthetic_corpus()
    n = features.shape[0]
    print(
        f"corpus: {n} frames, {shots.max() + 1} shots, "
        f"{len(CONCEPTS)} concepts"
    )

    graph = build_knn_graph(features, k=5)
    ranker = MogulRanker(graph, alpha=0.99)

    # Label the first LABELED_SHOTS shots of each concept.
    rng = np.random.default_rng(3)
    labeled_frames: dict[int, np.ndarray] = {}
    for c in range(len(CONCEPTS)):
        concept_shots = np.unique(shots[concepts == c])
        chosen = rng.choice(concept_shots, size=LABELED_SHOTS, replace=False)
        labeled_frames[c] = np.flatnonzero(np.isin(shots, chosen))
    all_labeled = np.concatenate(list(labeled_frames.values()))
    print(
        f"labelled {all_labeled.size} frames "
        f"({LABELED_SHOTS} shots per concept); detecting the rest"
    )

    # One multi-seed score vector per concept, argmax assignment.
    score_matrix = np.empty((len(CONCEPTS), n))
    for c, frames in labeled_frames.items():
        q = np.zeros(n)
        q[frames] = 1.0 / frames.size
        score_matrix[c] = ranker.scores_for_vector(q)

    unlabeled = np.setdiff1d(np.arange(n), all_labeled)
    predicted = np.argmax(score_matrix[:, unlabeled], axis=0)
    accuracy = float(np.mean(predicted == concepts[unlabeled]))
    print(f"frame-level detection accuracy: {accuracy:.3f}")

    per_concept = []
    for c, name in enumerate(CONCEPTS):
        mask = concepts[unlabeled] == c
        acc = float(np.mean(predicted[mask] == c))
        per_concept.append(f"{name}={acc:.2f}")
    print("per concept: " + ", ".join(per_concept))
    assert accuracy > 0.8, "manifold propagation should dominate chance (0.25)"


if __name__ == "__main__":
    main()
