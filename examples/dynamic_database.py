"""A living image database: insertions and deletions between rebuilds.

Run with::

    python examples/dynamic_database.py

Real multimedia databases grow continuously, but Mogul's index (like most
graph indexes) is precomputed.  :class:`repro.DynamicMogulRanker` bridges
the gap the way write-buffered indexes do: new images land in a pending
buffer and are ranked with the generalized Manifold Ranking estimate of
their in-database neighbours (the same mechanism the paper's §4.6.2 uses
for out-of-sample queries), deletions are tombstoned, and the buffer is
folded into a fresh index once it outgrows a fraction of the database.

The demo streams new photos into a database while querying it, then
checks that the buffered answers agree with a full rebuild.
"""

from __future__ import annotations

import time

import numpy as np

from repro import DynamicMogulRanker
from repro.datasets import make_pubfig


def main() -> None:
    dataset = make_pubfig(n_identities=30, images_per_identity=30, seed=5)
    initial, incoming, incoming_labels = dataset.holdout_split(150, seed=1)
    database = DynamicMogulRanker(
        initial.features, alpha=0.99, auto_rebuild_fraction=0.15
    )
    print(
        f"initial database: {database.n_indexed} images; "
        f"{incoming.shape[0]} images will stream in"
    )

    rng = np.random.default_rng(0)
    query_clock = insert_clock = 0.0
    inserted_ids = []
    for step, feature in enumerate(incoming):
        started = time.perf_counter()
        inserted_ids.append(database.add(feature))
        insert_clock += time.perf_counter() - started
        if step % 25 == 24:
            query = int(rng.integers(database.n_indexed))
            started = time.perf_counter()
            result = database.top_k(query, 10)
            query_clock += time.perf_counter() - started
            fresh = sum(1 for i in result.indices if int(i) in set(inserted_ids))
            print(
                f"after {step + 1:3d} inserts (pending={database.n_pending:2d}, "
                f"rebuilds={database.rebuild_count}): top-10 for node {query} "
                f"includes {fresh} just-inserted image(s)"
            )

    print(
        f"\ninsert throughput: {incoming.shape[0] / max(insert_clock, 1e-9):,.0f} "
        f"inserts/s (amortised, {database.rebuild_count} rebuilds included)"
    )

    # Deletions: retire one identity's images and verify they vanish.
    victim_ids = [int(i) for i in inserted_ids[:5]]
    for node in victim_ids:
        database.remove(node)
    probe = database.top_k_out_of_sample(incoming[0], 20)
    assert not set(victim_ids) & set(probe.indices.tolist())
    print(f"tombstoned {len(victim_ids)} images; none appear in answers")

    # Buffered answers vs a full rebuild.
    query = int(rng.integers(database.n_indexed))
    before = database.top_k(query, 10)
    database.rebuild()
    after = database.top_k(query, 10)
    overlap = len(set(before.indices.tolist()) & set(after.indices.tolist()))
    print(
        f"top-10 overlap between buffered and fully rebuilt index: {overlap}/10"
    )


if __name__ == "__main__":
    main()
