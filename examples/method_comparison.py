"""Side-by-side comparison of every ranking method in the library.

Run with::

    python examples/method_comparison.py

Builds one dataset and runs all six methods — Inverse, Iterative, FMR,
EMR, Mogul, MogulE — reporting per-query time, P@5 against the exact
answers, and retrieval precision against ground truth.  A miniature,
single-dataset version of the paper's whole evaluation section.
"""

from __future__ import annotations

import numpy as np

from repro import (
    EMRRanker,
    ExactRanker,
    FMRRanker,
    IterativeRanker,
    MogulRanker,
)
from repro.datasets import make_coil
from repro.eval import ExperimentTable, p_at_k, retrieval_precision, sample_queries
from repro.eval.harness import time_queries


def main() -> None:
    dataset = make_coil(n_objects=15, n_poses=72, seed=0)
    graph = dataset.build_graph(k=5)
    labels = dataset.labels
    print(f"dataset: {graph.n_nodes} images, {dataset.n_classes} objects\n")

    print("precomputing all methods (this is the offline stage) ...")
    exact = ExactRanker(graph, alpha=0.99)
    methods = {
        "Inverse": exact,
        "Iterative": IterativeRanker(graph, alpha=0.99),
        "FMR": FMRRanker(graph, alpha=0.99, n_partitions=8, seed=0),
        "EMR(d=10)": EMRRanker(graph, alpha=0.99, n_anchors=10, seed=0),
        "EMR(d=100)": EMRRanker(graph, alpha=0.99, n_anchors=100, seed=0),
        "Mogul": MogulRanker(graph, alpha=0.99),
        "MogulE": MogulRanker(graph, alpha=0.99, exact=True),
    }

    queries = sample_queries(graph.n_nodes, 10, seed=3)
    reference = {int(q): exact.top_k(int(q), 5).indices for q in queries}

    table = ExperimentTable(
        title="method comparison (k=5)",
        columns=["method", "time/query [ms]", "P@5 vs exact", "retrieval precision"],
    )
    for name, ranker in methods.items():
        seconds = time_queries(lambda q, r=ranker: r.top_k(int(q), 5), queries)
        p_vals, r_vals = [], []
        for q in queries:
            result = ranker.top_k(int(q), 5)
            p_vals.append(p_at_k(result.indices, reference[int(q)]))
            r_vals.append(
                retrieval_precision(result.indices, labels, int(labels[int(q)]))
            )
        table.add_row(
            name, seconds * 1e3, float(np.mean(p_vals)), float(np.mean(r_vals))
        )
    table.add_note("Inverse/MogulE P@5 = 1 by definition; Mogul trades a little")
    table.add_note("P@5 for large speedups while keeping semantic precision high")
    print(table.to_text())


if __name__ == "__main__":
    main()
