"""Index persistence: build once, serve queries from any later process.

Run with::

    python examples/index_persistence.py

Everything Mogul precomputes is query independent (paper Lemma 2), which
makes the index a natural build artifact: construct it in an offline job,
save it (:meth:`repro.MogulIndex.save`), and let serving processes load it
(:meth:`repro.MogulIndex.load` + :meth:`repro.MogulRanker.from_index`)
without redoing Algorithm 1 or the factorization.

The same workflow is scriptable from the shell::

    python -m repro build --dataset coil --out coil.idx.npz
    python -m repro search coil.idx.npz --dataset coil --query 42 -k 10
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import MogulIndex, MogulRanker
from repro.datasets import make_pubfig


def main() -> None:
    dataset = make_pubfig(n_identities=40, images_per_identity=30, seed=2)
    graph = dataset.build_graph(k=5)

    # --- offline: build and save -------------------------------------
    started = time.perf_counter()
    index = MogulIndex.build(graph, alpha=0.99)
    build_seconds = time.perf_counter() - started
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "pubfig.idx.npz"
        index.save(path)
        size_kb = path.stat().st_size / 1024
        print(
            f"built index for {graph.n_nodes} nodes in {build_seconds:.2f}s, "
            f"saved {size_kb:.0f} KiB to {path.name}"
        )

        # --- serving: load and query ----------------------------------
        started = time.perf_counter()
        loaded = MogulIndex.load(path)
        load_seconds = time.perf_counter() - started
        ranker = MogulRanker.from_index(graph, loaded)
        print(f"loaded in {load_seconds:.2f}s (derived tables rebuilt)")

        rng = np.random.default_rng(0)
        queries = rng.integers(0, graph.n_nodes, size=200)
        started = time.perf_counter()
        for query in queries:
            ranker.top_k(int(query), 10)
        per_query_ms = (time.perf_counter() - started) / queries.size * 1e3
        print(f"served {queries.size} queries at {per_query_ms:.3f} ms/query")

        # The loaded index answers byte-identically to the original.
        fresh = MogulRanker.from_index(graph, index)
        a = fresh.top_k(7, 10)
        b = ranker.top_k(7, 10)
        assert np.array_equal(a.indices, b.indices)
        print("loaded index answers match the freshly built index exactly")


if __name__ == "__main__":
    main()
