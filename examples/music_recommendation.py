"""Music recommendation with Manifold Ranking — a non-image application.

Run with::

    python examples/music_recommendation.py

The paper notes (section 1.1) that top-k Manifold Ranking search applies
beyond images: music recommendation, video concept detection, biological
analysis.  This example builds a synthetic music catalogue where each
genre evolves continuously along a "style axis" (a 1-D manifold: e.g.
blues -> rock -> metal), so that audio-feature proximity alone confuses
adjacent genres while the manifold structure separates them.

Given a seed track, Mogul returns recommendations from the same stylistic
manifold — and, thanks to the O(n) search, it would keep doing so at
catalogue scale.
"""

from __future__ import annotations

import numpy as np

from repro import MogulRanker, build_knn_graph
from repro.eval import retrieval_precision

GENRES = ("blues", "jazz", "electronic", "classical", "hiphop", "ambient")


def synthetic_catalogue(tracks_per_genre: int = 150, dim: int = 24, seed: int = 0):
    """Tracks along per-genre style curves in audio-feature space."""
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for g, _genre in enumerate(GENRES):
        # a smooth random curve: cumulative sum of small steps from a base
        base = rng.normal(scale=2.0, size=dim) / np.sqrt(dim) * 4
        direction = rng.normal(size=dim)
        direction /= np.linalg.norm(direction)
        curve_pos = np.linspace(0.0, 3.0, tracks_per_genre)
        wiggle = rng.normal(scale=0.05, size=(tracks_per_genre, dim))
        block = base + np.outer(curve_pos, direction) + wiggle
        features.append(block)
        labels.extend([g] * tracks_per_genre)
    return np.vstack(features), np.asarray(labels)


def main() -> None:
    features, labels = synthetic_catalogue()
    print(f"catalogue: {features.shape[0]} tracks, {len(GENRES)} genres")

    graph = build_knn_graph(features, k=5)
    recommender = MogulRanker(graph, alpha=0.99)

    rng = np.random.default_rng(7)
    seeds = rng.choice(features.shape[0], size=5, replace=False)
    precisions = []
    for seed_track in seeds:
        seed_track = int(seed_track)
        result = recommender.top_k(seed_track, k=10)
        genre = GENRES[labels[seed_track]]
        recommended = [GENRES[labels[i]] for i in result.indices[:5]]
        precision = retrieval_precision(result.indices, labels, labels[seed_track])
        precisions.append(precision)
        print(
            f"seed track {seed_track:4d} ({genre:>10}): recommends {recommended} "
            f"(genre precision {precision:.2f})"
        )
        stats = recommender.last_stats
        print(
            f"    search pruned {stats.clusters_pruned}/{stats.clusters_total} "
            f"clusters; scored {stats.nodes_scored}/{graph.n_nodes} tracks"
        )
    print(f"\nmean genre precision over seeds: {np.mean(precisions):.2f}")


if __name__ == "__main__":
    main()
