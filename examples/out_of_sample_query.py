"""Out-of-sample queries: ranking items that are not in the database.

Run with::

    python examples/out_of_sample_query.py

A deployed retrieval system receives query images it has never indexed.
Mogul handles this without touching its precomputed factorization
(paper section 4.6.2): route the query to its nearest cluster, seed its
in-cluster neighbours into the query vector, search as usual.  EMR instead
re-embeds the query over its anchors and rebuilds its d-by-d core.  This
example measures both, reproducing the Figure 7 / Table 2 protocol.
"""

from __future__ import annotations

import numpy as np

from repro import EMRRanker, MogulRanker
from repro.datasets import make_nuswide
from repro.eval import retrieval_precision
from repro.utils.timer import Timer


def main() -> None:
    dataset = make_nuswide(n_points=3000, n_concepts=30, seed=0)
    database, held_features, held_labels = dataset.holdout_split(20, seed=1)
    graph = database.build_graph(k=5)
    print(
        f"database: {graph.n_nodes} images; {held_features.shape[0]} held-out queries"
    )

    mogul = MogulRanker(graph, alpha=0.99)
    emr = EMRRanker(graph, alpha=0.99, n_anchors=10)

    mogul_timer, emr_timer = Timer(), Timer()
    mogul_prec, emr_prec = [], []
    nn_ms, topk_ms = [], []
    for feature, label in zip(held_features, held_labels):
        with mogul_timer:
            m_result = mogul.top_k_out_of_sample(feature, 5)
        nn_ms.append(mogul.last_breakdown["nearest_neighbor"] * 1e3)
        topk_ms.append(mogul.last_breakdown["top_k"] * 1e3)
        with emr_timer:
            e_result = emr.top_k_out_of_sample(feature, 5)
        mogul_prec.append(
            retrieval_precision(m_result.indices, database.labels, int(label))
        )
        emr_prec.append(
            retrieval_precision(e_result.indices, database.labels, int(label))
        )

    print("\nFigure 7 protocol — out-of-sample search time per query:")
    print(f"  Mogul: {mogul_timer.mean*1e3:8.2f} ms  (precision {np.mean(mogul_prec):.2f})")
    print(f"  EMR  : {emr_timer.mean*1e3:8.2f} ms  (precision {np.mean(emr_prec):.2f})")
    print(f"  speedup: {emr_timer.mean / mogul_timer.mean:.1f}x")

    print("\nTable 2 protocol — breakdown of Mogul's out-of-sample time [ms]:")
    print(f"  nearest neighbor: {np.mean(nn_ms):8.2f}")
    print(f"  top-k search    : {np.mean(topk_ms):8.2f}")
    print(f"  overall         : {np.mean(nn_ms) + np.mean(topk_ms):8.2f}")


if __name__ == "__main__":
    main()
